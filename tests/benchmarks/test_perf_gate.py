"""Tests for the CI perf-regression gate (scripts/check_perf_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_perf_regression.py"
spec = importlib.util.spec_from_file_location("check_perf_regression", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def write(path: Path, report: dict) -> Path:
    path.write_text(json.dumps(report))
    return path


def sim_report(speedup: float) -> dict:
    return {"benchmark": "sim_throughput", "aggregate": {"speedup": speedup}}


def tuning_report(speedup: float, identical: bool = True) -> dict:
    return {
        "benchmark": "tuning_time",
        "model_evaluation": {
            "speedup": speedup,
            "selections_identical": identical,
        },
    }


def savings_report(speedup: float, identical: bool = True) -> dict:
    return {
        "benchmark": "table6_savings",
        "aggregate": {"speedup": speedup, "engines_identical": identical},
    }


def grid_report(speedup: float, identical: bool = True) -> dict:
    return {
        "benchmark": "grid_sweep",
        "aggregate": {"speedup": speedup, "engines_identical": identical},
    }


def regen_report(
    speedup: float,
    identical: bool = True,
    pooled_speedup: float = 2.5,
    pooled_identical: bool = True,
) -> dict:
    return {
        "benchmark": "paper_regen",
        "aggregate": {
            "speedup": speedup,
            "artifacts_identical": identical,
            "pooled_speedup": pooled_speedup,
            "pooled_identical": pooled_identical,
        },
    }


def scaling_report(efficiency: float, identical: bool = True) -> dict:
    return {
        "benchmark": "serving_scaling",
        "aggregate": {
            "efficiency": efficiency,
            "responses_identical": identical,
        },
    }


class TestGate:
    def test_passes_when_equal(self, tmp_path):
        current = write(tmp_path / "a.json", sim_report(12.0))
        baseline = write(tmp_path / "b.json", sim_report(12.0))
        assert gate.main([str(current), str(baseline)]) == 0

    def test_tolerates_small_drop(self, tmp_path):
        current = write(tmp_path / "a.json", sim_report(9.0))
        baseline = write(tmp_path / "b.json", sim_report(12.0))
        assert gate.main([str(current), str(baseline)]) == 0  # -25% < 30%

    def test_fails_on_injected_2x_slowdown(self, tmp_path):
        """The acceptance scenario: halving the fast path halves the
        speedup ratio, which must trip the 30% gate."""
        current = write(tmp_path / "a.json", sim_report(6.0))
        baseline = write(tmp_path / "b.json", sim_report(12.0))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_on_tuning_time_slowdown(self, tmp_path):
        current = write(tmp_path / "a.json", tuning_report(4.0))
        baseline = write(tmp_path / "b.json", tuning_report(8.7))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_when_selections_diverge(self, tmp_path):
        current = write(tmp_path / "a.json", tuning_report(9.0, identical=False))
        baseline = write(tmp_path / "b.json", tuning_report(8.7))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_on_savings_sweep_slowdown(self, tmp_path):
        current = write(tmp_path / "a.json", savings_report(2.5))
        baseline = write(tmp_path / "b.json", savings_report(5.7))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_when_savings_engines_diverge(self, tmp_path):
        current = write(tmp_path / "a.json", savings_report(6.0, identical=False))
        baseline = write(tmp_path / "b.json", savings_report(5.7))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_passes_on_healthy_savings_report(self, tmp_path):
        current = write(tmp_path / "a.json", savings_report(5.0))
        baseline = write(tmp_path / "b.json", savings_report(5.7))
        assert gate.main([str(current), str(baseline)]) == 0

    def test_fails_on_grid_sweep_slowdown(self, tmp_path):
        current = write(tmp_path / "a.json", grid_report(5.0))
        baseline = write(tmp_path / "b.json", grid_report(10.5))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_when_grid_engines_diverge(self, tmp_path):
        current = write(tmp_path / "a.json", grid_report(11.0, identical=False))
        baseline = write(tmp_path / "b.json", grid_report(10.5))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_passes_on_healthy_grid_report(self, tmp_path):
        current = write(tmp_path / "a.json", grid_report(10.0))
        baseline = write(tmp_path / "b.json", grid_report(10.5))
        assert gate.main([str(current), str(baseline)]) == 0

    def test_fails_on_paper_regen_slowdown(self, tmp_path):
        current = write(tmp_path / "a.json", regen_report(2.0))
        baseline = write(tmp_path / "b.json", regen_report(4.5))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_when_regen_artifacts_diverge(self, tmp_path):
        current = write(tmp_path / "a.json", regen_report(5.0, identical=False))
        baseline = write(tmp_path / "b.json", regen_report(4.5))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_passes_on_healthy_paper_regen_report(self, tmp_path):
        current = write(tmp_path / "a.json", regen_report(4.0))
        baseline = write(tmp_path / "b.json", regen_report(4.5))
        assert gate.main([str(current), str(baseline)]) == 0

    def test_fails_on_pooled_regen_slowdown(self, tmp_path):
        current = write(
            tmp_path / "a.json", regen_report(4.5, pooled_speedup=1.0)
        )
        baseline = write(tmp_path / "b.json", regen_report(4.5))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_when_pooled_regen_diverges(self, tmp_path):
        current = write(
            tmp_path / "a.json", regen_report(4.5, pooled_identical=False)
        )
        baseline = write(tmp_path / "b.json", regen_report(4.5))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_on_scaling_efficiency_drop(self, tmp_path):
        current = write(tmp_path / "a.json", scaling_report(0.2))
        baseline = write(tmp_path / "b.json", scaling_report(0.8))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_when_scaling_responses_diverge(self, tmp_path):
        current = write(
            tmp_path / "a.json", scaling_report(0.9, identical=False)
        )
        baseline = write(tmp_path / "b.json", scaling_report(0.8))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_passes_on_healthy_scaling_report(self, tmp_path):
        current = write(tmp_path / "a.json", scaling_report(0.7))
        baseline = write(tmp_path / "b.json", scaling_report(0.8))
        assert gate.main([str(current), str(baseline)]) == 0

    def test_max_drop_flag(self, tmp_path):
        current = write(tmp_path / "a.json", sim_report(9.0))
        baseline = write(tmp_path / "b.json", sim_report(12.0))
        assert gate.main([str(current), str(baseline), "--max-drop", "0.2"]) == 1

    def test_kind_mismatch_rejected(self, tmp_path):
        current = write(tmp_path / "a.json", sim_report(9.0))
        baseline = write(tmp_path / "b.json", tuning_report(8.7))
        with pytest.raises(SystemExit):
            gate.main([str(current), str(baseline)])

    def test_missing_metric_explains_schema(self, tmp_path):
        current = write(
            tmp_path / "a.json", {"benchmark": "sim_throughput", "aggregate": {}}
        )
        baseline = write(tmp_path / "b.json", sim_report(12.0))
        with pytest.raises(SystemExit, match="older benchmark schema"):
            gate.main([str(current), str(baseline)])


class TestCommittedBaselines:
    """The baselines the CI gate compares against must stay well-formed."""

    BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"

    def test_sim_throughput_baseline(self):
        report = json.loads((self.BASELINES / "sim-throughput.json").read_text())
        assert report["benchmark"] == "sim_throughput"
        assert report["aggregate"]["speedup"] > 1

    def test_tuning_time_baseline(self):
        report = json.loads((self.BASELINES / "tuning-time.json").read_text())
        assert report["benchmark"] == "tuning_time"
        # The batched engine's headline claim, pinned at baseline time.
        assert report["model_evaluation"]["speedup"] >= 5
        assert report["model_evaluation"]["selections_identical"] is True

    def test_paper_regen_baseline(self):
        report = json.loads((self.BASELINES / "paper-regen.json").read_text())
        assert report["benchmark"] == "paper_regen"
        # The fleet kernel's acceptance claim, pinned at baseline time.
        assert report["aggregate"]["speedup"] >= 3
        assert report["aggregate"]["artifacts_identical"] is True
        # The pooled-fleet arm rides the same report: bit-identical, and
        # still well ahead of the per-cell loop even paying fork costs.
        assert report["aggregate"]["pooled_speedup"] >= 1.5
        assert report["aggregate"]["pooled_identical"] is True

    def test_serving_scaling_baseline(self):
        report = json.loads(
            (self.BASELINES / "serving-scaling.json").read_text()
        )
        assert report["benchmark"] == "serving_scaling"
        # Core-normalised efficiency is the portable claim; the raw
        # speedup multiple depends on how many cores the runner has.
        assert report["aggregate"]["efficiency"] > 0.5
        assert report["aggregate"]["responses_identical"] is True
        assert report["aggregate"]["max_workers"] >= 2

    def test_dynamic_replay_baseline(self):
        report = json.loads((self.BASELINES / "dynamic-replay.json").read_text())
        assert report["benchmark"] == "table6_savings"
        # The controlled-replay acceptance: >= 5x on the Table VI sweep.
        assert report["aggregate"]["speedup"] >= 5
        assert report["aggregate"]["engines_identical"] is True

    def test_grid_sweep_baseline(self):
        report = json.loads((self.BASELINES / "grid-sweep.json").read_text())
        assert report["benchmark"] == "grid_sweep"
        # The sweep-engine acceptance: >= 5x on the Fig 6/7 grids.
        assert report["aggregate"]["speedup"] >= 5
        assert report["aggregate"]["engines_identical"] is True
        assert {r["app"] for r in report["results"]} == {"Lulesh", "Mcb"}

    def test_gate_passes_against_itself(self, capsys):
        for name in (
            "sim-throughput.json",
            "tuning-time.json",
            "dynamic-replay.json",
            "grid-sweep.json",
            "paper-regen.json",
            "serving-scaling.json",
        ):
            path = self.BASELINES / name
            assert gate.main([str(path), str(path)]) == 0


def store_report(
    sqlite_recall: float = 100.0,
    sqlite_open: float = 100.0,
    segment_recall: float = 20.0,
    segment_open: float = 50.0,
    identical: bool = True,
) -> dict:
    return {
        "benchmark": "store_scale",
        "backends": {
            "jsonl": {"cold_open_s": 1.0, "recall_s": 1.0},
            "sqlite": {
                "recall_speedup": sqlite_recall,
                "cold_open_speedup": sqlite_open,
            },
            "segment": {
                "recall_speedup": segment_recall,
                "cold_open_speedup": segment_open,
            },
        },
        "payloads_identical": identical,
    }


class TestStoreScaleGate:
    def test_passes_when_equal(self, tmp_path):
        current = write(tmp_path / "a.json", store_report())
        baseline = write(tmp_path / "b.json", store_report())
        assert gate.main([str(current), str(baseline)]) == 0

    def test_fails_on_sqlite_recall_slowdown(self, tmp_path):
        current = write(tmp_path / "a.json", store_report(sqlite_recall=30.0))
        baseline = write(tmp_path / "b.json", store_report(sqlite_recall=100.0))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_on_segment_cold_open_slowdown(self, tmp_path):
        current = write(tmp_path / "a.json", store_report(segment_open=10.0))
        baseline = write(tmp_path / "b.json", store_report(segment_open=50.0))
        assert gate.main([str(current), str(baseline)]) == 1

    def test_fails_when_payloads_diverge(self, tmp_path):
        current = write(tmp_path / "a.json", store_report(identical=False))
        baseline = write(tmp_path / "b.json", store_report())
        assert gate.main([str(current), str(baseline)]) == 1


class TestStoreScaleBaselines:
    BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"

    def test_committed_million_record_baseline(self):
        """The ISSUE 6 acceptance numbers, pinned at baseline time:
        >= 10x warm recall-by-key and >= 5x cold open at 10^6 records
        for both indexed backends over JSONL."""
        report = json.loads((self.BASELINES / "store-scale.json").read_text())
        assert report["benchmark"] == "store_scale"
        assert report["records"] == 1_000_000
        for backend in ("sqlite", "segment"):
            entry = report["backends"][backend]
            assert entry["recall_speedup"] >= 10, backend
            assert entry["cold_open_speedup"] >= 5, backend
        assert report["payloads_identical"] is True

    def test_committed_smoke_baseline(self):
        """The reduced configuration CI gates every push against."""
        report = json.loads(
            (self.BASELINES / "store-scale-smoke.json").read_text()
        )
        assert report["benchmark"] == "store_scale"
        assert report["records"] == 100_000
        for backend in ("sqlite", "segment"):
            entry = report["backends"][backend]
            assert entry["recall_speedup"] > 1, backend
            assert entry["cold_open_speedup"] > 1, backend
        assert report["payloads_identical"] is True

    def test_gate_passes_against_themselves(self):
        for name in ("store-scale.json", "store-scale-smoke.json"):
            path = self.BASELINES / name
            assert gate.main([str(path), str(path)]) == 0
