"""Smoke test: the benchmark harness reuses persisted campaign results.

``benchmarks/_common.py`` routes all simulations through a shared
engine backed by an on-disk store, so artefacts built in one bench
session are reused (zero new simulations) by the next.  The test
simulates two sessions by clearing the harness caches and rebuilding
the engine from the same store directory.
"""

import numpy as np
import pytest

import benchmarks._common as common
from repro.modeling.dataset import build_dataset


@pytest.fixture
def harness_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(common.CACHE_DIR_ENV, str(tmp_path))
    common.campaign_engine.cache_clear()
    yield tmp_path
    common.campaign_engine.cache_clear()


def small_artefact():
    """A scaled-down stand-in for the full_dataset artefact (same code
    path: build_dataset through the harness engine + store)."""
    return build_dataset(
        ("EP",),
        thread_counts=(24,),
        cluster=common.cluster(),
        engine=common.campaign_engine(),
    )


def test_cache_dir_env_override(harness_cache):
    assert common.cache_dir() == harness_cache


def test_artefacts_reused_across_two_invocations(harness_cache):
    # Session one builds and persists everything.
    first_engine = common.campaign_engine()
    first = small_artefact()
    assert first_engine.total_executed == 34  # 3 counter runs + 31 sweep
    # Fresh cache directories get the indexed SQLite backend.
    assert first_engine.store.backend == "sqlite"
    assert (harness_cache / "campaign-store.sqlite").exists()

    # Session two: fresh engine + store over the same directory.
    first_engine.store.close()
    common.campaign_engine.cache_clear()
    second_engine = common.campaign_engine()
    assert second_engine is not first_engine
    second = small_artefact()
    assert second_engine.total_executed == 0  # all 34 jobs came from disk
    assert second_engine.total_cached == 34
    assert np.array_equal(first.features, second.features)
    assert np.array_equal(first.targets, second.targets)


def test_static_result_artefact_uses_harness_engine(harness_cache):
    """static_result routes through the same store (spot-check wiring)."""
    engine = common.campaign_engine()
    assert engine.store is not None
    assert common.static_result.__wrapped__.__module__ == "benchmarks._common"


def test_old_schema_cache_entry_surfaces_clear_error(harness_cache):
    """A harness store entry written under an older schema must fail
    with an actionable CampaignError when an artefact build recalls it,
    never a raw KeyError inside dataset assembly."""
    import json

    from repro.campaign.engine import topology_job_key
    from repro.campaign.plan import counter_jobs
    from repro.campaign.store import STORE_VERSION
    from repro.errors import CampaignError

    job = counter_jobs(
        "EP",
        threads=24,
        counters=("PAPI_TOT_INS",),
        runs=1,
        node_seed=common.cluster().seed,
    )[0]
    record = {
        "key": topology_job_key(job, None),
        "store_version": STORE_VERSION - 1,
        "job": job.descriptor(),
        "result": {"totals": {"PAPI_TOT_INS": 1.0}, "phase_time_s": 1.0},
    }
    (harness_cache / "campaign-store.jsonl").write_text(json.dumps(record) + "\n")
    common.campaign_engine.cache_clear()
    from repro.modeling.dataset import measure_counter_rates

    with pytest.raises(CampaignError, match="schema version"):
        measure_counter_rates(
            common.registry.build("EP"),
            common.cluster(),
            threads=24,
            counters=("PAPI_TOT_INS",),
            runs=1,
            engine=common.campaign_engine(),
        )


def test_pre_v2_store_re_simulates_silently(harness_cache):
    """A genuine pre-STORE_VERSION-2 store (records without a
    ``store_version`` field, keys hashed under the old version) must be
    treated as a cold cache: the artefact build re-simulates and
    persists current-schema results next to the dead records, which stay
    counted as stale — never a crash, never a stale payload served."""
    import hashlib
    import json

    from repro.campaign.plan import CampaignJob

    job = CampaignJob(app="EP", mode="sweep", threads=24)

    def v1_key(descriptor):
        payload = json.dumps({"store_version": 1, **descriptor}, sort_keys=True)
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    record = {
        "key": v1_key(job.descriptor()),
        "job": job.descriptor(),
        "result": {"node_energy_j": 1.0, "cpu_energy_j": 1.0, "time_s": 1.0},
    }
    (harness_cache / "campaign-store.jsonl").write_text(json.dumps(record) + "\n")
    common.campaign_engine.cache_clear()
    engine = common.campaign_engine()
    assert engine.store.stale_records == 1
    artefact = small_artefact()
    assert artefact.features.shape[0] > 0
    assert engine.total_executed == 34  # everything re-simulated
    assert engine.total_cached == 0


def test_quarantined_cache_entry_surfaces_clear_error(harness_cache):
    """A quarantine record in the harness store (left by an earlier
    ``--on-failure quarantine`` run) must fail an artefact build up
    front with a CampaignError naming the job and the retry_failed
    escape hatch — never a raw KeyError inside dataset assembly."""
    from repro.campaign import FailureRecord, ResultStore, failure_descriptor, job_key
    from repro.campaign.engine import qualified_descriptor
    from repro.campaign.plan import sweep_jobs
    from repro.errors import CampaignError

    job = sweep_jobs("EP", threads=24, node_seed=common.cluster().seed)[0]
    descriptor = qualified_descriptor(job, None)
    record = FailureRecord(
        job_store_key=job_key(descriptor),
        app=job.app,
        mode=job.mode,
        error_type="InjectedFault",
        error_message="seeded by test",
        kind="deterministic",
        attempts=3,
    )
    fdesc = failure_descriptor(descriptor)
    with ResultStore(harness_cache / "campaign-store.jsonl") as store:
        store.put(job_key(fdesc), fdesc, record.payload())
    common.campaign_engine.cache_clear()
    with pytest.raises(CampaignError, match="quarantined") as excinfo:
        small_artefact()
    # The message names the failing job and the recovery path.
    assert "EP" in str(excinfo.value)
    assert "retry-failed" in str(excinfo.value) or "retry_failed" in str(
        excinfo.value
    )


def test_stale_model_cache_entry_surfaces_campaign_error(harness_cache):
    """A recalled trained-model record whose payload predates the
    current parameter layout must surface the documented CampaignError
    naming the store file — historically this crashed mid-benchmark
    with a raw KeyError inside the network rebuild."""
    import json

    import numpy as np
    import pytest

    from repro.campaign.store import STORE_VERSION, job_key
    from repro.errors import CampaignError
    from repro.modeling.model_cache import (
        dataset_digest,
        train_network_cached,
        training_descriptor,
    )
    from repro.modeling.training import TrainingConfig

    rng = np.random.default_rng(0)
    features, targets = rng.normal(size=(40, 5)), rng.normal(size=40)
    config = TrainingConfig(epochs=1, seed=0)
    descriptor = training_descriptor(dataset_digest(features, targets), config)
    record = {
        "key": job_key(descriptor),
        "store_version": STORE_VERSION,
        "job": descriptor,
        # Top-level keys present, but the inner network layout is old.
        "result": {"network": {"legacy_weights": []}, "scaler": {}, "losses": []},
    }
    (harness_cache / "campaign-store.jsonl").write_text(json.dumps(record) + "\n")
    common.campaign_engine.cache_clear()
    store = common.campaign_engine().store
    with pytest.raises(CampaignError, match="older store schema"):
        train_network_cached(features, targets, config=config, store=store)
