"""Smoke test: the benchmark harness reuses persisted campaign results.

``benchmarks/_common.py`` routes all simulations through a shared
engine backed by an on-disk store, so artefacts built in one bench
session are reused (zero new simulations) by the next.  The test
simulates two sessions by clearing the harness caches and rebuilding
the engine from the same store directory.
"""

import numpy as np
import pytest

import benchmarks._common as common
from repro.modeling.dataset import build_dataset


@pytest.fixture
def harness_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(common.CACHE_DIR_ENV, str(tmp_path))
    common.campaign_engine.cache_clear()
    yield tmp_path
    common.campaign_engine.cache_clear()


def small_artefact():
    """A scaled-down stand-in for the full_dataset artefact (same code
    path: build_dataset through the harness engine + store)."""
    return build_dataset(
        ("EP",),
        thread_counts=(24,),
        cluster=common.cluster(),
        engine=common.campaign_engine(),
    )


def test_cache_dir_env_override(harness_cache):
    assert common.cache_dir() == harness_cache


def test_artefacts_reused_across_two_invocations(harness_cache):
    # Session one builds and persists everything.
    first_engine = common.campaign_engine()
    first = small_artefact()
    assert first_engine.total_executed == 34  # 3 counter runs + 31 sweep
    assert (harness_cache / "campaign-store.jsonl").exists()

    # Session two: fresh engine + store over the same directory.
    first_engine.store.close()
    common.campaign_engine.cache_clear()
    second_engine = common.campaign_engine()
    assert second_engine is not first_engine
    second = small_artefact()
    assert second_engine.total_executed == 0  # all 34 jobs came from disk
    assert second_engine.total_cached == 34
    assert np.array_equal(first.features, second.features)
    assert np.array_equal(first.targets, second.targets)


def test_static_result_artefact_uses_harness_engine(harness_cache):
    """static_result routes through the same store (spot-check wiring)."""
    engine = common.campaign_engine()
    assert engine.store is not None
    assert common.static_result.__wrapped__.__module__ == "benchmarks._common"
