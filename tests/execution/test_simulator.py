"""Tests for the execution simulator, jobs and SLURM accounting."""

import pytest

from repro import config
from repro.errors import JobError, WorkloadError
from repro.execution.simulator import ExecutionSimulator
from repro.execution.slurm import SlurmAccounting
from repro.hardware.node import ComputeNode
from repro.workloads import registry


@pytest.fixture
def node() -> ComputeNode:
    return ComputeNode(0)


@pytest.fixture
def sim(node) -> ExecutionSimulator:
    return ExecutionSimulator(node)


class TestBasicRun:
    def test_run_produces_time_and_energy(self, sim):
        app = registry.build("EP")
        result = sim.run(app)
        assert result.time_s > 0
        assert result.node_energy_j > 0
        assert 0 < result.cpu_energy_j < result.node_energy_j

    def test_phase_instances_match_iterations(self, sim):
        app = registry.build("EP")
        result = sim.run(app)
        assert len(result.region_instances("phase")) == app.phase_iterations

    def test_energy_consistent_with_mean_power(self, sim):
        app = registry.build("EP")
        result = sim.run(app)
        assert 150 < result.mean_power_w < 450  # plausible node power

    def test_uninstrumented_run_has_no_overhead(self, sim):
        app = registry.build("EP")
        result = sim.run(app)
        assert result.instrumentation_time_s == 0.0
        assert result.switching_time_s == 0.0

    def test_instrumented_run_has_overhead(self, node):
        app = registry.build("Lulesh")
        plain = ExecutionSimulator(ComputeNode(0)).run(app)
        instr = ExecutionSimulator(ComputeNode(0)).run(app, instrumented=True)
        assert instr.instrumentation_time_s > 0
        assert instr.time_s > plain.time_s

    def test_invalid_thread_count_rejected(self, sim):
        with pytest.raises(WorkloadError):
            sim.run(registry.build("EP"), threads=25)

    def test_mpi_app_ignores_thread_request(self, sim):
        app = registry.build("Kripke")
        result = sim.run(app, threads=12)
        assert result.operating_point.threads == app.default_threads


class TestOperatingPointEffects:
    def test_lower_core_freq_slower_for_compute_bound(self):
        app = registry.build("EP")
        n1, n2 = ComputeNode(0), ComputeNode(0)
        n1.set_frequencies(2.5, 2.0)
        n2.set_frequencies(1.2, 2.0)
        fast = ExecutionSimulator(n1).run(app)
        slow = ExecutionSimulator(n2).run(app)
        assert slow.time_s > fast.time_s * 1.5

    def test_tuned_config_saves_energy_for_memory_bound(self):
        app = registry.build("Mcb")
        n_def, n_opt = ComputeNode(0), ComputeNode(0)
        n_def.set_frequencies(2.5, 3.0)
        n_opt.set_frequencies(1.6, 2.5)
        default = ExecutionSimulator(n_def).run(app, threads=24)
        tuned = ExecutionSimulator(n_opt).run(app, threads=20)
        assert tuned.node_energy_j < default.node_energy_j

    def test_runs_are_deterministic(self):
        app = registry.build("FT")
        a = ExecutionSimulator(ComputeNode(3)).run(app, run_key=("r", 0))
        b = ExecutionSimulator(ComputeNode(3)).run(app, run_key=("r", 0))
        assert a.time_s == b.time_s
        assert a.node_energy_j == b.node_energy_j

    def test_different_run_keys_vary_slightly(self):
        app = registry.build("FT")
        a = ExecutionSimulator(ComputeNode(3)).run(app, run_key=("r", 0))
        b = ExecutionSimulator(ComputeNode(3)).run(app, run_key=("r", 1))
        assert a.time_s != b.time_s
        assert abs(a.time_s / b.time_s - 1) < 0.05

    def test_node_variability_affects_energy_not_time(self):
        app = registry.build("EP")
        r1 = ExecutionSimulator(ComputeNode(1)).run(app)
        r2 = ExecutionSimulator(ComputeNode(2)).run(app)
        assert r1.node_energy_j != r2.node_energy_j


class TestRegionAccounting:
    def test_significant_regions_exceed_threshold(self):
        app = registry.build("Lulesh")
        node = ComputeNode(0)
        node.set_frequencies(
            config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
        )
        result = ExecutionSimulator(node).run(app)
        for name in ("IntegrateStressForElems", "CalcQForElems"):
            instances = result.region_instances(name)
            mean = sum(i.time_s for i in instances) / len(instances)
            assert mean > config.SIGNIFICANT_REGION_THRESHOLD_S

    def test_tiny_regions_below_threshold(self):
        app = registry.build("Lulesh")
        result = ExecutionSimulator(ComputeNode(0)).run(app)
        instances = result.region_instances("CalcTimeConstraintsForElems")
        mean = sum(i.time_s for i in instances) / len(instances)
        assert mean < config.SIGNIFICANT_REGION_THRESHOLD_S

    def test_phase_energy_contains_children(self):
        app = registry.build("Lulesh")
        result = ExecutionSimulator(ComputeNode(0)).run(app)
        phase = result.region_instances("phase")[0]
        children = [
            i for i in result.instances
            if i.iteration == 0 and i.region_name != "phase"
            and i.region_name != "main"
        ]
        assert phase.node_energy_j == pytest.approx(
            sum(i.node_energy_j for i in children if i.timing is not None),
            rel=1e-6,
        )


class TestSlurm:
    def test_submit_and_query(self, sim):
        acct = SlurmAccounting()
        run = sim.run(registry.build("EP"))
        record = acct.submit(run)
        rows = acct.sacct(job_id=record.job_id, fmt="JobID,Elapsed,ConsumedEnergy")
        assert rows[0]["Elapsed"] == pytest.approx(run.time_s)
        assert rows[0]["ConsumedEnergy"] == pytest.approx(run.node_energy_j)

    def test_unknown_field_rejected(self, sim):
        acct = SlurmAccounting()
        acct.submit(sim.run(registry.build("EP")))
        with pytest.raises(JobError):
            acct.sacct(fmt="NotAField")

    def test_unknown_job_rejected(self):
        with pytest.raises(JobError):
            SlurmAccounting().job(1)

    def test_job_ids_increment(self, sim):
        acct = SlurmAccounting()
        a = acct.submit(sim.run(registry.build("EP"), run_key=(1,)))
        b = acct.submit(sim.run(registry.build("EP"), run_key=(2,)))
        assert b.job_id == a.job_id + 1
