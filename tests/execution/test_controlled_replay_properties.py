"""Property-based invariants of the switch-schedule compiler.

Complements the bit-identity suite: instead of comparing against the
recursive engine, these check structural invariants that must hold for
*every* compiled :class:`~repro.execution.controlled_replay.ControlSchedule`
— whatever the application, tuning model or entry state hypothesis
draws.
"""

from hypothesis import given, settings, strategies as st

from repro import config
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.hardware.node import ComputeNode
from repro.readex.rrl import RRL
from repro.readex.tuning_model import TuningModel
from repro.workloads import registry

APPS = ("Lulesh", "Mcb", "FT", "EP", "Kripke", "BT-MZ")

CONFIG_POOL = (
    OperatingPoint(2.5, 2.1, 24),
    OperatingPoint(2.4, 2.0, 24),
    OperatingPoint(2.2, 1.8, 20),
    OperatingPoint(1.8, 2.4, 16),
)


@st.composite
def compiled_schedules(draw):
    """A freshly compiled schedule plus its ingredients."""
    app = registry.build(draw(st.sampled_from(APPS)))
    regions = [r.name for r in app.phase.children]
    tuned = draw(
        st.lists(st.sampled_from(regions), unique=True, max_size=len(regions))
    ) if regions else []
    best = {"phase": draw(st.sampled_from(CONFIG_POOL))}
    for name in tuned:
        best[name] = draw(st.sampled_from(CONFIG_POOL))
    model = TuningModel.from_best_configs(app.name, "phase", best)
    node = ComputeNode(draw(st.integers(min_value=0, max_value=3)))
    if draw(st.booleans()):
        node.set_frequencies(1.6, 1.5)
    instrumented = draw(st.booleans())
    schedule = RRL(model).compile_schedule(
        app,
        node,
        threads=config.DEFAULT_OPENMP_THREADS,
        instrumented=instrumented,
        instrumentation=None,
    )
    return app, schedule


class TestScheduleInvariants:
    @given(compiled_schedules())
    @settings(max_examples=30, deadline=None)
    def test_switch_count_bounded_by_region_enters(self, compiled):
        """The RRL switches at region enters only, at most once each."""
        _app, schedule = compiled
        assert 0 <= schedule.switch_charges <= schedule.region_enters

    @given(compiled_schedules())
    @settings(max_examples=30, deadline=None)
    def test_segments_partition_the_trace(self, compiled):
        """Spans cover every iteration exactly once, in order."""
        app, schedule = compiled
        assert schedule.iterations == app.phase_iterations
        covered = []
        for index, start, count in schedule.spans:
            assert 0 <= index < len(schedule.patterns)
            assert count >= 1
            covered.extend(range(start, start + count))
        assert covered == list(range(app.phase_iterations))

    @given(compiled_schedules())
    @settings(max_examples=30, deadline=None)
    def test_patterns_converge_quickly(self, compiled):
        """Name-keyed decisions reach their fixed point by iteration two,
        so the walk never compiles more than two distinct patterns."""
        _app, schedule = compiled
        assert 1 <= len(schedule.patterns) <= 2

    @given(compiled_schedules())
    @settings(max_examples=30, deadline=None)
    def test_patterns_share_the_region_tree(self, compiled):
        """Patterns differ in operating points and switch charges only —
        the flattened tree (regions, children, work rows) is invariant."""
        app, schedule = compiled
        reference = schedule.patterns[0]
        region_count = sum(1 for _ in app.phase.walk())
        assert len(reference.slots) == region_count
        for pattern in schedule.patterns[1:]:
            assert len(pattern.slots) == len(reference.slots)
            for a, b in zip(pattern.slots, reference.slots):
                assert a.region.name == b.region.name
                assert a.children == b.children
                assert a.has_work == b.has_work
                assert a.work_index == b.work_index

    @given(compiled_schedules())
    @settings(max_examples=30, deadline=None)
    def test_charge_spans_nest(self, compiled):
        """Every slot's charge span contains its children's spans."""
        _app, schedule = compiled
        for pattern in schedule.patterns:
            for slot in pattern.slots:
                assert 0 <= slot.charge_start <= slot.charge_end
                assert slot.charge_end <= len(pattern.charges)
                for child in slot.children:
                    child_slot = pattern.slots[child]
                    assert slot.charge_start <= child_slot.charge_start
                    assert child_slot.charge_end <= slot.charge_end

    @given(compiled_schedules())
    @settings(max_examples=20, deadline=None)
    def test_replayed_switching_time_matches_schedule(self, compiled):
        """The run's accounted switching time is exactly the schedule's
        switch charges times their constant latencies."""
        app, schedule = compiled
        latency_total = sum(
            float(pattern.switch_latencies.sum()) * count
            for (index, _start, count) in schedule.spans
            for pattern in (schedule.patterns[index],)
        )
        assert latency_total >= 0
        # Switch charges exist iff latency accrues.
        assert (schedule.switch_charges > 0) == (latency_total > 0)


class TestScheduleStatistics:
    def test_stats_match_trace_arithmetic(self):
        """Region enters counted by the compiled run equal slots x
        iterations, however the spans segment the trace."""
        app = registry.build("Lulesh")
        best = {"phase": OperatingPoint(2.5, 2.1, 24)}
        for i, region in enumerate(app.phase.children[:3]):
            best[region.name] = OperatingPoint(2.4 if i % 2 else 2.5, 2.0, 24)
        model = TuningModel.from_best_configs("Lulesh", "phase", best)
        rrl = RRL(model)
        ExecutionSimulator(ComputeNode(0)).run(
            app, controller=rrl, instrumented=True, run_key=("stats", 0)
        )
        region_count = sum(1 for _ in app.phase.walk())
        assert rrl.stats.region_enters == region_count * app.phase_iterations
        assert rrl.stats.scenario_hits <= rrl.stats.region_enters
        assert rrl.stats.frequency_switches <= rrl.stats.scenario_hits
