"""Bit-identity of the vectorized replay fast path vs the recursive engine.

The replay engine (:mod:`repro.execution.replay`) must be *exactly*
equivalent to the generic recursive engine for every eligible run: every
``RunResult`` field, every ``RegionInstance`` row (values and order), the
node's meter state afterwards, and the phase counter totals of the
campaign ``counters`` mode.  These tests sweep applications, operating
points, thread counts, nodes and instrumentation configurations and
compare to the bit — no tolerances anywhere.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.campaign.engine import _PhaseCounterCollector
from repro.counters.papi import TABLE1_COUNTERS, preset
from repro.errors import WorkloadError
from repro.execution.simulator import ExecutionSimulator, InstanceLog, RunResult
from repro.hardware.node import ComputeNode
from repro.hardware.rapl import RaplDomain
from repro.scorep.instrumentation import Instrumentation
from repro.workloads import registry

#: A spread of benchmarks: OpenMP / MPI / hybrid, small and large trees.
APPS = ("Lulesh", "Mcb", "FT", "EP", "Kripke", "BT-MZ")

CANONICAL_COUNTERS = tuple(preset(c).name for c in TABLE1_COUNTERS)


def make_node(node_id=0, seed=config.DEFAULT_SEED, cf=None, ucf=None):
    node = ComputeNode(node_id, seed=seed)
    if cf is not None:
        node.set_frequencies(cf, ucf)
    return node


def meter_state(node):
    """Observable meter state after a run (reader-visible energies)."""
    return (
        node.now_s,
        node.hdeem.now_s,
        tuple(
            node.rapl.read_joules(s, domain)
            for s in range(node.topology.num_sockets)
            for domain in (RaplDomain.PACKAGE, RaplDomain.DRAM)
        ),
    )


def run_both(app, *, node_id=0, node_seed=config.DEFAULT_SEED, seed=config.DEFAULT_SEED,
             cf=None, ucf=None, **kwargs):
    """One run through each engine on identically-prepared nodes."""
    n1 = make_node(node_id, node_seed, cf, ucf)
    n2 = make_node(node_id, node_seed, cf, ucf)
    fast = ExecutionSimulator(n1, seed=seed).run(app, **kwargs)
    generic = ExecutionSimulator(n2, seed=seed).run(app, fast_path=False, **kwargs)
    return fast, generic, n1, n2


def assert_identical(fast, generic, n1, n2):
    assert fast.engine == "replay"
    assert generic.engine == "generic"
    # Scalar fields, exactly.
    assert fast.time_s == generic.time_s
    assert fast.node_energy_j == generic.node_energy_j
    assert fast.cpu_energy_j == generic.cpu_energy_j
    assert fast.switching_time_s == generic.switching_time_s
    assert fast.instrumentation_time_s == generic.instrumentation_time_s
    assert fast.operating_point == generic.operating_point
    # Instance rows: same count, order and every field (dataclass
    # equality covers timings and operating points).
    assert len(fast.instances) == len(generic.instances)
    assert fast.instances == generic.instances
    # Whole-result equality (engine field excluded by design).
    assert fast == generic
    # The node is left in an identical observable state.
    assert meter_state(n1) == meter_state(n2)


class TestReplayEquivalence:
    @pytest.mark.parametrize("app_name", APPS)
    def test_default_run_bit_identical(self, app_name):
        app = registry.build(app_name)
        assert_identical(*run_both(app, run_key=("equiv", 0)))

    @pytest.mark.parametrize("app_name", APPS)
    def test_instrumented_run_bit_identical(self, app_name):
        app = registry.build(app_name)
        assert_identical(
            *run_both(app, instrumented=True, run_key=("equiv", 1))
        )

    @pytest.mark.parametrize(
        "cf,ucf",
        [
            (config.CORE_FREQ_MIN_GHZ, config.UNCORE_FREQ_MIN_GHZ),
            (config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ),
            (config.CORE_FREQ_MAX_GHZ, config.UNCORE_FREQ_MAX_GHZ),
        ],
    )
    def test_operating_points_bit_identical(self, cf, ucf):
        app = registry.build("Lulesh")
        assert_identical(*run_both(app, cf=cf, ucf=ucf, run_key=("equiv", 2)))

    @pytest.mark.parametrize("threads", (12, 16, 24))
    def test_thread_counts_bit_identical(self, threads):
        app = registry.build("Mcb")
        assert_identical(
            *run_both(app, threads=threads, run_key=("equiv", 3))
        )

    @pytest.mark.parametrize("node_id", (0, 3, 7))
    def test_nodes_bit_identical(self, node_id):
        app = registry.build("FT")
        assert_identical(
            *run_both(app, node_id=node_id, node_seed=11, run_key=("equiv", 4))
        )

    def test_filtered_instrumentation_bit_identical(self):
        app = registry.build("Lulesh")
        n1, n2 = make_node(), make_node()
        instr1, instr2 = Instrumentation(app), Instrumentation(app)
        fast = ExecutionSimulator(n1).run(
            app, instrumentation=instr1, run_key=("equiv", 5)
        )
        generic = ExecutionSimulator(n2).run(
            app, instrumentation=instr2, run_key=("equiv", 5), fast_path=False
        )
        assert_identical(fast, generic, n1, n2)

    @given(
        app_name=st.sampled_from(APPS),
        cf=st.sampled_from(config.CORE_FREQUENCIES_GHZ),
        ucf=st.sampled_from(config.UNCORE_FREQUENCIES_GHZ),
        seed=st.integers(min_value=0, max_value=2**16),
        label=st.integers(min_value=0, max_value=5),
        instrumented=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sweep_bit_identical(
        self, app_name, cf, ucf, seed, label, instrumented
    ):
        """Property sweep across apps x operating points x seeds."""
        app = registry.build(app_name)
        assert_identical(
            *run_both(
                app,
                seed=seed,
                cf=cf,
                ucf=ucf,
                instrumented=instrumented,
                run_key=("sweep", label),
            )
        )

    def test_consecutive_runs_on_one_node(self):
        """Replay leaves the node in the exact state recursion would,
        so run sequences interleave engines freely."""
        app = registry.build("FT")
        n1, n2 = make_node(), make_node()
        s1, s2 = ExecutionSimulator(n1), ExecutionSimulator(n2)
        for key in (("seq", 0), ("seq", 1)):
            fast = s1.run(app, run_key=key)
            generic = s2.run(app, run_key=key, fast_path=False)
            assert fast == generic
        assert meter_state(n1) == meter_state(n2)


class TestPhaseCounterEquivalence:
    @pytest.mark.parametrize("app_name", APPS)
    def test_totals_bit_identical_to_listener_path(self, app_name):
        app = registry.build(app_name)
        n1, n2 = make_node(seed=7), make_node(seed=7)
        collector = _PhaseCounterCollector(CANONICAL_COUNTERS)
        reference = ExecutionSimulator(n1, seed=3).run(
            app,
            listeners=(collector,),
            collect_counters=True,
            run_key=("counters", None, 0),
        )
        product = ExecutionSimulator(n2, seed=3).run_phase_counters(
            app, counters=CANONICAL_COUNTERS, run_key=("counters", None, 0)
        )
        assert product.totals == collector.totals
        assert product.phase_time_s == collector.phase_time
        # The underlying instrumented run is also identical.
        assert product.result == reference
        assert meter_state(n1) == meter_state(n2)

    def test_unknown_counter_totals_zero(self):
        app = registry.build("EP")
        product = ExecutionSimulator(make_node()).run_phase_counters(
            app, counters=("NOT_A_COUNTER",), run_key=()
        )
        assert product.totals == {"NOT_A_COUNTER": 0.0}


class _NullController:
    def on_region_enter(self, region, iteration, node):
        return 0

    def on_region_exit(self, region, iteration, node):
        pass


class _NullListener:
    def on_enter(self, region, iteration, time_s):
        pass

    def on_exit(self, region, iteration, time_s, metrics):
        pass


class TestDispatch:
    def test_uncontrolled_run_uses_replay(self):
        run = ExecutionSimulator(make_node()).run(registry.build("EP"))
        assert run.engine == "replay"

    def test_controller_run_uses_generic(self):
        run = ExecutionSimulator(make_node()).run(
            registry.build("EP"), controller=_NullController()
        )
        assert run.engine == "generic"

    def test_listener_run_uses_generic(self):
        run = ExecutionSimulator(make_node()).run(
            registry.build("EP"), listeners=(_NullListener(),)
        )
        assert run.engine == "generic"

    def test_fast_path_false_forces_generic(self):
        run = ExecutionSimulator(make_node()).run(
            registry.build("EP"), fast_path=False
        )
        assert run.engine == "generic"

    def test_fast_path_demand_rejected_for_controlled_run(self):
        with pytest.raises(WorkloadError):
            ExecutionSimulator(make_node()).run(
                registry.build("EP"),
                controller=_NullController(),
                fast_path=True,
            )

    def test_instrumented_runs_stay_on_replay(self):
        run = ExecutionSimulator(make_node()).run(
            registry.build("EP"), instrumented=True
        )
        assert run.engine == "replay"


class TestInstanceLog:
    def _instance(self, name, iteration=0):
        run = ExecutionSimulator(make_node()).run(registry.build("EP"))
        return run.instances[0]

    def test_lazy_materialisation(self):
        produced = []

        def producer():
            produced.append(True)
            return []

        log = InstanceLog.deferred(producer)
        assert not produced
        assert len(log) == 0
        assert produced == [True]
        len(log)  # second access does not re-produce
        assert produced == [True]

    def test_region_index_matches_scan(self):
        run = ExecutionSimulator(make_node()).run(registry.build("Lulesh"))
        for name in {i.region_name for i in run.instances}:
            assert run.region_instances(name) == [
                i for i in run.instances if i.region_name == name
            ]

    def test_index_maintained_across_append(self):
        run = ExecutionSimulator(make_node()).run(registry.build("EP"))
        first = run.region_instances("phase")
        extra = first[0]
        run.instances.append(extra)
        assert run.region_instances("phase") == first + [extra]

    def test_equality_with_plain_list(self):
        log = InstanceLog()
        assert log == []
        run = ExecutionSimulator(make_node()).run(registry.build("EP"))
        assert run.instances == list(run.instances)

    def test_region_times_and_energies_consistent(self):
        run = ExecutionSimulator(make_node()).run(registry.build("FT"))
        total = sum(i.time_s for i in run.instances if i.region_name == "phase")
        assert run.region_time_s("phase") == total
        assert run.region_energy_j("phase") == sum(
            i.node_energy_j for i in run.instances if i.region_name == "phase"
        )

    def test_run_result_default_construction_still_appends(self):
        run = RunResult(
            app_name="x", node_id=0, operating_point=None
        )
        assert list(run.instances) == []
        assert run.region_instances("anything") == []
