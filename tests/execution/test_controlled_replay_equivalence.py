"""Bit-identity of the controlled-run replay vs the recursive engine.

The controlled replay (:mod:`repro.execution.controlled_replay`) must be
*exactly* equivalent to the generic recursive engine with the same
controller attached: every ``RunResult`` field, every ``RegionInstance``
row (values and order), the controller's
:class:`~repro.readex.rrl.RRLStatistics`, the node's observable meter
and frequency state afterwards.  These tests sweep applications, tuning
models, nodes, seeds and instrumentation configurations — including the
schedule-cache hit path and controller reuse — and compare to the bit,
no tolerances anywhere.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.errors import WorkloadError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.hardware.node import ComputeNode
from repro.hardware.rapl import RaplDomain
from repro.readex.rrl import RRL, StaticController
from repro.readex.tuning_model import TuningModel
from repro.scorep.instrumentation import Instrumentation
from repro.workloads import registry

#: A spread of benchmarks: OpenMP / MPI / hybrid, small and large trees.
APPS = ("Lulesh", "Mcb", "FT", "EP", "Kripke", "BT-MZ")

#: Deterministic per-app tuning models: alternate two scenarios over the
#: phase's children plus a phase scenario — the shape the DTA produces.
TMM_VARIANTS = ("paired", "uniform", "threads")


def make_tmm(app, variant: str = "paired") -> TuningModel:
    regions = [r.name for r in app.phase.children][:4]
    if variant == "uniform":
        best = {name: OperatingPoint(2.2, 1.8, 24) for name in regions}
        best["phase"] = OperatingPoint(2.2, 1.8, 24)
    elif variant == "threads":
        best = {"phase": OperatingPoint(2.5, 2.4, 20)}
        for i, name in enumerate(regions):
            best[name] = OperatingPoint(2.3, 2.0, 16 if i % 2 else 20)
    else:
        best = {"phase": OperatingPoint(2.5, 2.1, 24)}
        for i, name in enumerate(regions):
            best[name] = OperatingPoint(2.4 if i % 2 else 2.5, 2.0, 24)
    return TuningModel.from_best_configs(app.name, "phase", best)


def make_node(node_id=0, seed=config.DEFAULT_SEED, cf=None, ucf=None):
    node = ComputeNode(node_id, seed=seed)
    if cf is not None:
        node.set_frequencies(cf, ucf)
    return node


def meter_state(node):
    """Observable meter + frequency state after a run."""
    return (
        node.now_s,
        node.hdeem.now_s,
        node.core_freq_ghz,
        node.uncore_freq_ghz,
        node.dvfs.log.count,
        node.ufs.log.count,
        tuple(
            node.rapl.read_joules(s, domain)
            for s in range(node.topology.num_sockets)
            for domain in (RaplDomain.PACKAGE, RaplDomain.DRAM)
        ),
    )


def run_both(app, controller_factory, *, node_id=0, node_seed=config.DEFAULT_SEED,
             seed=config.DEFAULT_SEED, cf=None, ucf=None, **kwargs):
    """One controlled run through each engine on identical nodes."""
    n1 = make_node(node_id, node_seed, cf, ucf)
    n2 = make_node(node_id, node_seed, cf, ucf)
    c1, c2 = controller_factory(), controller_factory()
    fast = ExecutionSimulator(n1, seed=seed).run(app, controller=c1, **kwargs)
    generic = ExecutionSimulator(n2, seed=seed).run(
        app, controller=c2, fast_path=False, **kwargs
    )
    return fast, generic, n1, n2, c1, c2


def assert_identical(fast, generic, n1, n2, c1=None, c2=None):
    assert fast.engine == "replay"
    assert generic.engine == "generic"
    assert fast.time_s == generic.time_s
    assert fast.node_energy_j == generic.node_energy_j
    assert fast.cpu_energy_j == generic.cpu_energy_j
    assert fast.switching_time_s == generic.switching_time_s
    assert fast.instrumentation_time_s == generic.instrumentation_time_s
    assert fast.operating_point == generic.operating_point
    assert len(fast.instances) == len(generic.instances)
    assert fast.instances == generic.instances
    assert fast == generic
    assert meter_state(n1) == meter_state(n2)
    if isinstance(c1, RRL):
        assert c1.stats == c2.stats


class TestControlledReplayEquivalence:
    @pytest.mark.parametrize("app_name", APPS)
    def test_rrl_run_bit_identical(self, app_name):
        app = registry.build(app_name)
        model = make_tmm(app)
        assert_identical(
            *run_both(
                app, lambda: RRL(model), instrumented=True, run_key=("dyn", 0)
            )
        )

    @pytest.mark.parametrize("app_name", APPS)
    def test_uninstrumented_rrl_run_bit_identical(self, app_name):
        """The Table 6 "config setting" variant: switching, no probes."""
        app = registry.build(app_name)
        model = make_tmm(app)
        assert_identical(
            *run_both(app, lambda: RRL(model), run_key=("config-only", 0))
        )

    @pytest.mark.parametrize("variant", TMM_VARIANTS)
    def test_tuning_model_variants_bit_identical(self, variant):
        app = registry.build("Lulesh")
        model = make_tmm(app, variant)
        assert_identical(
            *run_both(
                app, lambda: RRL(model), instrumented=True, run_key=("v", variant)
            )
        )

    def test_filtered_instrumentation_bit_identical(self):
        app = registry.build("Lulesh")
        model = make_tmm(app)
        filtered = {
            r.name
            for r in app.phase.children
            if Instrumentation(app).is_instrumented(r)
            and r.kind.value == "function"
        }
        n1, n2 = make_node(), make_node()
        fast = ExecutionSimulator(n1).run(
            app,
            controller=RRL(model),
            instrumentation=Instrumentation(app, filtered=set(filtered)),
            run_key=("filt", 0),
        )
        generic = ExecutionSimulator(n2).run(
            app,
            controller=RRL(model),
            instrumentation=Instrumentation(app, filtered=set(filtered)),
            run_key=("filt", 0),
            fast_path=False,
        )
        assert_identical(fast, generic, n1, n2)

    @pytest.mark.parametrize("node_id", (0, 3, 7))
    def test_nodes_bit_identical(self, node_id):
        app = registry.build("FT")
        model = make_tmm(app)
        assert_identical(
            *run_both(
                app,
                lambda: RRL(model),
                node_id=node_id,
                node_seed=11,
                instrumented=True,
                run_key=("n", node_id),
            )
        )

    def test_entry_state_off_default_bit_identical(self):
        """Runs starting away from the platform default still compile
        the correct first-iteration switch pattern."""
        app = registry.build("Mcb")
        model = make_tmm(app)
        assert_identical(
            *run_both(
                app,
                lambda: RRL(model),
                cf=1.6,
                ucf=1.5,
                instrumented=True,
                run_key=("entry", 0),
            )
        )

    @pytest.mark.parametrize("app_name", ("EP", "Lulesh"))
    def test_static_controller_bit_identical(self, app_name):
        app = registry.build(app_name)
        point = OperatingPoint(2.4, 1.3, 24)
        assert_identical(
            *run_both(app, lambda: StaticController(point), run_key=("st", 0))
        )

    def test_reused_controller_accumulates_identically(self):
        """One RRL across consecutive runs: stats accumulate and the
        second run starts from the first run's hardware state."""
        app = registry.build("Lulesh")
        model = make_tmm(app)
        n1, n2 = make_node(), make_node()
        c1, c2 = RRL(model), RRL(model)
        s1, s2 = ExecutionSimulator(n1), ExecutionSimulator(n2)
        for k in range(3):
            fast = s1.run(app, controller=c1, instrumented=True, run_key=("seq", k))
            generic = s2.run(
                app, controller=c2, instrumented=True, run_key=("seq", k),
                fast_path=False,
            )
            assert fast == generic
        assert c1.stats == c2.stats
        assert meter_state(n1) == meter_state(n2)

    def test_variability_override_not_served_stale_schedules(self):
        """A node with an explicit variability override must not reuse a
        schedule compiled under another node's physics (the cache keys
        on the power model's variability, not just id/seed)."""
        from repro.hardware.power import NodeVariability

        app = registry.build("FT")
        model = make_tmm(app)
        # Populate the cache with the default-variability physics.
        default_node = make_node(0, seed=1)
        ExecutionSimulator(default_node).run(
            app, controller=RRL(model), instrumented=True, run_key=("warm",)
        )
        override = NodeVariability.sample(99, seed=1234)
        n1 = ComputeNode(0, seed=1, variability=override)
        n2 = ComputeNode(0, seed=1, variability=override)
        fast = ExecutionSimulator(n1).run(
            app, controller=RRL(model), instrumented=True, run_key=("ovr",)
        )
        generic = ExecutionSimulator(n2).run(
            app, controller=RRL(model), instrumented=True, run_key=("ovr",),
            fast_path=False,
        )
        assert_identical(fast, generic, n1, n2)

    def test_schedule_cache_hits_stay_bit_identical(self):
        """Repetitions of one configuration (the Table 6 averaging loop)
        reuse the compiled schedule; results must not drift."""
        app = registry.build("FT")
        model = make_tmm(app)
        for rep in range(4):
            assert_identical(
                *run_both(
                    app,
                    lambda: RRL(model),
                    instrumented=True,
                    run_key=("rep", rep),
                )
            )

    @given(
        app_name=st.sampled_from(APPS),
        seed=st.integers(min_value=0, max_value=2**16),
        node_id=st.integers(min_value=0, max_value=7),
        variant=st.sampled_from(TMM_VARIANTS),
        instrumented=st.booleans(),
        label=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_sweep_bit_identical(
        self, app_name, seed, node_id, variant, instrumented, label
    ):
        """Property sweep: apps x tuning models x nodes x seeds."""
        app = registry.build(app_name)
        model = make_tmm(app, variant)
        assert_identical(
            *run_both(
                app,
                lambda: RRL(model),
                seed=seed,
                node_id=node_id,
                instrumented=instrumented,
                run_key=("sweep", label),
            )
        )


class TestDispatch:
    def test_rrl_run_uses_replay(self):
        app = registry.build("EP")
        run = ExecutionSimulator(make_node()).run(
            app, controller=RRL(make_tmm(app)), instrumented=True
        )
        assert run.engine == "replay"

    def test_static_run_uses_replay(self):
        run = ExecutionSimulator(make_node()).run(
            registry.build("EP"),
            controller=StaticController(OperatingPoint(2.4, 1.3, 24)),
        )
        assert run.engine == "replay"

    def test_foreign_controller_keeps_recursion(self):
        class Foreign:
            def on_region_enter(self, region, iteration, node):
                return 0

            def on_region_exit(self, region, iteration, node):
                pass

        run = ExecutionSimulator(make_node()).run(
            registry.build("EP"), controller=Foreign()
        )
        assert run.engine == "generic"

    def test_fast_path_demand_rejected_for_foreign_controller(self):
        class Foreign:
            def on_region_enter(self, region, iteration, node):
                return 0

            def on_region_exit(self, region, iteration, node):
                pass

        with pytest.raises(WorkloadError):
            ExecutionSimulator(make_node()).run(
                registry.build("EP"), controller=Foreign(), fast_path=True
            )

    def test_fast_path_demand_honoured_for_rrl(self):
        app = registry.build("EP")
        run = ExecutionSimulator(make_node()).run(
            app, controller=RRL(make_tmm(app)), fast_path=True
        )
        assert run.engine == "replay"

    def test_declining_compiler_falls_back_to_recursion(self):
        class Declining:
            def on_region_enter(self, region, iteration, node):
                return 0

            def on_region_exit(self, region, iteration, node):
                pass

            def compile_schedule(self, app, node, *, threads, instrumented,
                                 instrumentation):
                return None

        run = ExecutionSimulator(make_node()).run(
            registry.build("EP"), controller=Declining()
        )
        assert run.engine == "generic"

    def test_declining_compiler_rejected_when_demanded(self):
        class Declining:
            def on_region_enter(self, region, iteration, node):
                return 0

            def on_region_exit(self, region, iteration, node):
                pass

            def compile_schedule(self, app, node, *, threads, instrumented,
                                 instrumentation):
                return None

        with pytest.raises(WorkloadError):
            ExecutionSimulator(make_node()).run(
                registry.build("EP"), controller=Declining(), fast_path=True
            )

    def test_listener_run_keeps_recursion_even_with_rrl(self):
        class Listener:
            def on_enter(self, region, iteration, time_s):
                pass

            def on_exit(self, region, iteration, time_s, metrics):
                pass

        app = registry.build("EP")
        run = ExecutionSimulator(make_node()).run(
            app, controller=RRL(make_tmm(app)), listeners=(Listener(),)
        )
        assert run.engine == "generic"
