"""Bit-identity of the config-axis sweep engine vs the per-config loop.

The sweep engine (:mod:`repro.execution.sweep_replay`) must be
*exactly* equivalent to measuring one configuration at a time on fresh
nodes: every ``RunResult`` field, every ``RegionInstance`` row (values,
timings and order), and the meter/MSR end state the equivalent
fresh-node run would leave behind.  These tests sweep benchmarks,
thread counts, seeds and grid shapes and compare to the bit — no
tolerances anywhere — for the heatmap, exhaustive-search and trade-off
paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.errors import FrequencyError, WorkloadError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.execution.sweep_replay import meter_end_state, sweep_run
from repro.hardware.cluster import Cluster
from repro.hardware.node import ComputeNode
from repro.workloads import registry

#: A spread of benchmarks: OpenMP / MPI / hybrid, small and large trees.
APPS = ("Lulesh", "Mcb", "FT", "EP", "Kripke")

#: A thinned grid (3 x 4 cells) that keeps the suite fast.
GRID = [
    (cf, ucf)
    for cf in config.CORE_FREQUENCIES_GHZ[::6]
    for ucf in config.UNCORE_FREQUENCIES_GHZ[::5]
]


def reference_run(app, point, run_key, *, node_id=0, node_seed=config.DEFAULT_SEED,
                  seed=config.DEFAULT_SEED, fast_path=None, **kwargs):
    """The per-config loop body: fresh node, program, run."""
    node = ComputeNode(node_id, seed=node_seed)
    node.set_frequencies(point.core_freq_ghz, point.uncore_freq_ghz)
    run = ExecutionSimulator(node, seed=seed).run(
        app, threads=point.threads, run_key=run_key, fast_path=fast_path, **kwargs
    )
    return run, node


class TestGridEquivalence:
    @pytest.mark.parametrize("app_name", APPS)
    def test_heatmap_grid_cells_bit_identical(self, app_name):
        app = registry.build(app_name)
        points = [OperatingPoint(cf, ucf, 24) for cf, ucf in GRID]
        keys = [("heatmap", cf, ucf) for cf, ucf in GRID]
        sweep = sweep_run(app, points, run_keys=keys)
        assert len(sweep) == len(points)
        for point, key, result, end in zip(
            points, keys, sweep.results, sweep.end_states
        ):
            ref, node = reference_run(app, point, key)
            # Full RunResult equality covers node/cpu energy, times and
            # every lazily materialised RegionInstance row.
            assert result == ref
            assert result.engine == "sweep"
            assert meter_end_state(node) == end

    def test_region_timings_and_instances_match(self):
        app = registry.build("Lulesh")
        point = OperatingPoint(1.8, 2.2, 20)
        sweep = sweep_run(app, [point], run_keys=[("static", 1.8, 2.2, 20)])
        ref, _node = reference_run(app, point, ("static", 1.8, 2.2, 20))
        got, want = list(sweep.results[0].instances), list(ref.instances)
        assert len(got) == len(want) > 0
        for g, w in zip(got, want):
            assert g == w  # includes the RegionTiming payload
            assert g.timing == w.timing

    def test_exhaustive_search_run_keys_with_threads(self):
        """The static-search path: per-thread grids, historical keys."""
        app = registry.build("Lulesh")
        points = [
            OperatingPoint(cf, ucf, t)
            for t in (12, 24)
            for cf, ucf in GRID[:4]
        ]
        keys = [
            ("static", p.core_freq_ghz, p.uncore_freq_ghz, p.threads)
            for p in points
        ]
        sweep = sweep_run(app, points, run_keys=keys)
        for point, key, result in zip(points, keys, sweep.results):
            ref, _ = reference_run(app, point, key)
            assert result == ref

    def test_tradeoff_mixed_thread_sweep(self):
        """Per-cell thread counts in one sweep (the trade-off idiom)."""
        app = registry.build("Lulesh")
        points = [
            OperatingPoint(),
            OperatingPoint(1.2, 1.3, 12),
            OperatingPoint(2.4, 1.7, 16),
        ]
        keys = [("tradeoff", str(p)) for p in points]
        sweep = sweep_run(app, points, run_keys=keys)
        for point, key, result in zip(points, keys, sweep.results):
            ref, _ = reference_run(app, point, key)
            assert result == ref

    def test_matches_recursive_engine_too(self):
        app = registry.build("FT")
        point = OperatingPoint(2.0, 1.5, 24)
        sweep = sweep_run(app, [point], run_keys=[("x",)])
        ref, node = reference_run(app, point, ("x",), fast_path=False)
        assert sweep.results[0] == ref
        assert meter_end_state(node) == sweep.end_states[0]

    def test_instrumented_sweep(self):
        app = registry.build("Mcb")
        point = OperatingPoint(2.2, 2.5, 20)
        sweep = sweep_run(
            app, [point], run_keys=[("probe",)], instrumented=True
        )
        ref, node = reference_run(app, point, ("probe",), instrumented=True)
        assert sweep.results[0] == ref
        assert sweep.results[0].instrumentation_time_s == ref.instrumentation_time_s
        assert meter_end_state(node) == sweep.end_states[0]

    def test_simulator_dispatch_uses_node_recipe(self):
        cluster = Cluster(4, seed=17)
        app = registry.build("EP")
        sim = ExecutionSimulator(cluster.node(2), seed=3)
        point = OperatingPoint(1.5, 2.0, 24)
        sweep = sim.sweep_run(app, [point], run_keys=[("k",)])
        node = cluster.fresh_node(2)
        node.set_frequencies(1.5, 2.0)
        ref = ExecutionSimulator(node, seed=3).run(
            app, threads=24, run_key=("k",)
        )
        assert sweep.results[0] == ref
        assert sweep.results[0].node_id == 2

    @settings(max_examples=8, deadline=None)
    @given(
        app_name=st.sampled_from(APPS),
        seed=st.integers(0, 2**20),
        node_seed=st.integers(0, 2**20),
        node_id=st.integers(0, 3),
        threads=st.sampled_from(config.OPENMP_THREAD_CANDIDATES),
    )
    def test_hypothesis_sweep(self, app_name, seed, node_seed, node_id, threads):
        app = registry.build(app_name)
        cells = GRID[:3]
        points = [OperatingPoint(cf, ucf, threads) for cf, ucf in cells]
        keys = [("heatmap", cf, ucf) for cf, ucf in cells]
        sweep = sweep_run(
            app, points, run_keys=keys,
            node_id=node_id, seed=seed, node_seed=node_seed,
        )
        for point, key, result, end in zip(
            points, keys, sweep.results, sweep.end_states
        ):
            ref, node = reference_run(
                app, point, key, node_id=node_id, node_seed=node_seed, seed=seed
            )
            assert result == ref
            assert meter_end_state(node) == end


class TestSweepValidation:
    def test_empty_sweep(self):
        app = registry.build("EP")
        sweep = sweep_run(app, [], run_keys=[])
        assert len(sweep) == 0

    def test_mismatched_run_keys_rejected(self):
        app = registry.build("EP")
        with pytest.raises(WorkloadError, match="run keys"):
            sweep_run(app, [OperatingPoint()], run_keys=[])

    def test_out_of_range_frequency_rejected(self):
        app = registry.build("EP")
        with pytest.raises(FrequencyError, match="core frequency"):
            sweep_run(app, [OperatingPoint(9.9, 3.0, 24)], run_keys=[("k",)])

    def test_invalid_thread_count_rejected(self):
        app = registry.build("Lulesh")
        with pytest.raises(WorkloadError, match="thread count"):
            sweep_run(app, [OperatingPoint(2.5, 3.0, 99)], run_keys=[("k",)])

    def test_mpi_only_codes_pin_their_threads(self):
        app = registry.build("Kripke")
        assert not app.model.supports_thread_tuning
        point = OperatingPoint(2.0, 2.0, 12)
        sweep = sweep_run(app, [point], run_keys=[("k",)])
        assert sweep.results[0].operating_point.threads == app.default_threads


class TestConsumerEquivalence:
    def test_heatmap_engines_identical(self):
        from repro.analysis.heatmap import energy_heatmap

        cluster = Cluster(2)
        maps = {
            engine: energy_heatmap(
                "FT", threads=24, cluster=cluster, engine=engine
            )
            for engine in ("sweep", "loop")
        }
        assert np.array_equal(
            maps["sweep"].normalized, maps["loop"].normalized
        )
        assert maps["sweep"].best == maps["loop"].best
        assert maps["sweep"].plateau() == maps["loop"].plateau()

    def test_tradeoff_engines_identical(self):
        from repro.analysis.tradeoffs import energy_time_tradeoff

        cluster = Cluster(2)
        configurations = [
            OperatingPoint(1.6, 2.5, 20), OperatingPoint(2.4, 1.7, 24)
        ]
        sweep = energy_time_tradeoff("Mcb", configurations, cluster=cluster)
        loop = energy_time_tradeoff(
            "Mcb", configurations, cluster=cluster, engine="loop"
        )
        assert sweep == loop

    def test_unknown_engines_rejected(self):
        from repro.analysis.heatmap import energy_heatmap
        from repro.analysis.tradeoffs import energy_time_tradeoff
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="heatmap engine"):
            energy_heatmap("EP", threads=24, engine="warp")
        with pytest.raises(CampaignError, match="tradeoff engine"):
            energy_time_tradeoff("EP", [], engine="warp")
