"""Tests for the roofline timing model and scaling laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.execution.speedup import (
    memory_bandwidth_gbs,
    thread_bandwidth_share,
    thread_speedup,
    uncore_bandwidth_shape,
)
from repro.execution.timing import region_timing
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.generator import random_characteristics
from repro.util.rng import rng_for


class TestSpeedup:
    def test_single_thread_is_unity(self):
        assert thread_speedup(1, 0.99, 0.001) == pytest.approx(1.0)

    def test_speedup_bounded_by_thread_count(self):
        for t in (2, 8, 24):
            assert thread_speedup(t, 1.0, 0.0) == pytest.approx(t)
            assert thread_speedup(t, 0.9, 0.002) < t

    def test_overhead_creates_interior_optimum(self):
        s = [thread_speedup(t, 0.98, 0.01) for t in range(1, 25)]
        peak = s.index(max(s)) + 1
        assert 1 < peak < 24

    def test_invalid_threads_rejected(self):
        with pytest.raises(ValueError):
            thread_speedup(0, 0.9, 0.001)


class TestBandwidth:
    def test_peak_at_max_uncore_and_full_node(self):
        bw = memory_bandwidth_gbs(config.UNCORE_FREQ_MAX_GHZ, config.CORES_PER_NODE)
        assert bw == pytest.approx(config.PEAK_MEMBW_GBS)

    def test_monotone_in_uncore_frequency(self):
        bws = [memory_bandwidth_gbs(f, 24) for f in config.UNCORE_FREQUENCIES_GHZ]
        assert all(a < b for a, b in zip(bws, bws[1:]))

    def test_concave_in_uncore_frequency(self):
        """Marginal bandwidth per 100 MHz must shrink (saturation)."""
        bws = [memory_bandwidth_gbs(f, 24) for f in config.UNCORE_FREQUENCIES_GHZ]
        gains = [b - a for a, b in zip(bws, bws[1:])]
        assert all(g2 < g1 for g1, g2 in zip(gains, gains[1:]))

    def test_thread_share_monotone(self):
        shares = [thread_bandwidth_share(t) for t in range(1, 25)]
        assert all(a < b for a, b in zip(shares, shares[1:]))
        assert shares[-1] == pytest.approx(1.0)

    def test_shape_normalised_at_max(self):
        assert uncore_bandwidth_shape(config.UNCORE_FREQ_MAX_GHZ) == pytest.approx(1.0)


class TestRegionTiming:
    @pytest.fixture
    def compute(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            instructions=3e10, ipc=2.0, l1d_miss_rate=0.03, l3d_miss_rate=0.2
        )

    @pytest.fixture
    def memory(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            instructions=3e10, ipc=1.0, l1d_miss_rate=0.34,
            l2d_miss_rate=0.6, l3d_miss_rate=0.65,
        )

    def test_compute_bound_time_falls_with_core_freq(self, compute):
        t_lo = region_timing(compute, threads=24, core_freq_ghz=1.2, uncore_freq_ghz=2.0)
        t_hi = region_timing(compute, threads=24, core_freq_ghz=2.5, uncore_freq_ghz=2.0)
        assert t_hi.time_s < t_lo.time_s

    def test_memory_bound_time_falls_with_uncore_freq(self, memory):
        t_lo = region_timing(memory, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.3)
        t_hi = region_timing(memory, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=3.0)
        assert t_hi.time_s < t_lo.time_s

    def test_compute_bound_insensitive_to_uncore(self, compute):
        """While memory time hides under compute, UFS barely matters."""
        t_lo = region_timing(compute, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.8)
        t_hi = region_timing(compute, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=3.0)
        assert abs(t_lo.time_s - t_hi.time_s) / t_hi.time_s < 0.05

    def test_memory_bound_flag(self, compute, memory):
        tc = region_timing(compute, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.5)
        tm = region_timing(memory, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.5)
        assert not tc.memory_bound
        assert tm.memory_bound

    def test_activity_fractions_valid(self, memory):
        t = region_timing(memory, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.5)
        assert 0.0 <= t.core_activity <= 1.0
        assert 0.0 <= t.uncore_activity <= 1.0

    def test_stalled_cores_have_reduced_activity(self, compute, memory):
        tc = region_timing(compute, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.5)
        tm = region_timing(memory, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.5)
        assert tm.core_activity < tc.core_activity

    def test_time_bounds_respect_overlap(self, memory):
        t = region_timing(memory, threads=24, core_freq_ghz=2.0, uncore_freq_ghz=1.5)
        lower = max(t.compute_time_s, t.memory_time_s)
        upper = t.compute_time_s + t.memory_time_s
        assert lower <= t.time_s <= upper

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=200),
        st.sampled_from(config.CORE_FREQUENCIES_GHZ),
        st.sampled_from(config.UNCORE_FREQUENCIES_GHZ),
        st.sampled_from(config.OPENMP_THREAD_CANDIDATES),
    )
    def test_time_positive_and_bounded(self, idx, fc, fu, threads):
        chars = random_characteristics(rng_for("timing-test", idx))
        t = region_timing(chars, threads=threads, core_freq_ghz=fc, uncore_freq_ghz=fu)
        assert t.time_s > 0
        assert max(t.compute_time_s, t.memory_time_s) <= t.time_s * (1 + 1e-9)
        assert t.time_s <= (t.compute_time_s + t.memory_time_s) * (1 + 1e-9)
