"""Bit-identity of the fleet kernel vs the per-run engines.

The fleet kernel (:mod:`repro.execution.fleet_replay`) batches the
application x node x controller axes into one padded pricing pass.  It
must be *exactly* equivalent to executing each member individually
through :class:`~repro.execution.simulator.ExecutionSimulator` on a
fresh node: every ``RunResult`` field, every ``RegionInstance`` row,
the controller's :class:`~repro.readex.rrl.RRLStatistics`, and the
meter/MSR end state the run would leave behind.  These tests sweep
apps, nodes, TMMs and seeds, then property-test random fleet
compositions — including the invariant that permuting or splitting a
fleet never changes any member's payload (the batching analogue of
PR 8's admission-order property).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.errors import WorkloadError
from repro.execution.fleet_replay import FleetMember, fleet_run
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.execution.sweep_replay import meter_end_state
from repro.hardware.node import ComputeNode
from repro.readex.rrl import RRL, StaticController
from repro.readex.tuning_model import TuningModel
from repro.scorep.instrumentation import Instrumentation
from repro.workloads import registry

#: OpenMP / MPI / hybrid benchmarks with different tree sizes, so mixed
#: fleets exercise genuinely ragged charge-row lengths.
APPS = ("Lulesh", "Mcb", "FT", "EP")

_APP_CACHE: dict = {}


def build_app(name):
    if name not in _APP_CACHE:
        _APP_CACHE[name] = registry.build(name)
    return _APP_CACHE[name]


def make_tmm(app) -> TuningModel:
    regions = [r.name for r in app.phase.children][:4]
    best = {"phase": OperatingPoint(2.5, 2.1, 24)}
    for i, name in enumerate(regions):
        best[name] = OperatingPoint(2.4 if i % 2 else 2.5, 2.0, 24)
    return TuningModel.from_best_configs(app.name, "phase", best)


#: Member shapes, mirroring every analysis-layer call site: grid cells
#: (programmed static points), savings variants (default / static
#: controller / instrumented RRL / config-only RRL).
KINDS = ("default", "static_point", "static_ctrl", "rrl", "rrl_instrumented")


def build_member(spec) -> FleetMember:
    """A fresh FleetMember (fresh controller/instrumentation) per spec."""
    app = build_app(spec["app"])
    kind = spec["kind"]
    member = FleetMember(
        app=app,
        run_key=(kind, spec["app"], spec.get("tag", 0)),
        node_id=spec.get("node_id", 0),
        seed=spec.get("seed", config.DEFAULT_SEED),
        node_seed=spec.get("node_seed"),
    )
    if kind == "default":
        member.threads = config.DEFAULT_OPENMP_THREADS
    elif kind == "static_point":
        member.point = OperatingPoint(
            spec.get("cf", 2.0), spec.get("ucf", 2.2), spec.get("threads", 24)
        )
    elif kind == "static_ctrl":
        member.controller = StaticController(OperatingPoint(2.2, 1.8, 24))
        member.threads = 24
    elif kind == "rrl":
        member.controller = RRL(make_tmm(app))
    else:
        member.controller = RRL(make_tmm(app))
        member.instrumented = True
        member.instrumentation = Instrumentation.compiler_default(app)
    return member


def run_reference(member: FleetMember):
    """The member's per-run execution: fresh node, program, run."""
    node = ComputeNode(
        member.node_id,
        seed=member.seed if member.node_seed is None else member.node_seed,
        topology=member.topology,
        variability=member.variability,
    )
    if member.point is not None:
        node.set_frequencies(member.point.core_freq_ghz, member.point.uncore_freq_ghz)
    threads = member.threads
    if threads is None and member.point is not None:
        threads = member.point.threads
    instrumentation = member.instrumentation
    if instrumentation is not None:
        instrumentation = Instrumentation(
            app=member.app, filtered=set(instrumentation.filtered)
        )
    result = ExecutionSimulator(node, seed=member.seed).run(
        member.app,
        threads=threads,
        controller=member.controller,
        instrumented=member.instrumented,
        instrumentation=instrumentation,
        run_key=member.run_key,
    )
    return result, node


def assert_member_identical(got, end, member_ref: FleetMember):
    ref, node = run_reference(member_ref)
    assert got == ref
    assert list(got.instances) == list(ref.instances)
    assert end == meter_end_state(node)


class TestFleetEquivalence:
    @pytest.mark.parametrize("app_name", APPS)
    def test_every_member_kind_bit_identical(self, app_name):
        specs = [{"app": app_name, "kind": kind} for kind in KINDS]
        fleet = fleet_run([build_member(s) for s in specs])
        assert len(fleet) == len(specs)
        for i, spec in enumerate(specs):
            assert_member_identical(
                fleet.results[i], fleet.end_states[i], build_member(spec)
            )

    def test_mixed_apps_nodes_and_seeds(self):
        specs = [
            {"app": "Lulesh", "kind": "default"},
            {"app": "EP", "kind": "static_point", "cf": 1.8, "ucf": 1.6,
             "threads": 12, "node_id": 3, "seed": 11, "node_seed": 77},
            {"app": "FT", "kind": "rrl", "seed": 5},
            {"app": "Mcb", "kind": "static_point", "cf": 2.3, "ucf": 2.8,
             "node_id": 1},
            {"app": "Lulesh", "kind": "rrl_instrumented"},
            {"app": "FT", "kind": "static_ctrl", "node_seed": 9},
        ]
        fleet = fleet_run([build_member(s) for s in specs])
        for i, spec in enumerate(specs):
            assert_member_identical(
                fleet.results[i], fleet.end_states[i], build_member(spec)
            )

    def test_rrl_statistics_match_per_run_engine(self):
        app = build_app("Lulesh")
        fleet_ctrl, ref_ctrl = RRL(make_tmm(app)), RRL(make_tmm(app))
        member = FleetMember(app=app, run_key=("dynamic", 0), controller=fleet_ctrl)
        fleet = fleet_run([member])
        node = ComputeNode(0, seed=config.DEFAULT_SEED)
        ref = ExecutionSimulator(node).run(
            app, controller=ref_ctrl, run_key=("dynamic", 0)
        )
        assert fleet.results[0] == ref
        assert fleet_ctrl.stats == ref_ctrl.stats

    def test_foreign_controller_falls_back_bit_identically(self):
        class Foreign:
            """No compile_schedule protocol: forces the recursive path."""

            def on_region_enter(self, node, region, app):
                return None

            def on_region_exit(self, node, region, app):
                return None

        app = build_app("EP")
        member = FleetMember(app=app, run_key=("foreign",), controller=Foreign())
        fleet = fleet_run([member])
        node = ComputeNode(0, seed=config.DEFAULT_SEED)
        ref = ExecutionSimulator(node).run(
            app, controller=Foreign(), run_key=("foreign",)
        )
        assert fleet.results[0] == ref
        assert fleet.end_states[0] == meter_end_state(node)

    def test_empty_fleet(self):
        fleet = fleet_run([])
        assert len(fleet) == 0
        assert fleet.results == ()

    def test_invalid_thread_count_raises(self):
        app = build_app("Lulesh")
        member = FleetMember(app=app, run_key=("bad",), threads=999)
        with pytest.raises(WorkloadError, match="invalid thread count"):
            fleet_run([member])

    def test_engine_tag_and_lazy_instances(self):
        member = build_member({"app": "EP", "kind": "static_point"})
        fleet = fleet_run([member])
        assert fleet.results[0].engine == "fleet"
        # Instances materialise lazily and stay stable across reads.
        first = list(fleet.results[0].instances)
        assert first == list(fleet.results[0].instances)
        assert len(first) > 0


#: Random fleet compositions: any app, any member kind, varied seeds
#: and node ids — mixed static/RRL members with ragged phase counts.
member_specs = st.lists(
    st.fixed_dictionaries(
        {
            "app": st.sampled_from(APPS),
            "kind": st.sampled_from(KINDS),
            "seed": st.integers(0, 3),
            "node_id": st.integers(0, 2),
            "tag": st.integers(0, 1),
        }
    ),
    min_size=1,
    max_size=5,
)


class TestFleetProperties:
    @settings(max_examples=8, deadline=None)
    @given(specs=member_specs)
    def test_random_compositions_bit_identical(self, specs):
        fleet = fleet_run([build_member(s) for s in specs])
        for i, spec in enumerate(specs):
            assert_member_identical(
                fleet.results[i], fleet.end_states[i], build_member(spec)
            )

    @settings(max_examples=8, deadline=None)
    @given(specs=member_specs, data=st.data())
    def test_order_independence(self, specs, data):
        """Permuting the fleet permutes — never perturbs — the payloads."""
        order = data.draw(st.permutations(range(len(specs))))
        baseline = fleet_run([build_member(s) for s in specs])
        permuted = fleet_run([build_member(specs[j]) for j in order])
        for pos, j in enumerate(order):
            assert permuted.results[pos] == baseline.results[j]
            assert list(permuted.results[pos].instances) == list(
                baseline.results[j].instances
            )
            assert permuted.end_states[pos] == baseline.end_states[j]

    @settings(max_examples=8, deadline=None)
    @given(specs=member_specs, data=st.data())
    def test_padding_independence_under_splits(self, specs, data):
        """Splitting a fleet (different padded widths per sub-fleet)
        never changes any member's payload."""
        cut = data.draw(st.integers(0, len(specs)))
        whole = fleet_run([build_member(s) for s in specs])
        left = fleet_run([build_member(s) for s in specs[:cut]])
        right = fleet_run([build_member(s) for s in specs[cut:]])
        rejoined = list(left.results) + list(right.results)
        rejoined_ends = list(left.end_states) + list(right.end_states)
        for i in range(len(specs)):
            assert rejoined[i] == whole.results[i]
            assert list(rejoined[i].instances) == list(whole.results[i].instances)
            assert rejoined_ends[i] == whole.end_states[i]

    def test_solo_equals_batched(self):
        """Each member alone prices identically to the batched fleet —
        the padded matrix is invisible."""
        specs = [
            {"app": "Lulesh", "kind": "rrl"},
            {"app": "EP", "kind": "static_point"},
            {"app": "FT", "kind": "default"},
        ]
        batched = fleet_run([build_member(s) for s in specs])
        for i, spec in enumerate(specs):
            solo = fleet_run([build_member(spec)])
            assert solo.results[0] == batched.results[i]
            assert list(solo.results[0].instances) == list(
                batched.results[i].instances
            )
            assert solo.end_states[0] == batched.end_states[i]
