"""End-to-end integration tests across the full stack.

These exercise the complete paper workflow on single benchmarks:
pre-processing → plugin tuning → TMM → RRL production run → accounting,
checking cross-layer invariants rather than per-module behaviour.
"""

import pytest

from repro import config
from repro.execution.simulator import ExecutionSimulator
from repro.execution.slurm import SlurmAccounting
from repro.hardware.cluster import Cluster
from repro.modeling.dataset import build_dataset
from repro.modeling.training import TrainingConfig, train_network
from repro.ptf.framework import PeriscopeTuningFramework
from repro.readex.rrl import RRL
from repro.readex.tuning_model import TuningModel
from repro.scorep.hdeem_plugin import HdeemMetricPlugin
from repro.scorep.papi_plugin import PapiMetricPlugin
from repro.scorep.trace import TraceCollector
from repro.tools.otf2_parser import parse_trace
from repro.tools.sacct import format_sacct_output
from repro.workloads import registry


@pytest.fixture(scope="module")
def cluster():
    return Cluster(4)


@pytest.fixture(scope="module")
def model():
    ds = build_dataset(
        ("EP", "CG", "BT", "MG", "XSBench", "miniFE", "FT", "Blasbench"),
        thread_counts=(12, 24),
    )
    return train_network(ds.features, ds.targets, config=TrainingConfig(epochs=10))


@pytest.fixture(scope="module")
def outcome(cluster, model):
    return PeriscopeTuningFramework(cluster, model).tune("Lulesh")


class TestFullWorkflow:
    def test_dta_produces_complete_artifacts(self, outcome):
        assert len(outcome.readex_config.significant_regions) == 5
        assert outcome.instrumentation.filtered  # something got filtered
        assert outcome.tuning_model.scenarios
        assert outcome.plugin_result.tuning_time_s > 0

    def test_tmm_roundtrip_preserves_rrl_behaviour(self, outcome, cluster, tmp_path):
        path = outcome.tuning_model.save(tmp_path / "tmm.json")
        reloaded = TuningModel.load(path)
        app = registry.build("Lulesh")
        a = ExecutionSimulator(cluster.fresh_node(2)).run(
            registry.build("Lulesh"), controller=RRL(outcome.tuning_model),
            instrumented=True,
        )
        b = ExecutionSimulator(cluster.fresh_node(2)).run(
            registry.build("Lulesh"), controller=RRL(reloaded),
            instrumented=True,
        )
        assert a.time_s == b.time_s
        assert a.node_energy_j == b.node_energy_j

    def test_dynamic_run_saves_cpu_energy(self, outcome, cluster):
        default = ExecutionSimulator(cluster.fresh_node(3)).run(
            registry.build("Lulesh")
        )
        tuned = ExecutionSimulator(cluster.fresh_node(3)).run(
            registry.build("Lulesh"),
            controller=RRL(outcome.tuning_model),
            instrumented=True,
            instrumentation=outcome.instrumentation,
        )
        assert tuned.cpu_energy_j < default.cpu_energy_j

    def test_accounting_chain(self, outcome, cluster):
        """RunResult -> JobRecord -> sacct text, consistent energies."""
        run = ExecutionSimulator(cluster.fresh_node(1)).run(
            registry.build("Lulesh"),
            controller=RRL(outcome.tuning_model),
            instrumented=True,
            instrumentation=outcome.instrumentation,
        )
        acct = SlurmAccounting()
        record = acct.submit(run)
        text = format_sacct_output(acct, job_id=record.job_id)
        assert f"{run.node_energy_j:.2f}" in text

    def test_trace_pipeline_consistent_with_run(self, outcome, cluster):
        """Trace-derived energy matches the run's accounting."""
        collector = TraceCollector(
            "Lulesh",
            metric_plugins=(HdeemMetricPlugin(), PapiMetricPlugin(("LD_INS",))),
        )
        run = ExecutionSimulator(cluster.fresh_node(1)).run(
            registry.build("Lulesh"),
            listeners=(collector,),
            instrumentation=outcome.instrumentation,
            collect_counters=True,
        )
        report = parse_trace(collector.trace())
        assert report.total_energy_j == pytest.approx(run.node_energy_j, rel=0.02)
        assert report.num_phase_instances == 10


class TestCrossLayerInvariants:
    def test_energy_conservation_across_meters(self, cluster):
        """Sum of region energies equals run energy equals sacct energy."""
        run = ExecutionSimulator(cluster.fresh_node(0)).run(registry.build("FT"))
        phase_energy = sum(
            i.node_energy_j for i in run.instances if i.region_name == "phase"
        )
        assert phase_energy == pytest.approx(run.node_energy_j, rel=1e-9)

    def test_rapl_consistent_with_ground_truth_power(self, cluster):
        """RAPL-measured CPU energy stays below node energy and above the
        core-power floor."""
        run = ExecutionSimulator(cluster.fresh_node(0)).run(registry.build("BT"))
        assert 0.3 * run.node_energy_j < run.cpu_energy_j < 0.8 * run.node_energy_j

    def test_normalized_energy_node_independent(self, cluster):
        """E_norm computed on two different nodes agrees (the property
        that makes cross-node training data usable)."""
        def normalized(node_id):
            app = registry.build("MG")
            node = cluster.fresh_node(node_id)
            node.set_frequencies(2.5, 1.5)
            high = ExecutionSimulator(node).run(app, run_key=("n", 1)).node_energy_j
            node = cluster.fresh_node(node_id)
            node.set_frequencies(
                config.CALIBRATION_CORE_FREQ_GHZ,
                config.CALIBRATION_UNCORE_FREQ_GHZ,
            )
            cal = ExecutionSimulator(node).run(app, run_key=("n", 2)).node_energy_j
            return high / cal

        a, b = normalized(0), normalized(1)
        assert a == pytest.approx(b, rel=0.03)

    def test_switching_overhead_scales_with_regions(self, cluster, outcome):
        """More instrumented significant regions -> more switch latency."""
        app = registry.build("Lulesh")
        run = ExecutionSimulator(cluster.fresh_node(0)).run(
            app, controller=RRL(outcome.tuning_model), instrumented=True
        )
        n_switch_opportunities = app.phase_iterations * (
            len(app.phase.children) + 1
        )
        max_latency = n_switch_opportunities * (
            config.DVFS_TRANSITION_LATENCY_S + config.UFS_TRANSITION_LATENCY_S
        )
        assert 0 < run.switching_time_s <= max_latency
