"""Golden whole-paper regeneration manifest: pin every artefact at once.

A scaled-down, fully seeded regeneration of the paper's artefact set —
Figure 2/3 variability series, Figure 6/7 energy grids, the Table V
argmins and the Table VI savings rows — is pinned to one committed
manifest: the full artefact payloads (compared with a tight relative
tolerance) plus their canonical-JSON sha256 checksums.  The artefacts
are produced by :mod:`benchmarks.bench_paper_regen`, the same module
the CI perf gate times, so the golden and the benchmark can never test
different code paths.

Engine independence is asserted in-process: the fleet-kernel
regeneration and the per-cell loop reference must produce bit-identical
checksums before either is compared to the fixture.

Regenerate after an *intentional* change::

    PYTHONPATH=src python tests/integration/test_golden_paper_regen.py --regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from benchmarks.bench_paper_regen import checksum, regenerate_artifacts

GOLDEN_DIR = Path(__file__).parent / "golden"
FIXTURE = GOLDEN_DIR / "paper-regen-manifest.json"
RELATIVE_TOLERANCE = 1e-6

#: The manifest scale: thinned grids and two savings runs keep the
#: regeneration fast while still touching every artefact family.
STRIDE = 4
RUNS = 2


def compute_manifest(engine: str = "fleet") -> dict:
    artifacts = regenerate_artifacts(engine, stride=STRIDE, runs=RUNS)
    return {
        "stride": STRIDE,
        "runs": RUNS,
        "checksums": {name: checksum(artifacts[name]) for name in artifacts},
        "artifacts": artifacts,
    }


def _assert_matches(actual, expected, path=""):
    if isinstance(expected, dict):
        assert isinstance(actual, dict), path
        assert set(actual) == set(expected), path
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert len(actual) == len(expected), path
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=RELATIVE_TOLERANCE), path
    else:
        assert actual == expected, path


@pytest.fixture(scope="module")
def fleet_manifest():
    return compute_manifest("fleet")


def test_fixture_exists():
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        "`PYTHONPATH=src python tests/integration/test_golden_paper_regen.py"
        " --regen`"
    )


def test_engine_independence(fleet_manifest):
    """The per-cell loop reference regenerates bit-identical artefacts."""
    loop = compute_manifest("loop")
    assert loop["checksums"] == fleet_manifest["checksums"]


def test_manifest_matches_golden(fleet_manifest):
    expected = json.loads(FIXTURE.read_text())
    assert set(fleet_manifest["artifacts"]) == set(expected["artifacts"])
    _assert_matches(fleet_manifest["artifacts"], expected["artifacts"])


def test_checksums_match_golden(fleet_manifest):
    """The exact-bit manifest: any float drift flips a checksum."""
    expected = json.loads(FIXTURE.read_text())
    assert fleet_manifest["checksums"] == expected["checksums"]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regen", action="store_true",
                        help="recompute and rewrite the manifest fixture")
    args = parser.parse_args(argv)
    if not args.regen:
        parser.error("nothing to do; pass --regen to rewrite the fixture")
    GOLDEN_DIR.mkdir(exist_ok=True)
    manifest = compute_manifest("fleet")
    loop = compute_manifest("loop")
    if loop["checksums"] != manifest["checksums"]:
        print("ENGINE MISMATCH: refusing to write a fixture the loop "
              "reference disagrees with")
        return 1
    FIXTURE.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
