"""Golden-figure regression tests: pin the paper's numbers to fixtures.

Scaled-down, fully seeded versions of the headline artefacts —
Table 6 tuning savings, Figure 5 LOOCV MAPE, Table 1 counter
selection and the Figure 6/7 energy heatmaps — are pinned to committed
JSON fixtures, so a refactor that silently drifts the simulated
physics, the training pipeline or the selection algorithm fails here
even when every structural assertion still holds.  Each artefact is
computed through *two* engines and both must agree before the fixture
comparison, keeping the goldens engine-independent.

Values are compared with a tight relative tolerance (1e-6): loose
enough for libm differences across platforms, far below any genuine
physics or modelling drift.

Regenerate after an *intentional* change::

    PYTHONPATH=src python tests/integration/test_golden_figures.py --regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from benchmarks.bench_table6_savings import canned_tuning_model
from repro.analysis.savings import compare_static_dynamic
from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.modeling.crossval import network_loocv_mape
from repro.modeling.dataset import build_dataset, measure_counter_rates
from repro.modeling.selection import select_counters
from repro.modeling.training import TrainingConfig
from repro.workloads import registry

GOLDEN_DIR = Path(__file__).parent / "golden"
RELATIVE_TOLERANCE = 1e-6

#: The scaled Figure 5 / Table 1 dataset: a spread of models and suites.
DATASET_BENCHMARKS = ("EP", "CG", "FT", "MG")
DATASET_THREADS = (12, 24)

#: Candidate counters for the scaled Table 1 selection.
TABLE1_CANDIDATES = (
    "PAPI_L3_TCM", "PAPI_L2_TCM", "PAPI_TOT_INS", "PAPI_LD_INS",
    "PAPI_SR_INS", "PAPI_BR_INS", "PAPI_BR_MSP", "PAPI_FP_OPS",
    "PAPI_RES_STL", "PAPI_L1_DCM",
)


def compute_table6() -> dict:
    """Scaled Table 6: Lulesh under the bench's canned tuning model,
    two runs — the same workload the CI perf gate sweeps."""
    model = canned_tuning_model("Lulesh")
    static = OperatingPoint(2.4, 2.0, 24)
    rows = {
        engine: compare_static_dynamic(
            "Lulesh", static, model, cluster=Cluster(2), runs=2, engine=engine
        )
        for engine in ("replay", "recursive")
    }
    assert rows["replay"] == rows["recursive"], "engines disagree"
    row = rows["replay"]
    return {
        "benchmark": row.benchmark,
        "static_job_energy_saving": row.static_job_energy_saving,
        "static_cpu_energy_saving": row.static_cpu_energy_saving,
        "static_time_saving": row.static_time_saving,
        "dynamic_job_energy_saving": row.dynamic_job_energy_saving,
        "dynamic_cpu_energy_saving": row.dynamic_cpu_energy_saving,
        "dynamic_time_saving": row.dynamic_time_saving,
        "config_setting_perf_reduction": row.config_setting_perf_reduction,
        "overhead": row.overhead,
        "default_job_energy_j": row.default.job_energy_j,
        "default_time_s": row.default.time_s,
    }


def _dataset():
    return build_dataset(
        DATASET_BENCHMARKS, thread_counts=DATASET_THREADS, cluster=Cluster(2)
    )


def compute_fig5() -> dict:
    """Scaled Figure 5: LOOCV MAPE per held-out benchmark, two epochs."""
    dataset = _dataset()
    config = TrainingConfig(epochs=2)
    batched = network_loocv_mape(dataset, config=config, engine="batched")
    pointwise = network_loocv_mape(dataset, config=config, engine="pointwise")
    assert batched == pointwise, "engines disagree"
    return {"mape_per_benchmark": batched}


def compute_table1() -> dict:
    """Scaled Table 1: stepwise counter selection over ten candidates."""
    import numpy as np

    dataset = _dataset()
    cluster = Cluster(2)
    rate_rows = {
        bench: np.array(
            [
                measure_counter_rates(
                    registry.build(bench), cluster, counters=TABLE1_CANDIDATES
                )[c]
                for c in TABLE1_CANDIDATES
            ]
        )
        for bench in DATASET_BENCHMARKS
    }
    features = np.vstack([rate_rows[g] for g in dataset.groups])
    freqs = dataset.features[:, -2:]
    selection = select_counters(
        features, list(TABLE1_CANDIDATES), freqs, dataset.targets, max_counters=5
    )
    return {
        "counters": list(selection.counters),
        "mean_vif": selection.mean_vif,
        "adjusted_r2": selection.adjusted_r2,
    }


#: Paper plugin picks for the Figure 6/7 heatmaps (yellow cells).
FIG67_CASES = {
    "fig6-lulesh-heatmap": ("Lulesh", 24, (2.5, 2.1)),
    "fig7-mcb-heatmap": ("Mcb", 20, (1.6, 2.3)),
}


def _compute_heatmap(benchmark: str, threads: int, selected) -> dict:
    """One figure's full-grid heatmap, computed through both engines."""
    import numpy as np

    from repro.analysis.heatmap import energy_heatmap

    maps = {
        engine: energy_heatmap(
            benchmark,
            threads=threads,
            cluster=Cluster(2),
            selected=selected,
            engine=engine,
        )
        for engine in ("sweep", "loop")
    }
    assert np.array_equal(
        maps["sweep"].normalized, maps["loop"].normalized
    ), "engines disagree"
    heatmap = maps["sweep"]
    return {
        "best": list(heatmap.best),
        "best_value": heatmap.best_value,
        "selected_value": heatmap.value_at(*selected),
        "plateau": [list(cell) for cell in heatmap.plateau()],
        "selected_within_plateau": heatmap.selected_within_plateau(),
    }


def compute_fig6() -> dict:
    return _compute_heatmap(*FIG67_CASES["fig6-lulesh-heatmap"])


def compute_fig7() -> dict:
    return _compute_heatmap(*FIG67_CASES["fig7-mcb-heatmap"])


GOLDENS = {
    "table6-savings": compute_table6,
    "fig5-loocv-mape": compute_fig5,
    "table1-counter-selection": compute_table1,
    "fig6-lulesh-heatmap": compute_fig6,
    "fig7-mcb-heatmap": compute_fig7,
}


def _assert_matches(actual, expected, path=""):
    if isinstance(expected, dict):
        assert isinstance(actual, dict), path
        assert set(actual) == set(expected), path
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert list(actual) == list(expected), path
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=RELATIVE_TOLERANCE), path
    else:
        assert actual == expected, path


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden_figure(name):
    fixture = GOLDEN_DIR / f"{name}.json"
    assert fixture.exists(), (
        f"missing fixture {fixture}; regenerate with "
        "`PYTHONPATH=src python tests/integration/test_golden_figures.py --regen`"
    )
    expected = json.loads(fixture.read_text())
    actual = GOLDENS[name]()
    _assert_matches(actual, expected)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regen", action="store_true",
                        help="recompute and rewrite every fixture")
    args = parser.parse_args(argv)
    if not args.regen:
        parser.error("nothing to do; pass --regen to rewrite fixtures")
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, compute in sorted(GOLDENS.items()):
        payload = compute()
        (GOLDEN_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {GOLDEN_DIR / f'{name}.json'}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
