"""Tests for the util helpers (rng streams, validation, tables)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import (
    StreamPrefix,
    _seed_words,
    batched_lognormal,
    rng_for,
    stable_hash,
)
from repro.util.tables import render_table
from repro.util.validation import check_fraction, check_in_range, check_positive


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_sensitive_to_order(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_no_concatenation_collision(self):
        """("ab",) and ("a", "b") must hash differently (separator)."""
        assert stable_hash("ab") != stable_hash("a", "b")

    @given(st.text(), st.integers())
    def test_returns_64bit_unsigned(self, s, i):
        h = stable_hash(s, i)
        assert 0 <= h < 2**64


class TestRngFor:
    def test_same_key_same_stream(self):
        a = rng_for("x", 1).random(5)
        b = rng_for("x", 1).random(5)
        assert np.array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = rng_for("x", 1).random(5)
        b = rng_for("x", 2).random(5)
        assert not np.array_equal(a, b)

    def test_seed_separates_streams(self):
        a = rng_for("x", seed=1).random(5)
        b = rng_for("x", seed=2).random(5)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        """Consuming one stream does not perturb another."""
        rng_for("noise").random(1000)
        a = rng_for("target").random(3)
        b = rng_for("target").random(3)
        assert np.array_equal(a, b)


class TestStreamPrefix:
    def test_matches_stable_hash(self):
        prefix = StreamPrefix("time", 3, ("run", 2.0), "region", seed=42)
        assert prefix.seed_for(7) == stable_hash(
            42, "time", 3, ("run", 2.0), "region", 7
        )

    def test_iteration_seeds_match_stable_hash(self):
        prefix = StreamPrefix("papi", 0, (), "r", seed=1)
        seeds = prefix.seeds_for_iterations(5)
        for i in range(5):
            assert seeds[i] == stable_hash(1, "papi", 0, (), "r", i)

    def test_reusable_after_derivation(self):
        prefix = StreamPrefix("a", seed=0)
        first = prefix.seed_for(0)
        prefix.seed_for(99)
        assert prefix.seed_for(0) == first


class TestBatchedDraws:
    """The replay fast path's RNG layer must be bit-identical to the
    scalar ``rng_for`` streams it replaces."""

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_seed_words_match_numpy_seedsequence(self, seeds):
        words = _seed_words(np.array(seeds, dtype=np.uint64))
        for i, seed in enumerate(seeds):
            expected = np.random.SeedSequence(seed).generate_state(4, np.uint64)
            assert np.array_equal(words[i], expected)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=1,
            max_size=25,
        ),
        st.sampled_from([0.0025, 0.015, 0.3]),
    )
    @settings(max_examples=30, deadline=None)
    def test_scalar_draws_bit_identical(self, seeds, sigma):
        batch = batched_lognormal(np.array(seeds, dtype=np.uint64), sigma)
        for i, seed in enumerate(seeds):
            assert batch[i] == np.random.default_rng(seed).lognormal(0.0, sigma)

    def test_vector_draws_bit_identical(self):
        seeds = np.array(
            [stable_hash("papi", i) for i in range(20)], dtype=np.uint64
        )
        batch = batched_lognormal(seeds, 0.015, size=56)
        for i, seed in enumerate(seeds):
            expected = np.random.default_rng(int(seed)).lognormal(0.0, 0.015, 56)
            assert np.array_equal(batch[i], expected)

    def test_matches_rng_for_streams(self):
        prefix = StreamPrefix("time", 1, ("k",), "region", seed=9)
        batch = batched_lognormal(prefix.seeds_for_iterations(10), 0.0025)
        for i in range(10):
            scalar = rng_for("time", 1, ("k",), "region", i, seed=9).lognormal(
                0.0, 0.0025
            )
            assert batch[i] == scalar

    def test_empty_batch(self):
        assert batched_lognormal(np.empty(0, dtype=np.uint64), 0.1).shape == (0,)


class TestZigguratFastPath:
    """Large single-draw batches ride a vectorized PCG64 + ziggurat
    path whose tables are extracted from the running numpy; it must be
    indistinguishable from per-seed ``default_rng`` draws."""

    def test_large_batch_bit_identical(self):
        seeds = np.random.default_rng(42).integers(
            0, 2**64, size=3000, dtype=np.uint64
        )
        batch = batched_lognormal(seeds, 0.0025)
        for i in (0, 1, 17, 500, 1499, 2999):
            expected = np.random.default_rng(int(seeds[i])).lognormal(0.0, 0.0025)
            assert batch[i] == expected

    def test_small_seed_magnitudes(self):
        seeds = np.arange(64, dtype=np.uint64)
        batch = batched_lognormal(seeds, 0.015)
        for i in range(64):
            assert batch[i] == np.random.default_rng(i).lognormal(0.0, 0.015)

    def test_fast_and_scalar_paths_agree_everywhere(self):
        from repro.util.rng import _lognormal_scalar, _seed_words, _ziggurat_fast_path

        seeds = np.random.default_rng(7).integers(
            0, 2**64, size=2048, dtype=np.uint64
        )
        fast = _ziggurat_fast_path()
        if fast is None:  # pragma: no cover - depends on numpy internals
            pytest.skip("ziggurat fast path unavailable on this numpy")
        words = _seed_words(seeds)
        got = np.empty(len(seeds))
        fast.lognormal_into(words, 0.0025, got)
        want = np.empty(len(seeds))
        _lognormal_scalar(words.tolist(), 0.0025, None, want, range(len(seeds)))
        assert np.array_equal(got, want)

    def test_first_outputs_match_raw_streams(self):
        from repro.util.rng import _first_outputs, _seed_words

        seeds = np.random.default_rng(3).integers(
            0, 2**64, size=32, dtype=np.uint64
        )
        outputs = _first_outputs(_seed_words(seeds))
        for i, seed in enumerate(seeds):
            raw = np.random.default_rng(int(seed)).bit_generator.random_raw()
            assert int(outputs[i]) == int(raw)

    def test_fill_iteration_seeds_matches_seeds_for_iterations(self):
        prefix = StreamPrefix("time", 2, ("grid", 1.2, 1.3), "r", seed=4)
        out = np.empty(12, dtype=np.uint64)
        prefix.fill_iteration_seeds(out)
        assert np.array_equal(out, prefix.seeds_for_iterations(12))
        for i in range(12):
            assert out[i] == prefix.seed_for(i)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError, match="x must be in"):
            check_in_range("x", 11, 0, 10)

    def test_check_fraction(self):
        assert check_fraction("x", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_fraction("x", 1.5)


class TestRenderTable:
    def test_basic_rendering(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_columns_align(self):
        text = render_table(["col"], [["x"], ["longer-cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3].rstrip()) or True
        assert all("|" not in line or line.count("|") == 0 for line in lines)
