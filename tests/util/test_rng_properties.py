"""Property-based tests of the keyed RNG layer (:mod:`repro.util.rng`).

The replay fast paths lean on three promises: keyed streams are stable
(the same key always yields the same stream, whatever else was drawn),
the cached-prefix seed derivation equals the from-scratch hash, and the
batched lognormal draws are bit-identical to per-key ``default_rng``
generators.  Hypothesis sweeps the key space.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.util.rng import StreamPrefix, batched_lognormal, rng_for, stable_hash

#: Key parts as they occur in the codebase: labels, ids, nested run keys.
key_parts = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.tuples(st.text(max_size=6), st.integers(min_value=0, max_value=999)),
)
keys = st.lists(key_parts, min_size=1, max_size=4)


class TestStableHash:
    @given(keys, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50)
    def test_deterministic_across_calls(self, key, seed):
        assert stable_hash(seed, *key) == stable_hash(seed, *key)

    @given(keys, st.integers(min_value=0, max_value=100))
    @settings(max_examples=50)
    def test_seed_separates_streams(self, key, seed):
        assert stable_hash(seed, *key) != stable_hash(seed + 1, *key)

    @given(keys, keys)
    @settings(max_examples=50)
    def test_distinct_keys_distinct_hashes(self, a, b):
        if a != b:
            assert stable_hash(0, *a) != stable_hash(0, *b)


class TestKeyedStreamStability:
    @given(keys, st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=30)
    def test_stream_independent_of_consumption_order(self, key, seed):
        """Drawing other streams first never disturbs a keyed stream."""
        expected = rng_for(*key, seed=seed).normal(size=4)
        rng_for("something", "else", seed=seed).normal(size=100)
        again = rng_for(*key, seed=seed).normal(size=4)
        assert np.array_equal(expected, again)

    @given(keys, keys, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_prefix_seed_equals_stable_hash(self, prefix, suffix, seed):
        """The cached-prefix derivation is exactly the full hash."""
        stream = StreamPrefix(*prefix, seed=seed)
        assert stream.seed_for(*suffix) == stable_hash(seed, *prefix, *suffix)

    @given(keys, st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=30)
    def test_iteration_seeds_match_pointwise_derivation(self, prefix, seed, n):
        """``seeds_for_iterations`` equals ``seed_for(i)`` for every i."""
        stream = StreamPrefix(*prefix, seed=seed)
        batch = stream.seeds_for_iterations(n)
        assert batch.dtype == np.uint64
        assert [int(v) for v in batch] == [stream.seed_for(i) for i in range(n)]


class TestBatchedLognormal:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=20
        ),
        st.floats(min_value=1e-6, max_value=0.5, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_bit_identical_to_fresh_generators(self, seeds, sigma):
        batch = batched_lognormal(np.array(seeds, dtype=np.uint64), sigma)
        expected = [
            np.random.default_rng(s).lognormal(0.0, sigma) for s in seeds
        ]
        assert batch.tolist() == expected

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=10)
    def test_sized_draws_bit_identical(self, size):
        seeds = np.array([3, 2**40, 11], dtype=np.uint64)
        batch = batched_lognormal(seeds, 0.01, size)
        for row, seed in zip(batch, seeds):
            expected = np.random.default_rng(int(seed)).lognormal(0.0, 0.01, size)
            assert row.tolist() == expected.tolist()

    def test_empty_batch(self):
        assert batched_lognormal(np.array([], dtype=np.uint64), 0.1).shape == (0,)
