"""Tests for counter-value derivation from workload characteristics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.counters.generation import (
    CounterGenerator,
    MeasurementContext,
    exact_counters,
)
from repro.counters.papi import PAPI_PRESETS
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.generator import random_characteristics
from repro.util.rng import rng_for


@pytest.fixture
def chars() -> WorkloadCharacteristics:
    return WorkloadCharacteristics(instructions=1e10)


@pytest.fixture
def ctx() -> MeasurementContext:
    return MeasurementContext(elapsed_s=0.5, core_freq_ghz=2.0, threads=24)


class TestExactCounters:
    def test_all_presets_covered(self, chars, ctx):
        values = exact_counters(chars, ctx)
        assert set(values) == set(PAPI_PRESETS)

    def test_all_values_non_negative(self, chars, ctx):
        assert all(v >= 0 for v in exact_counters(chars, ctx).values())

    def test_branch_accounting_consistent(self, chars, ctx):
        v = exact_counters(chars, ctx)
        assert v["PAPI_BR_TKN"] + v["PAPI_BR_NTK"] == pytest.approx(v["PAPI_BR_CN"])
        assert v["PAPI_BR_MSP"] + v["PAPI_BR_PRC"] == pytest.approx(v["PAPI_BR_CN"])
        assert v["PAPI_BR_CN"] + v["PAPI_BR_UCN"] == pytest.approx(v["PAPI_BR_INS"])

    def test_load_store_sum(self, chars, ctx):
        v = exact_counters(chars, ctx)
        assert v["PAPI_LD_INS"] + v["PAPI_SR_INS"] == pytest.approx(v["PAPI_LST_INS"])

    def test_cache_hierarchy_monotone(self, chars, ctx):
        v = exact_counters(chars, ctx)
        assert v["PAPI_L1_DCM"] >= v["PAPI_L2_DCM"] >= v["PAPI_L3_TCM"]

    def test_l2_reads_writes_partition_accesses(self, chars, ctx):
        v = exact_counters(chars, ctx)
        assert v["PAPI_L2_DCR"] + v["PAPI_L2_DCW"] == pytest.approx(v["PAPI_L2_DCA"])

    def test_stalls_bounded_by_cycles(self, chars, ctx):
        v = exact_counters(chars, ctx)
        assert v["PAPI_RES_STL"] <= v["PAPI_TOT_CYC"]

    def test_cycles_scale_with_time_and_frequency(self, chars):
        v1 = exact_counters(chars, MeasurementContext(1.0, 2.0, 24))
        v2 = exact_counters(chars, MeasurementContext(2.0, 2.0, 24))
        assert v2["PAPI_TOT_CYC"] == pytest.approx(2 * v1["PAPI_TOT_CYC"])
        # Frequency-independent counters must not change with context.
        assert v2["PAPI_LD_INS"] == v1["PAPI_LD_INS"]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_invariants_hold_for_random_workloads(self, idx):
        rng = rng_for("gen-test", idx)
        chars = random_characteristics(rng)
        ctx = MeasurementContext(elapsed_s=1.0, core_freq_ghz=2.0, threads=24)
        v = exact_counters(chars, ctx)
        assert all(val >= 0 for val in v.values())
        assert v["PAPI_L1_DCM"] >= v["PAPI_L2_DCM"] >= v["PAPI_L3_TCM"]
        assert v["PAPI_RES_STL"] <= v["PAPI_TOT_CYC"]
        assert v["PAPI_TOT_INS"] >= v["PAPI_LST_INS"]


class TestCounterGenerator:
    def test_noise_is_deterministic(self, chars, ctx):
        gen = CounterGenerator()
        a = gen.sample(chars, ctx, key=("run", 1))
        b = gen.sample(chars, ctx, key=("run", 1))
        assert a == b

    def test_noise_differs_across_runs(self, chars, ctx):
        gen = CounterGenerator()
        a = gen.sample(chars, ctx, key=("run", 1))
        b = gen.sample(chars, ctx, key=("run", 2))
        assert a != b

    def test_noise_is_small(self, chars, ctx):
        gen = CounterGenerator()
        exact = exact_counters(chars, ctx)
        noisy = gen.sample(chars, ctx, key=("run", 3))
        for name, value in noisy.items():
            if exact[name] > 0:
                assert abs(value / exact[name] - 1.0) < 0.10

    def test_averaging_across_runs_converges(self, chars, ctx):
        gen = CounterGenerator()
        exact = exact_counters(chars, ctx)["PAPI_LD_INS"]
        samples = [
            gen.sample(chars, ctx, key=("avg", i))["PAPI_LD_INS"] for i in range(40)
        ]
        mean = sum(samples) / len(samples)
        assert abs(mean / exact - 1.0) < 0.01
