"""Tests for PAPI preset definitions, native events and event sets."""

import pytest

from repro import config
from repro.counters.eventset import EventSet, MultiplexSchedule
from repro.counters.native import NATIVE_EVENTS
from repro.counters.papi import PAPI_PRESETS, TABLE1_COUNTERS, preset, preset_names
from repro.errors import CounterError, EventSetError


class TestPresets:
    def test_platform_has_56_presets(self):
        assert len(PAPI_PRESETS) == config.PAPI_NUM_PRESET_COUNTERS == 56

    def test_platform_has_162_native_events(self):
        assert len(NATIVE_EVENTS) == config.PAPI_NUM_NATIVE_COUNTERS == 162

    def test_table1_counters_are_presets(self):
        for name in TABLE1_COUNTERS:
            assert name in PAPI_PRESETS
        assert len(TABLE1_COUNTERS) == 7

    def test_lookup_by_short_name(self):
        assert preset("LD_INS").name == "PAPI_LD_INS"
        assert preset("PAPI_LD_INS").short_name == "LD_INS"

    def test_unknown_preset_rejected(self):
        with pytest.raises(CounterError):
            preset("PAPI_NOT_A_COUNTER")

    def test_codes_are_unique(self):
        codes = {c.code for c in PAPI_PRESETS.values()}
        assert len(codes) == len(PAPI_PRESETS)

    def test_enumeration_order_stable(self):
        names = preset_names()
        assert names[0] == "PAPI_L1_DCM"
        assert len(names) == 56


class TestEventSet:
    def test_capacity_limit_enforced(self):
        es = EventSet()
        for name in ("LD_INS", "SR_INS", "BR_MSP", "BR_NTK"):
            es.add_event(name)
        with pytest.raises(EventSetError, match="full"):
            es.add_event("RES_STL")

    def test_duplicate_event_rejected(self):
        es = EventSet()
        es.add_event("LD_INS")
        with pytest.raises(EventSetError, match="already"):
            es.add_event("PAPI_LD_INS")

    def test_start_stop_reads_only_programmed_events(self):
        es = EventSet()
        es.add_event("LD_INS")
        es.add_event("SR_INS")
        es.start()
        measurement = {name: 1.0 for name in PAPI_PRESETS}
        values = es.stop(measurement)
        assert set(values) == {"PAPI_LD_INS", "PAPI_SR_INS"}

    def test_read_before_measurement_rejected(self):
        es = EventSet()
        es.add_event("LD_INS")
        with pytest.raises(EventSetError):
            es.read()

    def test_empty_set_cannot_start(self):
        with pytest.raises(EventSetError):
            EventSet().start()

    def test_modification_while_running_rejected(self):
        es = EventSet()
        es.add_event("LD_INS")
        es.start()
        with pytest.raises(EventSetError):
            es.add_event("SR_INS")


class TestMultiplexSchedule:
    def test_all_presets_need_14_runs(self):
        schedule = MultiplexSchedule(list(PAPI_PRESETS))
        assert schedule.num_runs == 14  # ceil(56 / 4)

    def test_groups_cover_all_events_once(self):
        schedule = MultiplexSchedule(list(PAPI_PRESETS))
        flat = [e for g in schedule.groups for e in g]
        assert sorted(flat) == sorted(PAPI_PRESETS)

    def test_duplicate_events_rejected(self):
        with pytest.raises(EventSetError):
            MultiplexSchedule(["LD_INS", "PAPI_LD_INS"])

    def test_event_sets_are_programmed(self):
        schedule = MultiplexSchedule(["LD_INS", "SR_INS", "BR_MSP", "BR_NTK", "RES_STL"])
        sets = schedule.event_sets()
        assert len(sets) == 2
        assert len(sets[0].events) == 4
        assert len(sets[1].events) == 1
