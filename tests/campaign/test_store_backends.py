"""Property-based equivalence of the pluggable store backends.

Every backend (jsonl, sqlite, segment — plus the in-memory reference)
must expose *identical* observable ``ResultStore`` semantics: the same
gets, membership, lengths, summaries, stale accounting, version-mismatch
errors and stale-healing behaviour for any sequence of operations.  The
hypothesis suite drives all backends with the same randomly generated
operation sequence and compares them against the in-memory model after
every step; the deterministic tests below pin the semantics the rest of
the codebase relies on, once per backend.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.backends import BACKEND_KINDS, detect_backend_kind
from repro.campaign.store import STORE_VERSION, ResultStore, job_key
from repro.errors import CampaignError

DISK_BACKENDS = tuple(BACKEND_KINDS)  # ("jsonl", "sqlite", "segment")


_SUFFIXES = {"jsonl": ".jsonl", "sqlite": ".sqlite", "segment": ""}


def store_for(tmp_path, backend: str, name: str = "store") -> ResultStore:
    path = tmp_path / f"{name}-{backend}{_SUFFIXES[backend]}"
    return ResultStore(path, backend=backend)


def descriptor(i: int) -> dict:
    return {"mode": "synthetic", "app": f"app-{i % 5}", "i": i}


def result(i: int, generation: int = 0) -> dict:
    return {"node_energy_j": float(i) + generation * 0.5, "time_s": 1.0 + i}


# ---------------------------------------------------------------------------
# Hypothesis: all backends behave like the in-memory model
# ---------------------------------------------------------------------------

# An operation is (op, item-index, generation); small index pools force
# key collisions so the no-op-on-existing path is exercised constantly.
operations = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "contains"]),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=30,
)


@settings(max_examples=25, deadline=None)
@given(ops=operations)
def test_backends_equivalent_under_random_operations(tmp_path_factory, ops):
    tmp_path = tmp_path_factory.mktemp("equiv")
    model = ResultStore()  # in-memory reference
    stores = {b: store_for(tmp_path, b) for b in DISK_BACKENDS}
    try:
        for op, i, generation in ops:
            key = job_key(descriptor(i))
            if op == "put":
                model.put(key, descriptor(i), result(i, generation))
                for store in stores.values():
                    store.put(key, descriptor(i), result(i, generation))
            elif op == "get":
                expected = model.get(key)
                for backend, store in stores.items():
                    assert store.get(key) == expected, backend
            else:
                expected = key in model
                for backend, store in stores.items():
                    assert (key in store) == expected, backend
        # Terminal state: identical length, membership and summaries.
        model_summary = model.summary()
        for backend, store in stores.items():
            assert len(store) == len(model), backend
            summary = store.summary()
            for field in ("results", "stale", "apps", "modes"):
                assert summary[field] == model_summary[field], backend
            recs = sorted(store.iter_records(), key=lambda r: r["key"])
            model_recs = sorted(model.iter_records(), key=lambda r: r["key"])
            assert recs == model_recs, backend
        # And the state survives a close + reopen on every disk tier.
        for backend, store in stores.items():
            path = store.path
            store.close()
            with ResultStore(path) as reopened:
                assert reopened.backend == backend
                assert len(reopened) == len(model)
                for i in range(10):
                    key = job_key(descriptor(i))
                    assert reopened.get(key) == model.get(key), backend
    finally:
        for store in stores.values():
            store.close()


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=8
    )
)
def test_floats_round_trip_exactly_on_every_backend(tmp_path_factory, values):
    tmp_path = tmp_path_factory.mktemp("floats")
    for backend in DISK_BACKENDS:
        with store_for(tmp_path, backend) as store:
            desc = {"mode": "synthetic", "app": "fp", "i": 0}
            key = job_key(desc)
            store.put(key, desc, {"series": values})
            recalled = store.get(key)["series"]
            assert recalled == values
            assert [repr(v) for v in recalled] == [repr(v) for v in values]


# ---------------------------------------------------------------------------
# Deterministic semantics, once per backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", DISK_BACKENDS)
class TestPerBackendSemantics:
    def test_version_mismatch_raises_campaign_error(self, tmp_path, backend):
        with store_for(tmp_path, backend) as store:
            desc = descriptor(0)
            key = job_key(desc)
            store._backend.put_record(
                {
                    "key": key,
                    "store_version": STORE_VERSION - 1,
                    "job": desc,
                    "result": result(0),
                }
            )
            store.refresh()
            assert store.stale_records == 1
            with pytest.raises(CampaignError, match="schema version"):
                store.get(key)

    def test_put_heals_stale_record(self, tmp_path, backend):
        with store_for(tmp_path, backend) as store:
            desc = descriptor(1)
            key = job_key(desc)
            store._backend.put_record(
                {
                    "key": key,
                    "store_version": STORE_VERSION - 1,
                    "job": desc,
                    "result": result(1),
                }
            )
            store.refresh()
            assert store.stale_records == 1
            store.put(key, desc, result(1, generation=9))
            assert store.get(key) == result(1, generation=9)
            assert store.stale_records == 0
            path = store.path
        with ResultStore(path) as reopened:  # healing is durable
            assert reopened.get(key) == result(1, generation=9)
            assert reopened.stale_records == 0

    def test_put_is_noop_for_existing_current_record(self, tmp_path, backend):
        with store_for(tmp_path, backend) as store:
            desc = descriptor(2)
            key = job_key(desc)
            store.put(key, desc, result(2, generation=0))
            store.put(key, desc, result(2, generation=1))  # ignored
            assert store.get(key) == result(2, generation=0)
            assert len(store) == 1

    def test_key_descriptor_mismatch_rejected(self, tmp_path, backend):
        with store_for(tmp_path, backend) as store:
            with pytest.raises(CampaignError, match="does not match"):
                store.put("0" * 32, descriptor(3), result(3))

    def test_put_many_round_trips(self, tmp_path, backend):
        items = [
            (job_key(descriptor(i)), descriptor(i), result(i)) for i in range(7)
        ]
        with store_for(tmp_path, backend) as store:
            store.put_many(items)
            path = store.path
            assert len(store) == 7
        with ResultStore(path) as reopened:
            for key, _, payload in items:
                assert reopened.get(key) == payload

    def test_compact_drops_stale_keeps_current(self, tmp_path, backend):
        with store_for(tmp_path, backend) as store:
            stale_desc = descriptor(4)
            stale_key = job_key(stale_desc)
            store._backend.put_record(
                {
                    "key": stale_key,
                    "store_version": STORE_VERSION - 1,
                    "job": stale_desc,
                    "result": result(4),
                }
            )
            store.refresh()
            other = descriptor(5)
            store.put(job_key(other), other, result(5))
            assert store.stale_records == 1
            stats = store.compact()
            assert stats["dropped"] >= 1
            assert store.get(stale_key) is None  # dead record reclaimed
            assert store.get(job_key(other)) == result(5)
            assert store.stale_records == 0
            assert store.verify() == []
            path = store.path
        with ResultStore(path) as reopened:
            assert len(reopened) == 1
            assert reopened.stale_records == 0

    def test_summary_names_backend(self, tmp_path, backend):
        with store_for(tmp_path, backend) as store:
            assert store.summary()["backend"] == backend


# ---------------------------------------------------------------------------
# Backend auto-detection
# ---------------------------------------------------------------------------


class TestDetection:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("store.jsonl", "jsonl"),
            ("store.ndjson", "jsonl"),
            ("store.sqlite", "sqlite"),
            ("store.sqlite3", "sqlite"),
            ("store.db", "sqlite"),
            ("store-directory", "segment"),
        ],
    )
    def test_kind_from_fresh_path(self, tmp_path, name, expected):
        assert detect_backend_kind(tmp_path / name) == expected

    def test_existing_directory_is_segment(self, tmp_path):
        target = tmp_path / "store.weird"
        target.mkdir()
        assert detect_backend_kind(target) == "segment"

    def test_existing_sqlite_file_sniffed_by_magic(self, tmp_path):
        target = tmp_path / "store.cache"
        with ResultStore(target, backend="sqlite") as store:
            desc = descriptor(6)
            store.put(job_key(desc), desc, result(6))
        assert detect_backend_kind(target) == "sqlite"
        with ResultStore(target) as reopened:  # sniffed, not suffix-matched
            assert reopened.backend == "sqlite"
            assert reopened.get(job_key(descriptor(6))) == result(6)

    def test_unknown_backend_name_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="unknown store backend"):
            ResultStore(tmp_path / "x.jsonl", backend="parquet")

    def test_reopen_without_backend_arg_round_trips(self, tmp_path):
        for backend in DISK_BACKENDS:
            desc = descriptor(8)
            key = job_key(desc)
            with store_for(tmp_path, backend) as store:
                store.put(key, desc, result(8))
                path = store.path
            with ResultStore(path) as reopened:
                assert reopened.backend == backend
                assert reopened.get(key) == result(8)


def test_jsonl_layout_unchanged_on_disk(tmp_path):
    """The jsonl tier must stay byte-compatible with the seed layout
    (one sorted-key JSON object per line) so old stores keep working."""
    path = tmp_path / "store.jsonl"
    desc = descriptor(0)
    key = job_key(desc)
    with ResultStore(path) as store:
        store.put(key, desc, result(0))
    line = path.read_text().strip()
    assert json.loads(line) == {
        "key": key,
        "store_version": STORE_VERSION,
        "job": desc,
        "result": result(0),
    }
    assert line == json.dumps(json.loads(line), sort_keys=True)
