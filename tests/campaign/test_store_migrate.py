"""Golden-fixture tests for store migration between backends.

``tests/campaign/golden/store-v2.jsonl`` is a committed v2 JSONL store:
twelve current-version records plus two records written under the
previous schema version (stale weight whose keys were hashed under that
version).  Migrating it into each backend must carry every record
verbatim — byte-identical ``get()`` payloads, identical ``summary()``
(modulo path/backend), stale accounting preserved.

``store-pre-v2.jsonl`` is a pre-versioning store (no ``store_version``
field); ``migrate`` must refuse it with a clear CampaignError, because
its keys were hashed under the v1 scheme and carrying the records over
would only enshrine dead weight.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.campaign.store import ResultStore, migrate_store
from repro.errors import CampaignError

GOLDEN = Path(__file__).parent / "golden"
V2_FIXTURE = GOLDEN / "store-v2.jsonl"
PRE_V2_FIXTURE = GOLDEN / "store-pre-v2.jsonl"

DEST_NAMES = {
    "jsonl": "migrated.jsonl",
    "sqlite": "migrated.sqlite",
    "segment": "migrated-segments",
}


def fixture_records() -> list[dict]:
    return [
        json.loads(line)
        for line in V2_FIXTURE.read_text().splitlines()
        if line.strip()
    ]


def test_fixture_is_what_the_docstring_claims():
    records = fixture_records()
    assert len(records) == 14
    assert sum(1 for r in records if "store_version" in r) == 14
    versions = {r["store_version"] for r in records}
    assert len(versions) == 2  # current + one stale generation


@pytest.mark.parametrize("backend", ("jsonl", "sqlite", "segment"))
def test_migrate_fixture_to_each_backend(tmp_path, backend):
    source = tmp_path / "source.jsonl"
    shutil.copy(V2_FIXTURE, source)
    dest = tmp_path / DEST_NAMES[backend]

    stats = migrate_store(source, dest, backend=backend)
    assert stats["migrated"] == 14
    assert stats["stale"] == 2
    assert stats["backend"] == backend

    records = fixture_records()
    with ResultStore(source) as src, ResultStore(dest) as out:
        assert out.backend == backend
        # Byte-identical get() payloads for every current-version key:
        # serialising the payload must give the same bytes both sides.
        current = [r for r in records if r["store_version"] == 2]
        assert len(current) == 12
        for record in current:
            src_payload = src.get(record["key"])
            out_payload = out.get(record["key"])
            assert out_payload == src_payload == record["result"]
            assert json.dumps(out_payload, sort_keys=True) == json.dumps(
                src_payload, sort_keys=True
            )
        # Stale records still raise (not served, not dropped) ...
        stale = [r for r in records if r["store_version"] != 2]
        for record in stale:
            with pytest.raises(CampaignError, match="schema version"):
                out.get(record["key"])
        # ... and summary() is identical modulo path/backend.
        src_summary, out_summary = src.summary(), out.summary()
        for field in ("results", "stale", "apps", "modes"):
            assert out_summary[field] == src_summary[field]
        assert out_summary["stale"] == 2


def test_migrate_round_trip_back_to_jsonl(tmp_path):
    """jsonl -> segment -> jsonl carries every record unchanged."""
    source = tmp_path / "source.jsonl"
    shutil.copy(V2_FIXTURE, source)
    middle = tmp_path / "middle-segments"
    final = tmp_path / "final.jsonl"
    migrate_store(source, middle)
    migrate_store(middle, final)
    original = {r["key"]: r for r in fixture_records()}
    with ResultStore(final) as store:
        round_tripped = {r["key"]: r for r in store.iter_records()}
    assert round_tripped == original


def test_migrate_refuses_pre_v2_store(tmp_path):
    source = tmp_path / "source.jsonl"
    shutil.copy(PRE_V2_FIXTURE, source)
    dest = tmp_path / "dest.sqlite"
    with pytest.raises(CampaignError, match="pre-v2"):
        migrate_store(source, dest)
    # Nothing half-written: the destination holds no records.
    if dest.exists():
        with ResultStore(dest) as store:
            assert len(store) == 0


def test_migrate_refuses_missing_source(tmp_path):
    with pytest.raises(CampaignError, match="does not exist"):
        migrate_store(tmp_path / "nope.jsonl", tmp_path / "dest.sqlite")


def test_migrate_refuses_same_path(tmp_path):
    source = tmp_path / "source.jsonl"
    shutil.copy(V2_FIXTURE, source)
    with pytest.raises(CampaignError, match="same path"):
        migrate_store(source, source)


def test_migrate_refuses_non_empty_destination(tmp_path):
    source = tmp_path / "source.jsonl"
    shutil.copy(V2_FIXTURE, source)
    dest = tmp_path / "dest.sqlite"
    migrate_store(source, dest)
    with pytest.raises(CampaignError, match="non-empty"):
        migrate_store(source, dest)
