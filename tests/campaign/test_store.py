"""Tests for the content-addressed on-disk result store."""

import json

import pytest

from repro.campaign.plan import CampaignJob
from repro.campaign.store import STORE_VERSION, ResultStore, job_key
from repro.errors import CampaignError


@pytest.fixture
def job():
    return CampaignJob(app="EP", mode="sweep", threads=24)


class TestJobKey:
    def test_stable_across_calls(self, job):
        assert job_key(job.descriptor()) == job_key(job.descriptor())

    def test_distinguishes_jobs(self, job):
        other = CampaignJob(app="EP", mode="sweep", threads=16)
        assert job_key(job.descriptor()) != job_key(other.descriptor())

    def test_mode_label_is_significant(self):
        """sweep and static must not share results (different noise)."""
        sweep = CampaignJob(app="EP", mode="sweep", threads=24)
        static = CampaignJob(app="EP", mode="static", threads=24)
        assert job_key(sweep.descriptor()) != job_key(static.descriptor())

    def test_version_mixed_in(self, job):
        payload = json.dumps(
            {"store_version": STORE_VERSION, **job.descriptor()}, sort_keys=True
        )
        assert "store_version" in payload


class TestResultStore:
    def test_round_trip(self, tmp_path, job):
        store = ResultStore(tmp_path / "store.jsonl")
        key = job_key(job.descriptor())
        assert store.get(key) is None
        store.put(key, job.descriptor(), {"node_energy_j": 1.25})
        assert store.get(key) == {"node_energy_j": 1.25}
        assert key in store and len(store) == 1

    def test_persists_across_reopen(self, tmp_path, job):
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        first = ResultStore(path)
        first.put(key, job.descriptor(), {"node_energy_j": 0.5, "time_s": 2.0})
        first.close()
        second = ResultStore(path)
        assert second.get(key) == {"node_energy_j": 0.5, "time_s": 2.0}

    def test_floats_round_trip_exactly(self, tmp_path, job):
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        value = 745.5394528620403
        store = ResultStore(path)
        store.put(key, job.descriptor(), {"node_energy_j": value})
        store.close()
        assert ResultStore(path).get(key)["node_energy_j"] == value

    def test_corrupt_lines_skipped(self, tmp_path, job):
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        record = {
            "key": key,
            "store_version": STORE_VERSION,
            "job": job.descriptor(),
            "result": {"time_s": 1.0},
        }
        path.write_text(
            json.dumps(record) + "\n" + '{"truncated": '  # crashed mid-write
        )
        store = ResultStore(path)
        assert store.get(key) == {"time_s": 1.0}
        assert len(store) == 1

    def test_older_schema_entry_surfaces_clear_error(self, tmp_path, job):
        """A record matching a requested key but written under another
        schema version must raise an actionable CampaignError, never a
        downstream KeyError."""
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        record = {
            "key": key,
            "store_version": STORE_VERSION - 1,
            "job": job.descriptor(),
            "result": {"legacy_layout": 1.0},
        }
        path.write_text(json.dumps(record) + "\n")
        store = ResultStore(path)
        with pytest.raises(CampaignError, match="older|schema version"):
            store.get(key)

    def test_unversioned_legacy_entry_surfaces_clear_error(self, tmp_path, job):
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        record = {"key": key, "job": job.descriptor(), "result": {"time_s": 1.0}}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(CampaignError, match="schema version"):
            ResultStore(path).get(key)

    def test_stale_records_counted_not_served(self, tmp_path, job):
        """Records from another schema version (whose keys current code
        can never derive) are counted as dead weight in the summary."""
        path = tmp_path / "store.jsonl"
        legacy = {"key": "a" * 32, "job": job.descriptor(), "result": {"x": 1.0}}
        path.write_text(json.dumps(legacy) + "\n")
        store = ResultStore(path)
        assert store.stale_records == 1
        assert store.summary()["stale"] == 1
        assert store.get(job_key(job.descriptor())) is None  # silent miss

    def test_put_heals_stale_record(self, tmp_path, job):
        """Re-putting a key held by another schema version's record must
        replace it — the historical no-op silently dropped the freshly
        computed result and left the store poisoned forever."""
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        stale = {
            "key": key,
            "store_version": STORE_VERSION - 1,
            "job": job.descriptor(),
            "result": {"legacy_layout": 1.0},
        }
        path.write_text(json.dumps(stale) + "\n")
        store = ResultStore(path)
        assert store.stale_records == 1
        store.put(key, job.descriptor(), {"time_s": 2.0})
        assert store.get(key) == {"time_s": 2.0}
        assert store.stale_records == 0
        store.close()
        # The healed record survives a reload (append + last-wins).
        reloaded = ResultStore(path)
        assert reloaded.get(key) == {"time_s": 2.0}
        assert reloaded.stale_records == 0

    def test_records_written_with_current_version(self, tmp_path, job):
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        store = ResultStore(path)
        store.put(key, job.descriptor(), {"time_s": 1.0})
        store.close()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["store_version"] == STORE_VERSION

    def test_put_rejects_mismatched_key(self, tmp_path, job):
        store = ResultStore(tmp_path / "store.jsonl")
        with pytest.raises(CampaignError):
            store.put("deadbeef", job.descriptor(), {})

    def test_reput_is_noop(self, tmp_path, job):
        path = tmp_path / "store.jsonl"
        key = job_key(job.descriptor())
        store = ResultStore(path)
        store.put(key, job.descriptor(), {"time_s": 1.0})
        store.put(key, job.descriptor(), {"time_s": 99.0})
        assert store.get(key) == {"time_s": 1.0}
        store.close()
        assert len(path.read_text().splitlines()) == 1

    def test_in_memory_store(self, job):
        store = ResultStore(None)
        key = job_key(job.descriptor())
        store.put(key, job.descriptor(), {"time_s": 1.0})
        assert store.get(key) == {"time_s": 1.0}
        assert store.summary()["path"] is None

    def test_summary_breakdown(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        for app, mode, threads in (
            ("EP", "sweep", 12),
            ("EP", "sweep", 16),
            ("CG", "static", 24),
        ):
            j = CampaignJob(app=app, mode=mode, threads=threads)
            store.put(job_key(j.descriptor()), j.descriptor(), {"time_s": 0.0})
        summary = store.summary()
        assert summary["results"] == 3
        assert summary["apps"] == {"CG": 1, "EP": 2}
        assert summary["modes"] == {"static": 1, "sweep": 2}

    def test_creates_parent_directories(self, tmp_path, job):
        path = tmp_path / "deep" / "nested" / "store.jsonl"
        store = ResultStore(path)
        key = job_key(job.descriptor())
        store.put(key, job.descriptor(), {"time_s": 1.0})
        assert path.exists()


class TestLifecycle:
    """Handle hygiene: the store is a context manager and never leaks
    open file handles (the historical close() left one dangling)."""

    def test_context_manager_closes(self, tmp_path, job):
        key = job_key(job.descriptor())
        with ResultStore(tmp_path / "store.jsonl") as store:
            store.put(key, job.descriptor(), {"time_s": 1.0})
        with ResultStore(tmp_path / "store.jsonl") as reopened:
            assert reopened.get(key) == {"time_s": 1.0}

    def test_close_is_idempotent(self, tmp_path, job):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put(job_key(job.descriptor()), job.descriptor(), {"time_s": 1.0})
        store.close()
        store.close()

    @pytest.mark.filterwarnings("error::ResourceWarning")
    def test_no_resource_warning_on_any_backend(self, tmp_path, job):
        import gc

        key = job_key(job.descriptor())
        for name, backend in (
            ("store.jsonl", "jsonl"),
            ("store.sqlite", "sqlite"),
            ("store-segments", "segment"),
        ):
            store = ResultStore(tmp_path / name, backend=backend)
            store.put(key, job.descriptor(), {"time_s": 1.0})
            assert store.get(key) == {"time_s": 1.0}
            store.close()
            del store
            gc.collect()  # a leaked handle would warn here, becoming an error

    def test_iter_records_streams_full_records(self, tmp_path, job):
        with ResultStore(tmp_path / "store.jsonl") as store:
            key = job_key(job.descriptor())
            store.put(key, job.descriptor(), {"time_s": 1.0})
            records = list(store.iter_records())
        assert records == [
            {
                "key": key,
                "store_version": STORE_VERSION,
                "job": job.descriptor(),
                "result": {"time_s": 1.0},
            }
        ]

    def test_put_many_rejects_mismatched_key(self, tmp_path, job):
        with ResultStore(tmp_path / "store.jsonl") as store:
            with pytest.raises(CampaignError, match="does not match"):
                store.put_many([("0" * 32, job.descriptor(), {"time_s": 1.0})])
