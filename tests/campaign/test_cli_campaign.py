"""Tests for the ``repro-campaign`` console entry point."""

import pytest

from repro.tools.cli import main_campaign


def run_cli(capsys, *argv: str) -> str:
    assert main_campaign(list(argv)) == 0
    return capsys.readouterr().out


class TestPlanCommand:
    def test_plan_prints_breakdown(self, capsys):
        out = run_cli(
            capsys,
            "plan", "--benchmarks", "EP", "--campaign", "both",
            "--threads", "24", "--stride", "4",
        )
        assert "jobs:             55" in out
        assert "counters" in out and "sweep" in out and "static" in out
        assert "EP" in out

    def test_plan_reports_cache_coverage(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        run_cli(
            capsys,
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        out = run_cli(
            capsys,
            "plan", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9", "--store", str(store),
        )
        assert "already cached:   5 / 5" in out

    def test_rejects_unknown_benchmark(self, capsys):
        with pytest.raises(SystemExit):
            main_campaign(["plan", "--benchmarks", "NotABenchmark"])

    def test_library_errors_print_cleanly(self, capsys):
        code = main_campaign(
            ["plan", "--benchmarks", "EP", "--campaign", "static", "--stride", "0"]
        )
        assert code == 2
        assert "stride must be >= 1" in capsys.readouterr().err


class TestRunCommand:
    def test_run_twice_hits_cache(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        argv = (
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        first = run_cli(capsys, *argv)
        assert "new simulations: 5" in first
        assert "cache hits:      0" in first
        second = run_cli(capsys, *argv)
        assert "new simulations: 0" in second
        assert "cache hits:      5" in second
        assert store.exists()


class TestStatusCommand:
    def test_status_summarises_store(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        run_cli(
            capsys,
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        out = run_cli(capsys, "status", "--store", str(store))
        assert "results: 5" in out
        assert "static" in out and "EP" in out

    def test_status_on_missing_store_is_empty(self, capsys, tmp_path):
        out = run_cli(capsys, "status", "--store", str(tmp_path / "nope.jsonl"))
        assert "results: 0" in out


class TestBackendFlag:
    @pytest.mark.parametrize("backend, name", [
        ("sqlite", "store.sqlite"),
        ("segment", "store-segments"),
    ])
    def test_run_with_indexed_backend(self, capsys, tmp_path, backend, name):
        store = tmp_path / name
        out = run_cli(
            capsys,
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--backend", backend, "--workers", "1",
        )
        assert f"({backend})" in out
        out = run_cli(capsys, "status", "--store", str(store))
        assert "results: 5" in out and f"({backend})" in out
        # Second run over the same store is pure cache hits.
        out = run_cli(
            capsys,
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        assert "cache hits:      5" in out
        assert "new simulations: 0" in out


class TestStoreSubcommands:
    def seed_store(self, capsys, tmp_path, name="store.jsonl"):
        store = tmp_path / name
        run_cli(
            capsys,
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        return store

    def test_migrate_jsonl_to_sqlite(self, capsys, tmp_path):
        source = self.seed_store(capsys, tmp_path)
        dest = tmp_path / "migrated.sqlite"
        out = run_cli(capsys, "store", "migrate", str(source), str(dest))
        assert "migrated 5 record(s)" in out and "(sqlite)" in out
        out = run_cli(capsys, "status", "--store", str(dest))
        assert "results: 5" in out and "(sqlite)" in out

    def test_migrate_explicit_backend_flag(self, capsys, tmp_path):
        source = self.seed_store(capsys, tmp_path)
        dest = tmp_path / "migrated-anywhere"
        out = run_cli(
            capsys, "store", "migrate", str(source), str(dest),
            "--backend", "segment",
        )
        assert "(segment)" in out and dest.is_dir()

    def test_migrate_refusal_prints_clean_error(self, capsys, tmp_path):
        source = tmp_path / "pre-v2.jsonl"
        source.write_text('{"key": "ab", "job": {}, "result": {}}\n')
        assert main_campaign(
            ["store", "migrate", str(source), str(tmp_path / "d.sqlite")]
        ) == 2  # library-error exit code, like every other subcommand
        err = capsys.readouterr().err
        assert "pre-v2" in err and "Traceback" not in err

    def test_compact_reports_dropped_lines(self, capsys, tmp_path):
        source = self.seed_store(capsys, tmp_path)
        lines = source.read_text()
        source.write_text(lines + lines)  # duplicate every record line
        out = run_cli(capsys, "store", "compact", "--store", str(source))
        assert "kept 5 record(s)" in out
        assert "dropped 5" in out

    def test_verify_clean_store(self, capsys, tmp_path):
        source = self.seed_store(capsys, tmp_path)
        out = run_cli(capsys, "store", "verify", "--store", str(source))
        assert "ok (5 readable records, no damage)" in out

    def test_verify_damaged_store_exits_nonzero(self, capsys, tmp_path):
        source = self.seed_store(capsys, tmp_path)
        with source.open("a") as fh:
            fh.write('{"torn half-record')
        assert main_campaign(["store", "verify", "--store", str(source)]) == 1
        out = capsys.readouterr().out
        assert "1 damaged entr" in out
        assert "line 6" in out and "unparseable" in out
