"""Tests for the ``repro-campaign`` console entry point."""

import pytest

from repro.tools.cli import main_campaign


def run_cli(capsys, *argv: str) -> str:
    assert main_campaign(list(argv)) == 0
    return capsys.readouterr().out


class TestPlanCommand:
    def test_plan_prints_breakdown(self, capsys):
        out = run_cli(
            capsys,
            "plan", "--benchmarks", "EP", "--campaign", "both",
            "--threads", "24", "--stride", "4",
        )
        assert "jobs:             55" in out
        assert "counters" in out and "sweep" in out and "static" in out
        assert "EP" in out

    def test_plan_reports_cache_coverage(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        run_cli(
            capsys,
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        out = run_cli(
            capsys,
            "plan", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9", "--store", str(store),
        )
        assert "already cached:   5 / 5" in out

    def test_rejects_unknown_benchmark(self, capsys):
        with pytest.raises(SystemExit):
            main_campaign(["plan", "--benchmarks", "NotABenchmark"])

    def test_library_errors_print_cleanly(self, capsys):
        code = main_campaign(
            ["plan", "--benchmarks", "EP", "--campaign", "static", "--stride", "0"]
        )
        assert code == 2
        assert "stride must be >= 1" in capsys.readouterr().err


class TestRunCommand:
    def test_run_twice_hits_cache(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        argv = (
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        first = run_cli(capsys, *argv)
        assert "new simulations: 5" in first
        assert "cache hits:      0" in first
        second = run_cli(capsys, *argv)
        assert "new simulations: 0" in second
        assert "cache hits:      5" in second
        assert store.exists()


class TestStatusCommand:
    def test_status_summarises_store(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        run_cli(
            capsys,
            "run", "--benchmarks", "EP", "--campaign", "static",
            "--threads", "24", "--stride", "9",
            "--store", str(store), "--workers", "1",
        )
        out = run_cli(capsys, "status", "--store", str(store))
        assert "results: 5" in out
        assert "static" in out and "EP" in out

    def test_status_on_missing_store_is_empty(self, capsys, tmp_path):
        out = run_cli(capsys, "status", "--store", str(tmp_path / "nope.jsonl"))
        assert "results: 0" in out
