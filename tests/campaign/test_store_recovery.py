"""Crash-recovery and corruption behaviour of the store backends.

The contract (ISSUE 6): damaged bytes — a truncated JSONL tail after a
crash, a torn SQLite WAL or an overwritten database page, a garbled or
stale segment index sidecar — **load as misses, never as crashes**, and
``repro-campaign store verify`` reports exactly what is damaged.  A
damaged entry is then healed by the next ``put`` of its key (or, for an
unreadable database, surfaced as a clear write-time CampaignError).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.store import ResultStore, job_key
from repro.errors import CampaignError


def descriptor(i: int) -> dict:
    return {"mode": "synthetic", "app": f"app-{i % 3}", "i": i}


def result(i: int) -> dict:
    return {"node_energy_j": float(i), "time_s": 1.0 + i}


def fill(store: ResultStore, n: int) -> list[str]:
    keys = []
    for i in range(n):
        key = job_key(descriptor(i))
        store.put(key, descriptor(i), result(i))
        keys.append(key)
    return keys


# ---------------------------------------------------------------------------
# JSONL: torn tail after a crashed append
# ---------------------------------------------------------------------------


class TestJsonlRecovery:
    def test_truncated_tail_loads_as_miss(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            keys = fill(store, 5)
        # Crash mid-append: chop the file inside the final record.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 30])

        with ResultStore(path) as store:
            assert len(store) == 4
            for key in keys[:4]:
                assert store.get(key) is not None
            assert store.get(keys[4]) is None  # miss, not a crash
            issues = store.verify()
            assert len(issues) == 1
            assert issues[0]["file"] == str(path)
            assert issues[0]["where"] == "line 5"
            assert "unparseable" in issues[0]["problem"]
            # The next put of the lost key heals the store.
            store.put(keys[4], descriptor(4), result(4))
            assert store.get(keys[4]) == result(4)

        with ResultStore(path) as reopened:
            assert len(reopened) == 5
            # verify still flags the dead half-line until compaction...
            assert len(reopened.verify()) == 1
            reopened.compact()
            assert reopened.verify() == []

    def test_garbage_line_in_middle_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            keys = fill(store, 3)
        lines = path.read_text().splitlines()
        lines.insert(1, "{not json at all")
        lines.insert(3, json.dumps({"unrelated": True}))  # not a record
        path.write_text("\n".join(lines) + "\n")

        with ResultStore(path) as store:
            assert len(store) == 3
            for i, key in enumerate(keys):
                assert store.get(key) == result(i)
            problems = sorted(i["problem"] for i in store.verify())
            assert len(problems) == 2
            assert any("unparseable" in p for p in problems)
            assert any("not a store record" in p for p in problems)


# ---------------------------------------------------------------------------
# SQLite: torn WAL, overwritten pages, non-database bytes
# ---------------------------------------------------------------------------


class TestSqliteRecovery:
    def test_torn_wal_drops_uncommitted_not_committed(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path, backend="sqlite") as store:
            keys = fill(store, 5)
        wal = tmp_path / "store.sqlite-wal"
        # A torn WAL tail (crash mid-commit): garble it if the close
        # checkpointed it away, recreate a bogus one.
        wal.write_bytes(b"\x00garbage" * 16)

        with ResultStore(path) as store:
            # SQLite discards the unusable WAL; committed rows survive.
            assert [store.get(k) for k in keys] == [result(i) for i in range(5)]
            assert store.verify() == []

    def test_overwritten_database_is_all_misses_and_verify_reports(
        self, tmp_path
    ):
        path = tmp_path / "store.sqlite"
        with ResultStore(path, backend="sqlite") as store:
            keys = fill(store, 3)
        for sidecar in (path.with_name(path.name + s) for s in ("-wal", "-shm")):
            if sidecar.exists():
                sidecar.unlink()
        path.write_bytes(b"this is not a database at all\n" * 10)

        with ResultStore(path, backend="sqlite") as store:
            for key in keys:
                assert store.get(key) is None  # misses, no exception
            assert key not in store
            assert len(store) == 0
            issues = store.verify()
            assert len(issues) == 1
            assert issues[0]["file"] == str(path)
            assert "unreadable database" in issues[0]["problem"]
            # Writing into an unreadable database must be loud, though:
            # silently dropping fresh results would masquerade as cache
            # misses forever.
            with pytest.raises(CampaignError, match="cannot write"):
                store.put(keys[0], descriptor(0), result(0))

    def test_corrupt_record_payload_reported_by_key(self, tmp_path):
        import sqlite3

        path = tmp_path / "store.sqlite"
        with ResultStore(path, backend="sqlite") as store:
            keys = fill(store, 2)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE records SET record = ? WHERE key = ?",
            ("{torn json", keys[0]),
        )
        conn.commit()
        conn.close()

        with ResultStore(path) as store:
            assert store.get(keys[0]) is None  # miss, not a crash
            assert store.get(keys[1]) == result(1)
            issues = store.verify()
            assert len(issues) == 1
            assert issues[0]["where"] == f"key {keys[0]}"
            # The next put heals the damaged entry in place.
            store.put(keys[0], descriptor(0), result(0))
            assert store.get(keys[0]) == result(0)
            assert store.verify() == []


# ---------------------------------------------------------------------------
# Segments: garbled/stale sidecar indexes, truncated segment files
# ---------------------------------------------------------------------------


class TestSegmentRecovery:
    def _sidecars(self, root):
        return sorted(root.glob("seg-*.idx.json"))

    def test_garbled_sidecar_rebuilt_by_rescan(self, tmp_path):
        root = tmp_path / "store-segments"
        with ResultStore(root, backend="segment") as store:
            keys = fill(store, 20)
        sidecars = self._sidecars(root)
        assert sidecars, "expected index sidecars on disk"
        for sidecar in sidecars[:2]:
            sidecar.write_text("{definitely garbled")

        with ResultStore(root) as store:
            # Every record still readable — the index is advisory.
            for i, key in enumerate(keys):
                assert store.get(key) == result(i)
            issues = store.verify()
            assert len(issues) == 2
            assert {i["file"] for i in issues} == {str(s) for s in sidecars[:2]}
            assert all("garbled index sidecar" in i["problem"] for i in issues)
            # flush() rewrites the rebuilt indexes; damage is gone.
            store.flush()
            assert store.verify() == []

    def test_sidecar_claiming_too_many_bytes_detected(self, tmp_path):
        root = tmp_path / "store-segments"
        with ResultStore(root, backend="segment") as store:
            keys = fill(store, 20)
        sidecar = self._sidecars(root)[0]
        data = json.loads(sidecar.read_text())
        data["size"] += 4096  # index beyond EOF: segment was truncated
        sidecar.write_text(json.dumps(data))

        with ResultStore(root) as store:
            for i, key in enumerate(keys):
                assert store.get(key) == result(i)
            issues = store.verify()
            assert len(issues) == 1
            assert "more bytes than the segment holds" in issues[0]["problem"]

    def test_truncated_segment_tail_is_one_lost_record(self, tmp_path):
        root = tmp_path / "store-segments"
        with ResultStore(root, backend="segment") as store:
            keys = fill(store, 20)
        # Truncate one segment mid-record and invalidate its sidecar the
        # way a crash would (sidecar written before the torn append).
        segments = sorted(root.glob("seg-*.jsonl"))
        victim = next(s for s in segments if s.stat().st_size > 60)
        lines = victim.read_bytes().splitlines(keepends=True)
        victim.write_bytes(b"".join(lines[:-1]) + lines[-1][:-25])
        sidecar = victim.with_name(victim.name.replace(".jsonl", ".idx.json"))
        if sidecar.exists():
            sidecar.unlink()  # crash before the index flush

        with ResultStore(root) as store:
            values = [store.get(k) for k in keys]
            misses = [v for v in values if v is None]
            assert len(misses) == 1  # exactly the torn record
            hits = sum(v is not None for v in values)
            assert hits == 19
            issues = store.verify()
            assert [i["file"] for i in issues] == [str(victim)]
            assert "unparseable" in issues[0]["problem"]
            # Healing: re-putting every key restores full coverage.
            for i, key in enumerate(keys):
                store.put(key, descriptor(i), result(i))
            assert all(store.get(k) is not None for k in keys)

    def test_garbled_manifest_reported_and_survivable(self, tmp_path):
        root = tmp_path / "store-segments"
        with ResultStore(root, backend="segment") as store:
            keys = fill(store, 8)
        (root / "segment-store.json").write_text("}{")

        with ResultStore(root) as store:
            for i, key in enumerate(keys):
                assert store.get(key) == result(i)
            issues = store.verify()
            assert any("garbled manifest" in i["problem"] for i in issues)
