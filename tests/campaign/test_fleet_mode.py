"""The campaign fleet job mode: batched execution, per-job schema.

Fleet execution (``CampaignEngine.run(plan, fleet=True)``) groups
fleet-able jobs into :class:`~repro.campaign.plan.FleetShard`\\ s and
prices each shard in one pass through the fleet replay kernel.  It is a
*strategy*, not a schema: store keys, payload layouts and caching are
those of per-job execution, so a store written by either strategy
recalls bit-identically under the other.  The ``chaos``-marked test
SIGKILLs a direct-writing worker mid-shard and checks that every member
row persisted before the crash survives in the store.
"""

import pytest

from repro.campaign import CampaignEngine, ResultStore, RetryPolicy
from repro.campaign.engine import execute_job, topology_job_key
from repro.campaign.faultinject import FAULT_ENV
from repro.campaign.plan import (
    CampaignPlan,
    FLEET_MODES,
    FleetShard,
    counter_jobs,
    fleet_jobs,
    grid_jobs,
    savings_jobs,
    static_jobs,
    steal_shard_sizes,
    sweep_jobs,
)
from repro.errors import CampaignError
from repro.execution.simulator import OperatingPoint
from repro.readex.tuning_model import TuningModel
from repro.workloads import registry

FAST_POLICY = RetryPolicy(max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.01)


def tmm_json(app_name: str) -> str:
    app = registry.build(app_name)
    regions = [r.name for r in app.phase.children][:3]
    best = {"phase": OperatingPoint(2.5, 2.1, 24)}
    for i, name in enumerate(regions):
        best[name] = OperatingPoint(2.4 if i % 2 else 2.5, 2.0, 24)
    return TuningModel.from_best_configs(app_name, "phase", best).to_json()


def mixed_plan() -> CampaignPlan:
    """Every fleet-able mode across several apps, plus a counters job."""
    jobs: list = []
    jobs += savings_jobs("Lulesh", label="default", runs=2, threads=24)
    jobs += savings_jobs(
        "Lulesh", label="rrl", runs=1, threads=24,
        controller="rrl", tuning_model=tmm_json("Lulesh"),
    )
    jobs += savings_jobs(
        "EP", label="static", runs=1, threads=24, controller="static",
        core_freq_ghz=2.2, uncore_freq_ghz=1.8,
    )
    jobs += grid_jobs(
        "FT", label="heatmap",
        points=[OperatingPoint(2.0, u, 24) for u in (1.6, 2.0, 2.4)],
    )
    jobs += static_jobs("Mcb", points=[OperatingPoint(2.2, 1.8, 24)])
    jobs += sweep_jobs("EP", threads=24)[:2]
    jobs += counter_jobs(
        "EP", threads=24, runs=1, counters=("PAPI_TOT_INS", "PAPI_L3_TCM")
    )
    return CampaignPlan(tuple(jobs))


def run_plan(tmp_path, name, plan, *, backend="jsonl", workers=0, **kw):
    with ResultStore(str(tmp_path / name), backend=backend) as store:
        engine = CampaignEngine(
            store=store, max_workers=workers, retry_policy=FAST_POLICY
        )
        results = engine.run(plan, **kw)
        return results, {job: results[job] for job in plan}


class TestFleetStrategy:
    def test_serial_fleet_matches_per_job(self, tmp_path):
        plan = mixed_plan()
        _, ref = run_plan(tmp_path, "ref.jsonl", plan)
        _, fleet = run_plan(
            tmp_path, "fleet.jsonl", plan, fleet=True, fleet_shard_size=3
        )
        assert fleet == ref

    def test_pool_direct_write_fleet_matches_per_job(self, tmp_path):
        plan = mixed_plan()
        _, ref = run_plan(tmp_path, "ref.jsonl", plan)
        _, fleet = run_plan(
            tmp_path, "fleet.sqlite", plan, backend="sqlite", workers=2,
            fleet=True, fleet_shard_size=4,
        )
        assert fleet == ref

    def test_one_giant_shard_and_singleton_shards(self, tmp_path):
        plan = mixed_plan()
        _, ref = run_plan(tmp_path, "ref.jsonl", plan)
        _, giant = run_plan(
            tmp_path, "giant.jsonl", plan, fleet=True, fleet_shard_size=999
        )
        _, single = run_plan(
            tmp_path, "single.jsonl", plan, fleet=True, fleet_shard_size=1
        )
        assert giant == ref
        assert single == ref

    def test_store_written_by_fleet_recalls_under_per_job(self, tmp_path):
        plan = mixed_plan()
        path = str(tmp_path / "shared.jsonl")
        with ResultStore(path) as store:
            CampaignEngine(store=store, max_workers=0).run(plan, fleet=True)
        with ResultStore(path) as store:
            results = CampaignEngine(store=store, max_workers=0).run(plan)
        assert results.report.cached == len(plan)
        assert results.report.executed == 0

    def test_store_written_per_job_recalls_under_fleet(self, tmp_path):
        plan = mixed_plan()
        path = str(tmp_path / "shared.jsonl")
        with ResultStore(path) as store:
            CampaignEngine(store=store, max_workers=0).run(plan)
        with ResultStore(path) as store:
            results = CampaignEngine(store=store, max_workers=0).run(
                plan, fleet=True
            )
        assert results.report.cached == len(plan)
        assert results.report.executed == 0

    def test_counters_only_plan_under_fleet(self, tmp_path):
        """Non-fleet-able jobs ride the per-job path of the same pass."""
        plan = CampaignPlan(
            counter_jobs(
                "EP", threads=24, runs=2, counters=("PAPI_TOT_INS",)
            )
        )
        _, ref = run_plan(tmp_path, "ref.jsonl", plan)
        _, fleet = run_plan(tmp_path, "fleet.jsonl", plan, fleet=True)
        assert fleet == ref


class TestFleetSharding:
    def test_shards_partition_in_order(self):
        jobs = sweep_jobs("EP", threads=24)[:7]
        shards = fleet_jobs(list(jobs), shard_size=3)
        assert [len(s) for s in shards] == [3, 3, 1]
        assert tuple(j for s in shards for j in s) == jobs

    def test_bad_shard_size_rejected(self):
        with pytest.raises(CampaignError, match="shard_size"):
            fleet_jobs(list(sweep_jobs("EP", threads=24)[:2]), shard_size=0)

    def test_non_fleetable_mode_rejected(self):
        job = counter_jobs("EP", threads=24, runs=1, counters=("PAPI_TOT_INS",))[0]
        assert job.mode not in FLEET_MODES
        with pytest.raises(CampaignError, match="fleet"):
            FleetShard(jobs=(job,))

    def test_empty_shard_rejected(self):
        with pytest.raises(CampaignError):
            FleetShard(jobs=())


class TestStealSchedule:
    def test_steal_sizes_partition_and_decrease(self):
        for count in (1, 5, 16, 37, 100):
            for workers in (1, 2, 4, 8):
                sizes = steal_shard_sizes(count, workers=workers)
                assert sum(sizes) == count
                assert all(1 <= s <= 16 for s in sizes)
                # guided self-scheduling: sizes never increase
                assert list(sizes) == sorted(sizes, reverse=True)

    def test_steal_sizes_respect_shard_cap(self):
        sizes = steal_shard_sizes(200, workers=1, shard_size=8)
        assert max(sizes) <= 8
        assert sum(sizes) == 200

    def test_steal_sizes_empty_and_bad_inputs(self):
        assert steal_shard_sizes(0, workers=2) == ()
        with pytest.raises(CampaignError, match="workers"):
            steal_shard_sizes(4, workers=0)
        with pytest.raises(CampaignError, match="shard_size"):
            steal_shard_sizes(4, workers=2, shard_size=0)

    def test_steal_shards_visit_jobs_in_order(self):
        jobs = sweep_jobs("EP", threads=24)[:10]
        shards = fleet_jobs(
            list(jobs), shard_size=4, schedule="steal", workers=2
        )
        assert tuple(j for s in shards for j in s) == jobs
        assert [len(s) for s in shards] == list(
            steal_shard_sizes(10, workers=2, shard_size=4)
        )

    def test_unknown_schedule_rejected(self):
        with pytest.raises(CampaignError, match="schedule"):
            fleet_jobs(
                list(sweep_jobs("EP", threads=24)[:2]), schedule="chaos"
            )
        with pytest.raises(CampaignError, match="schedule"):
            CampaignEngine(fleet_schedule="chaos")

    def test_steal_fleet_matches_static_and_per_job(self, tmp_path):
        plan = mixed_plan()
        _, ref = run_plan(tmp_path, "ref.jsonl", plan)
        _, steal = run_plan(
            tmp_path, "steal.sqlite", plan, backend="sqlite", workers=2,
            fleet=True, fleet_shard_size=3, fleet_schedule="steal",
        )
        assert steal == ref

    def test_engine_default_schedule_applies(self, tmp_path):
        plan = mixed_plan()
        _, ref = run_plan(tmp_path, "ref.jsonl", plan)
        with ResultStore(str(tmp_path / "default.jsonl")) as store:
            engine = CampaignEngine(
                store=store, max_workers=0, fleet_schedule="steal"
            )
            results = engine.run(plan, fleet=True)
            steal = {job: results[job] for job in plan}
        assert steal == ref


def _store_rows(path, backend):
    with ResultStore(path, backend=backend) as store:
        return {
            r["key"]: r["result"]
            for r in store.iter_records()
            if r["job"].get("mode") != "failure"
        }


@pytest.mark.chaos
class TestChaosFleetCrash:
    def _shard_plan(self):
        """One 3-job shard: two EP statics, then an FT grid row.  A
        store-stage crash keyed on FT dies after both EP rows are
        flushed but before the FT row is written."""
        jobs = static_jobs(
            "EP",
            points=[OperatingPoint(2.0, 1.6, 24), OperatingPoint(2.0, 2.0, 24)],
        ) + grid_jobs(
            "FT", label="heatmap",
            points=[OperatingPoint(2.2, u, 24) for u in (1.8, 2.2)],
        )
        return CampaignPlan(jobs)

    def test_sigkill_mid_shard_loses_no_completed_member_rows(
        self, tmp_path, monkeypatch
    ):
        plan = self._shard_plan()
        monkeypatch.delenv(FAULT_ENV, raising=False)
        reference = {
            topology_job_key(job, None): execute_job(job) for job in plan
        }

        # No retries: the crash is definitive, so what survives in the
        # store is exactly what the worker persisted before dying.
        monkeypatch.setenv(
            FAULT_ENV,
            '[{"action": "crash", "stage": "store", "mode": "fleet",'
            ' "app": "FT", "attempts": [0]}]',
        )
        path = str(tmp_path / "crash.sqlite")
        with ResultStore(path, backend="sqlite") as store:
            engine = CampaignEngine(
                store=store,
                max_workers=2,
                retry_policy=RetryPolicy(max_retries=0),
            )
            results = engine.run(plan, fleet=True, fleet_shard_size=3,
                                 on_failure="skip")
        assert results.report.failed > 0
        rows = _store_rows(path, "sqlite")
        ep_keys = [
            topology_job_key(job, None) for job in plan if job.app == "EP"
        ]
        ft_key = topology_job_key(
            next(job for job in plan if job.app == "FT"), None
        )
        # Both EP member rows flushed before the SIGKILL survive,
        # bit-identical to undisturbed execution; the FT row died with
        # the worker.
        for key in ep_keys:
            assert rows[key] == reference[key]
        assert ft_key not in rows

    def test_sigkill_mid_shard_retries_to_bit_identical_store(
        self, tmp_path, monkeypatch
    ):
        plan = self._shard_plan()
        monkeypatch.delenv(FAULT_ENV, raising=False)
        ref_path = str(tmp_path / "ref.jsonl")
        with ResultStore(ref_path) as store:
            CampaignEngine(store=store, max_workers=1).run(plan)
        reference = _store_rows(ref_path, "jsonl")

        monkeypatch.setenv(
            FAULT_ENV,
            '[{"action": "crash", "stage": "store", "mode": "fleet",'
            ' "app": "FT", "attempts": [0]}]',
        )
        path = str(tmp_path / "chaos.sqlite")
        with ResultStore(path, backend="sqlite") as store:
            engine = CampaignEngine(
                store=store, max_workers=2, retry_policy=FAST_POLICY
            )
            results = engine.run(plan, fleet=True, fleet_shard_size=3)
        assert results.report.failed == 0
        assert results.report.retried >= 1
        assert _store_rows(path, "sqlite") == reference
