"""The fault-tolerance layer: taxonomy, retries, quarantine, drain/resume.

Fast tests exercise the pure pieces (classification, deterministic
backoff, failure records, manifests, the serial retry loop) and the
engine's quarantine lifecycle in-process.  The ``chaos``-marked tests
(excluded from the default run, selected with ``pytest -m chaos``) spawn
real worker pools and real signals: SIGKILLed workers, hung jobs hitting
the per-job timeout, and SIGTERM-drained campaigns resumed through the
CLI — asserting the headline guarantees: a worker crash loses zero
completed jobs, and a drained-then-resumed campaign is bit-identical to
an uninterrupted one on every store backend.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignEngine,
    FailureRecord,
    ResultStore,
    ResumeManifest,
    RetryPolicy,
    failure_descriptor,
    job_key,
)
from repro.campaign.faultinject import (
    FAULT_ENV,
    FaultDirective,
    InjectedFault,
    InjectedTransientFault,
    active_schedule,
    maybe_fault,
)
from repro.campaign.plan import sweep_jobs
from repro.campaign.resilience import (
    backoff_s,
    classify,
    run_resilient_serial,
)
from repro.errors import (
    CampaignError,
    CampaignExecutionError,
    JobTimeoutError,
)

FAST_POLICY = RetryPolicy(max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.01)


# ---------------------------------------------------------------------------
# Taxonomy + backoff
# ---------------------------------------------------------------------------

class TestClassify:
    def test_transient_types(self):
        from concurrent.futures.process import BrokenProcessPool

        for exc in (
            BrokenProcessPool("worker died"),
            JobTimeoutError("too slow"),
            OSError("disk hiccup"),
            EOFError(),
        ):
            assert classify(exc) == "transient"

    def test_deterministic_default(self):
        assert classify(ValueError("bad input")) == "deterministic"
        assert classify(InjectedFault("boom")) == "deterministic"

    def test_repro_transient_attribute_wins(self):
        assert classify(InjectedTransientFault("flaky")) == "transient"
        exc = RuntimeError("custom")
        exc.repro_transient = True
        assert classify(exc) == "transient"


class TestBackoff:
    def test_deterministic_per_token_and_attempt(self):
        policy = RetryPolicy()
        assert backoff_s("job-a", 1, policy) == backoff_s("job-a", 1, policy)
        assert backoff_s("job-a", 1, policy) != backoff_s("job-b", 1, policy)
        assert backoff_s("job-a", 1, policy) != backoff_s("job-a", 2, policy)

    def test_jitter_bounds_and_cap(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5)
        for attempt in range(1, 8):
            delay = backoff_s("k", attempt, policy)
            base = 0.1 * 2 ** (attempt - 1)
            assert delay <= 0.5
            assert delay >= min(0.5, base * 0.5)

    def test_policy_validation(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(CampaignError):
            RetryPolicy(job_timeout_s=0)


# ---------------------------------------------------------------------------
# Failure records
# ---------------------------------------------------------------------------

class TestFailureRecord:
    RECORD = FailureRecord(
        job_store_key="abc123",
        app="EP",
        mode="sweep",
        error_type="InjectedFault",
        error_message="boom",
        kind="deterministic",
        attempts=3,
    )

    def test_payload_roundtrip(self):
        assert FailureRecord.from_payload(self.RECORD.payload()) == self.RECORD

    def test_malformed_payload_is_clear_error(self):
        with pytest.raises(CampaignError, match="malformed failure record"):
            FailureRecord.from_payload({"app": "EP"})

    def test_describe_names_job_and_error(self):
        text = self.RECORD.describe()
        assert "EP/sweep" in text
        assert "InjectedFault" in text
        assert "3 attempt" in text

    def test_failure_key_never_collides_with_result_key(self):
        job = sweep_jobs("EP", threads=24)[0]
        descriptor = job.descriptor()
        fdesc = failure_descriptor(descriptor)
        assert fdesc["mode"] == "failure"
        assert job_key(fdesc) != job_key(descriptor)


# ---------------------------------------------------------------------------
# Fault-injection harness
# ---------------------------------------------------------------------------

class TestFaultInject:
    def test_inactive_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        assert active_schedule() == ()
        maybe_fault("execute", app="EP", index=0)  # no-op

    def test_inline_json_and_single_dict(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, '{"action": "raise", "index": 3}')
        (directive,) = active_schedule()
        assert directive.action == "raise"
        assert directive.index == 3
        assert directive.attempts == (0,)

    def test_schedule_file(self, monkeypatch, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text('[{"action": "delay", "delay_s": 0.0, "attempts": "all"}]')
        monkeypatch.setenv(FAULT_ENV, str(path))
        (directive,) = active_schedule()
        assert directive.action == "delay"
        assert directive.attempts is None  # "all"

    def test_unknown_action_rejected(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, '[{"action": "explode"}]')
        with pytest.raises(CampaignError, match="unknown fault action"):
            active_schedule()

    def test_matching_is_keyed_and_attempt_scoped(self):
        directive = FaultDirective(action="raise", app="EP", index=1, attempts=(0,))
        assert directive.matches("execute", "EP", "sweep", 1, 0)
        assert not directive.matches("execute", "EP", "sweep", 1, 1)  # retry passes
        assert not directive.matches("execute", "CG", "sweep", 1, 0)
        assert not directive.matches("store", "EP", "sweep", 1, 0)

    def test_transient_vs_deterministic_raise(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "raise", "error": "transient"}]'
        )
        with pytest.raises(InjectedTransientFault):
            maybe_fault("execute", app="EP", index=0)
        monkeypatch.setenv(FAULT_ENV, '[{"action": "raise"}]')
        with pytest.raises(InjectedFault) as excinfo:
            maybe_fault("execute", app="EP", index=0)
        assert not isinstance(excinfo.value, InjectedTransientFault)


# ---------------------------------------------------------------------------
# Serial retry loop
# ---------------------------------------------------------------------------

class TestSerialLoop:
    def test_transient_failure_retried_to_success(self):
        calls = []

        def flaky(name, attempt):
            calls.append((name, attempt))
            if attempt == 0:
                raise InjectedTransientFault("first attempt dies")
            return f"{name}-ok"

        outcome = run_resilient_serial(
            [("t1", flaky, ("t1",)), ("t2", flaky, ("t2",))],
            policy=FAST_POLICY,
        )
        assert outcome.results == {"t1": "t1-ok", "t2": "t2-ok"}
        assert outcome.retried == 2
        assert not outcome.failures
        assert calls == [("t1", 0), ("t1", 1), ("t2", 0), ("t2", 1)]

    def test_deterministic_failure_fails_fast(self):
        def bad(attempt):
            raise ValueError("always broken")

        def good(attempt):
            return 42

        outcome = run_resilient_serial(
            [("bad", bad, ()), ("good", good, ())], policy=FAST_POLICY
        )
        assert outcome.results == {"good": 42}
        failure = outcome.failures["bad"]
        assert failure.kind == "deterministic"
        assert failure.attempts == 1  # never retried
        assert outcome.retried == 0

    def test_retries_are_bounded(self):
        attempts = []

        def always_flaky(attempt):
            attempts.append(attempt)
            raise InjectedTransientFault("never succeeds")

        outcome = run_resilient_serial(
            [("t", always_flaky, ())], policy=FAST_POLICY
        )
        assert attempts == [0, 1, 2]  # 1 + max_retries
        assert outcome.failures["t"].attempts == 3
        assert outcome.failures["t"].kind == "transient"


# ---------------------------------------------------------------------------
# Engine integration: quarantine lifecycle (serial, in-process faults)
# ---------------------------------------------------------------------------

class TestQuarantineLifecycle:
    JOBS = 3

    def _engine(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        return CampaignEngine(
            store=store, max_workers=1, retry_policy=FAST_POLICY
        )

    def _plan(self):
        return sweep_jobs("EP", threads=24)[: self.JOBS]

    def test_full_lifecycle(self, tmp_path, monkeypatch):
        # 1. A deterministically failing job is quarantined.
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "raise", "index": 0, "attempts": "all"}]'
        )
        engine = self._engine(tmp_path)
        results = engine.run(self._plan(), on_failure="quarantine")
        assert results.report.failed == 1
        assert results.report.executed == self.JOBS - 1
        assert len(results.failures) == 1

        # Looking up the failed job's payload is a clear error, not KeyError.
        (failed_key,) = results.failures
        with pytest.raises(CampaignError, match="retry"):
            results[failed_key]

        # The store summary surfaces the quarantine record.
        assert engine.store.summary()["quarantined"] == 1

        # 2. A re-run skips the quarantined job without burning retries.
        monkeypatch.delenv(FAULT_ENV)
        engine2 = self._engine(tmp_path)
        results2 = engine2.run(self._plan(), on_failure="quarantine")
        assert results2.report.quarantined == 1
        assert results2.report.executed == 0
        assert results2.report.cached == self.JOBS - 1

        # 3. The default raise policy refuses up front, naming the cure.
        with pytest.raises(CampaignExecutionError, match="retry"):
            self._engine(tmp_path).run(self._plan())

        # 4. retry_failed re-attempts and heals the job.
        engine3 = self._engine(tmp_path)
        results3 = engine3.run(self._plan(), retry_failed=True)
        assert results3.report.executed == 1
        assert results3.report.failed == 0

        # 5. Healed: the stale failure record no longer matters.
        engine4 = self._engine(tmp_path)
        results4 = engine4.run(self._plan())
        assert results4.report.cached == self.JOBS
        assert results4.report.executed == 0

    def test_skip_policy_persists_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "raise", "index": 0, "attempts": "all"}]'
        )
        engine = self._engine(tmp_path)
        results = engine.run(self._plan(), on_failure="skip")
        assert results.report.failed == 1
        assert engine.store.summary()["quarantined"] == 0

    def test_serial_partial_completion_in_raise(self, tmp_path, monkeypatch):
        """Satellite: the serial path reports partial completion in the
        raised error and leaves persisted work consistent."""
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "raise", "index": 1, "attempts": "all"}]'
        )
        engine = self._engine(tmp_path)
        with pytest.raises(CampaignExecutionError) as excinfo:
            engine.run(self._plan(), on_failure="raise")
        err = excinfo.value
        assert len(err.failures) == 1
        # raise policy stops submissions on the first definitive
        # failure: job 0 completed, job 1 failed, job 2 never ran.
        assert len(err.completed) == 1
        assert len(err.not_run) == 1
        assert isinstance(err.__cause__, InjectedFault)
        # Completed work is on disk and is reused by the next run.
        monkeypatch.delenv(FAULT_ENV)
        results = self._engine(tmp_path).run(self._plan())
        assert results.report.cached == 1
        assert results.report.executed == self.JOBS - 1


# ---------------------------------------------------------------------------
# Satellite regression: direct-write pool path refreshes the store even
# when a future raises.
# ---------------------------------------------------------------------------

class TestDirectWriteRefresh:
    def test_store_rehydrated_despite_raising_job(self, tmp_path, monkeypatch):
        """Workers write the sqlite store directly; when one job raises,
        the parent must still refresh its handle in the finally path so
        completed results are visible (historically they were not)."""
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "raise", "index": 0, "attempts": "all"}]'
        )
        jobs = sweep_jobs("EP", threads=24)[:4]
        with ResultStore(tmp_path / "store.sqlite") as store:
            assert store.supports_concurrent_writers
            engine = CampaignEngine(
                store=store, max_workers=2, retry_policy=FAST_POLICY
            )
            with pytest.raises(CampaignExecutionError) as excinfo:
                engine.run(jobs, on_failure="raise")
            # raise policy stops submissions after the failure, but
            # whatever DID complete must be visible through the
            # parent's (refreshed) handle — not stranded in released
            # connections.
            completed = excinfo.value.completed
            assert completed
            assert len(store) == len(completed)
            for key in completed:
                assert store.get(key) is not None


# ---------------------------------------------------------------------------
# Resume manifests
# ---------------------------------------------------------------------------

class TestResumeManifest:
    MANIFEST = ResumeManifest(
        store="/tmp/s.sqlite",
        planned=5,
        completed=("k1", "k2"),
        quarantined=("k3",),
        pending=("k4", "k5"),
        signal_name="SIGTERM",
    )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "m.resume.json"
        self.MANIFEST.save(path)
        assert ResumeManifest.load(path) == self.MANIFEST

    def test_missing_manifest_is_clear_error(self, tmp_path):
        with pytest.raises(CampaignError, match="nothing to resume"):
            ResumeManifest.load(tmp_path / "absent.json")

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "m.resume.json"
        payload = json.loads(
            json.dumps(
                {
                    "manifest_version": 999,
                    "store": None,
                    "planned": 0,
                    "completed": [],
                    "quarantined": [],
                    "pending": [],
                    "signal": "drain",
                }
            )
        )
        path.write_text(json.dumps(payload))
        with pytest.raises(CampaignError, match="version"):
            ResumeManifest.load(path)

    def test_corrupt_manifest_is_clear_error(self, tmp_path):
        path = tmp_path / "m.resume.json"
        path.write_text("{ not json")
        with pytest.raises(CampaignError, match="unreadable"):
            ResumeManifest.load(path)


# ---------------------------------------------------------------------------
# Chaos suite: real pools, real signals (pytest -m chaos)
# ---------------------------------------------------------------------------

BACKENDS = ("jsonl", "sqlite", "segment")


def _store_arg(tmp_path, backend):
    suffix = {"jsonl": "store.jsonl", "sqlite": "store.sqlite", "segment": "store"}
    return str(tmp_path / suffix[backend])


def _payloads(store_path, backend):
    """key -> result payload for every non-failure record in a store."""
    with ResultStore(store_path, backend=backend) as store:
        return {
            r["key"]: r["result"]
            for r in store.iter_records()
            if r["job"].get("mode") != "failure"
        }


@pytest.mark.chaos
class TestChaosWorkerCrash:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sigkill_loses_no_completed_work(self, tmp_path, monkeypatch, backend):
        """A SIGKILLed worker (the real signal, injected in-process)
        breaks the pool mid-campaign; the engine respawns, retries, and
        the final store is bit-identical to an undisturbed serial run."""
        jobs = sweep_jobs("EP", threads=24)[:6]

        # Reference: serial, no faults.
        monkeypatch.delenv(FAULT_ENV, raising=False)
        ref_path = _store_arg(tmp_path / "ref", "jsonl")
        with ResultStore(ref_path, backend="jsonl") as ref_store:
            CampaignEngine(store=ref_store, max_workers=1).run(jobs)
        reference = _payloads(ref_path, "jsonl")

        # Chaos run: SIGKILL the worker executing job 2, first attempt.
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "crash", "index": 2, "attempts": [0]}]'
        )
        chaos_path = _store_arg(tmp_path, backend)
        with ResultStore(chaos_path, backend=backend) as store:
            engine = CampaignEngine(
                store=store, max_workers=2, retry_policy=FAST_POLICY
            )
            results = engine.run(jobs)
        assert results.report.failed == 0
        assert results.report.retried >= 1  # the crash cost at least one retry

        chaos = _payloads(chaos_path, backend)
        # Same keys, bit-identical payloads: zero completed jobs lost,
        # and the respawn/retry changed nothing about the results.
        assert chaos == reference


@pytest.mark.chaos
class TestChaosTimeout:
    def test_hung_job_times_out_retries_and_completes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "hang", "index": 0, "attempts": [0]}]'
        )
        jobs = sweep_jobs("EP", threads=24)[:4]
        policy = RetryPolicy(
            max_retries=2,
            backoff_base_s=0.001,
            backoff_cap_s=0.01,
            job_timeout_s=1.5,
        )
        with ResultStore(tmp_path / "store.sqlite") as store:
            engine = CampaignEngine(store=store, max_workers=2, retry_policy=policy)
            results = engine.run(jobs)
        assert results.report.failed == 0
        assert results.report.retried >= 1
        assert results.report.executed == 4

    def test_job_hanging_every_attempt_is_quarantined(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            FAULT_ENV, '[{"action": "hang", "index": 0, "attempts": "all"}]'
        )
        jobs = sweep_jobs("EP", threads=24)[:3]
        policy = RetryPolicy(
            max_retries=1,
            backoff_base_s=0.001,
            backoff_cap_s=0.01,
            job_timeout_s=1.0,
        )
        with ResultStore(tmp_path / "store.sqlite") as store:
            engine = CampaignEngine(store=store, max_workers=2, retry_policy=policy)
            results = engine.run(jobs, on_failure="quarantine")
            assert results.report.failed == 1
            assert results.report.executed == 2
            (failure,) = results.failures.values()
            assert failure.error_type == "JobTimeoutError"
            assert store.summary()["quarantined"] == 1


_CLI = "from repro.tools.cli import main_campaign; import sys; sys.exit(main_campaign(sys.argv[1:]))"


def _cli_env(extra=None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULT_ENV, None)
    if extra:
        env.update(extra)
    return env


def _run_cli(args, env, **kw):
    return subprocess.run(
        [sys.executable, "-c", _CLI, *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        **kw,
    )


@pytest.mark.chaos
class TestChaosDrainResume:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sigterm_drain_then_cli_resume_bit_identical(self, tmp_path, backend):
        """SIGTERM drains a running CLI campaign (exit 130 + manifest);
        ``--resume`` finishes it; the store ends bit-identical to an
        uninterrupted run of the same campaign."""
        flags = ["--benchmarks", "EP", "--threads", "24", "--workers", "2"]

        # Reference: uninterrupted run.
        ref_path = _store_arg(tmp_path / "ref", backend)
        r = _run_cli(
            ["run", "--store", ref_path, "--backend", backend, *flags],
            _cli_env(),
        )
        assert r.returncode == 0, r.stdout + r.stderr
        reference = _payloads(ref_path, backend)

        # Interrupted run: every job slowed so SIGTERM lands mid-flight.
        store_path = _store_arg(tmp_path, backend)
        manifest = Path(store_path + ".resume.json")
        env = _cli_env(
            {FAULT_ENV: '[{"action": "delay", "delay_s": 0.3, "attempts": "all"}]'}
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _CLI,
                "run",
                "--store",
                store_path,
                "--backend",
                backend,
                *flags,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        time.sleep(2.5)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 130, out
        assert "drained on SIGTERM" in out
        assert manifest.exists(), out
        payload = json.loads(manifest.read_text())
        assert payload["planned"] == 34
        assert 0 < len(payload["completed"]) < 34
        assert len(payload["pending"]) == 34 - len(payload["completed"])

        # Partial progress really is on disk.
        partial = _payloads(store_path, backend)
        assert set(partial) == set(payload["completed"])
        assert all(partial[k] == reference[k] for k in partial)

        # Resume (no faults) completes the campaign and cleans up.
        r = _run_cli(
            [
                "run",
                "--store",
                store_path,
                "--backend",
                backend,
                "--resume",
                *flags,
            ],
            _cli_env(),
        )
        assert r.returncode == 0, r.stdout + r.stderr
        assert "resuming:" in r.stdout
        assert not manifest.exists()

        # The headline guarantee: bit-identical to the uninterrupted run.
        assert _payloads(store_path, backend) == reference

    def test_resume_refuses_a_different_plan(self, tmp_path):
        store_path = str(tmp_path / "store.sqlite")
        manifest = ResumeManifest(
            store=store_path,
            planned=2,
            completed=("k1",),
            quarantined=(),
            pending=("k2",),
        )
        manifest.save(store_path + ".resume.json")
        r = _run_cli(
            [
                "run",
                "--store",
                store_path,
                "--resume",
                "--benchmarks",
                "EP",
                "--threads",
                "24",
            ],
            _cli_env(),
        )
        assert r.returncode == 2
        assert "different campaign" in r.stderr
