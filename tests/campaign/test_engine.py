"""Tests for campaign planning and the (serial/parallel) engine.

The load-bearing properties: parallel execution is bit-identical to
serial, campaign results are bit-identical to the legacy per-run serial
code path, and a warm store answers a repeat campaign with zero new
simulations.
"""

import pytest

from repro import config
from repro.campaign.engine import CampaignEngine, execute_job
from repro.campaign.plan import (
    CampaignJob,
    CampaignPlan,
    counter_jobs,
    plan_dataset_campaign,
    plan_static_campaign,
    static_operating_points,
    sweep_jobs,
    thread_series,
)
from repro.campaign.store import ResultStore
from repro.errors import CampaignError, WorkloadError
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.cluster import Cluster
from repro.workloads import registry


def small_plan() -> CampaignPlan:
    """A cheap but representative plan: counters + a few energy points."""
    jobs = counter_jobs(
        "EP", threads=24, counters=("PAPI_TOT_INS", "PAPI_LD_INS"), runs=2
    )
    jobs += sweep_jobs("EP", threads=24)[:4]
    return CampaignPlan(jobs)


class TestPlan:
    def test_modes_validated(self):
        with pytest.raises(CampaignError):
            CampaignJob(app="EP", mode="bogus")

    def test_counters_mode_requires_counters(self):
        with pytest.raises(CampaignError):
            CampaignJob(app="EP", mode="counters")

    def test_run_key_matches_legacy_serial_labels(self):
        sweep = CampaignJob(
            app="EP", mode="sweep", core_freq_ghz=1.5, uncore_freq_ghz=2.0,
            threads=16,
        )
        assert sweep.run_key() == ("sweep", 16, 1.5, 2.0)
        static = CampaignJob(
            app="EP", mode="static", core_freq_ghz=1.5, uncore_freq_ghz=2.0,
            threads=16,
        )
        assert static.run_key() == ("static", 1.5, 2.0, 16)
        counters = CampaignJob(
            app="EP", mode="counters", threads=None, repetition=2,
            counters=("PAPI_TOT_INS",),
        )
        assert counters.run_key() == ("counters", None, 2)

    def test_plan_deduplicates_preserving_order(self):
        job_a = CampaignJob(app="EP", mode="sweep", threads=24)
        job_b = CampaignJob(app="EP", mode="sweep", threads=16)
        plan = CampaignPlan((job_a, job_b, job_a))
        assert plan.jobs == (job_a, job_b)

    def test_describe(self):
        plan = plan_dataset_campaign(("EP",), thread_counts=(24,))
        description = plan.describe()
        # 3 counter repetitions + the 31-point sweep.
        assert description["jobs"] == 34
        assert description["modes"] == {"counters": 3, "sweep": 31}
        assert description["apps"] == {"EP": 34}

    def test_thread_series_mpi_only_codes_fixed(self):
        for name in registry.benchmark_names():
            app = registry.build(name)
            series = thread_series(app, (12, 24))
            if app.model.supports_thread_tuning:
                assert series == (12, 24)
            else:
                assert series == (app.default_threads,)

    def test_static_points_include_platform_default(self):
        app = registry.build("EP")
        points = static_operating_points(app, stride=5, thread_counts=(12,))
        default = [
            p for p in points
            if p.core_freq_ghz == config.DEFAULT_CORE_FREQ_GHZ
            and p.uncore_freq_ghz == config.DEFAULT_UNCORE_FREQ_GHZ
            and p.threads == config.DEFAULT_OPENMP_THREADS
        ]
        assert len(default) == 1

    def test_static_campaign_size(self):
        plan = plan_static_campaign(("EP",), stride=4, thread_counts=(24,))
        # ceil(14/4) x ceil(18/4) + appended default = 4*5 + 1.
        assert len(plan) == 21


class TestEngine:
    def test_parallel_bit_identical_to_serial(self):
        plan = small_plan()
        serial = CampaignEngine(max_workers=1).run(plan)
        parallel = CampaignEngine(max_workers=2).run(plan)
        assert parallel.report.workers == 2
        for job in plan:
            assert serial[job] == parallel[job]

    def test_matches_legacy_serial_code_path(self):
        """An engine 'sweep' job equals running the simulator by hand
        exactly as the pre-campaign serial code did."""
        job = sweep_jobs("EP", threads=24, seed=config.DEFAULT_SEED)[2]
        payload = CampaignEngine(max_workers=1).run(CampaignPlan((job,)))[job]
        node = Cluster(4).fresh_node(0)
        node.set_frequencies(job.core_freq_ghz, job.uncore_freq_ghz)
        run = ExecutionSimulator(node).run(
            registry.build("EP"),
            threads=24,
            run_key=("sweep", 24, job.core_freq_ghz, job.uncore_freq_ghz),
        )
        assert payload["node_energy_j"] == run.node_energy_j
        assert payload["time_s"] == run.time_s
        assert payload["cpu_energy_j"] == run.cpu_energy_j

    def test_store_turns_second_run_into_pure_cache_hits(self, tmp_path):
        plan = small_plan()
        store = ResultStore(tmp_path / "store.jsonl")
        engine = CampaignEngine(store=store, max_workers=1)
        first = engine.run(plan)
        assert first.report.executed == len(plan)
        assert first.report.cached == 0
        second = engine.run(plan)
        assert second.report.executed == 0
        assert second.report.cached == len(plan)
        for job in plan:
            assert first[job] == second[job]

    def test_warm_store_shared_across_engines(self, tmp_path):
        """A fresh engine + store on the same file (a new session)
        reuses results bit-identically."""
        plan = small_plan()
        path = tmp_path / "store.jsonl"
        first_store = ResultStore(path)
        first = CampaignEngine(store=first_store, max_workers=1).run(plan)
        first_store.close()
        fresh = CampaignEngine(store=ResultStore(path), max_workers=1)
        second = fresh.run(plan)
        assert second.report.executed == 0
        assert fresh.total_executed == 0
        for job in plan:
            assert first[job] == second[job]

    def test_counters_payload_shape(self):
        job = counter_jobs(
            "CG", threads=20, counters=("PAPI_TOT_INS", "PAPI_LD_INS"), runs=1
        )[0]
        payload = execute_job(job)
        assert set(payload) == {"totals", "phase_time_s"}
        assert payload["phase_time_s"] > 0
        assert payload["totals"]["PAPI_TOT_INS"] > 0

    def test_unknown_app_rejected(self):
        job = CampaignJob(app="NotABenchmark", mode="sweep", threads=24)
        with pytest.raises(WorkloadError):
            execute_job(job)

    def test_missing_result_raises(self):
        results = CampaignEngine(max_workers=1).run(CampaignPlan(()))
        with pytest.raises(CampaignError):
            results[CampaignJob(app="EP", mode="sweep", threads=24)]

    def test_run_accepts_bare_job_iterables(self):
        jobs = sweep_jobs("EP", threads=24)[:2]
        results = CampaignEngine(max_workers=1).run(jobs)
        assert len(results) == 2

    def test_auto_sizing_stays_serial_for_small_plans(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "4")
        plan = CampaignPlan(sweep_jobs("EP", threads=24)[:3])
        report = CampaignEngine().run(plan).report
        assert report.workers == 1  # pool overhead would dominate 3 jobs

    def test_explicit_workers_honoured_for_small_plans(self):
        plan = CampaignPlan(sweep_jobs("EP", threads=24)[:3])
        report = CampaignEngine(max_workers=2).run(plan).report
        assert report.workers == 2

    def test_stale_cached_payload_surfaces_clear_error(self, tmp_path):
        """A cached entry whose payload predates the current result
        schema must fail with an actionable CampaignError when recalled,
        not a raw KeyError in whatever consumer indexes it first."""
        import json

        from repro.campaign.engine import topology_job_key
        from repro.campaign.store import STORE_VERSION

        job = sweep_jobs("EP", threads=24)[0]
        key = topology_job_key(job, None)
        path = tmp_path / "store.jsonl"
        record = {
            "key": key,
            "store_version": STORE_VERSION,
            "job": job.descriptor(),
            "result": {"energy": 1.0},  # pre-campaign payload layout
        }
        path.write_text(json.dumps(record) + "\n")
        engine = CampaignEngine(store=ResultStore(path), max_workers=1)
        with pytest.raises(CampaignError, match="older result schema"):
            engine.run(CampaignPlan((job,)))

    def test_map_tasks_preserves_order_and_results(self):
        import math

        engine = CampaignEngine(max_workers=2)
        items = list(range(20))
        assert engine.map_tasks(math.sqrt, items) == [math.sqrt(i) for i in items]
        serial = CampaignEngine(max_workers=1)
        assert serial.map_tasks(math.sqrt, items) == [math.sqrt(i) for i in items]

    def test_custom_topology_does_not_collide_in_store(self, tmp_path):
        from repro.hardware.topology import NodeTopology

        plan = CampaignPlan(sweep_jobs("EP", threads=12)[:2])
        path = tmp_path / "store.jsonl"
        small = NodeTopology.build(1, 12)
        custom = CampaignEngine(
            store=ResultStore(path), max_workers=1, topology=small
        )
        custom_results = custom.run(plan)
        assert custom_results.report.executed == 2
        custom.store.close()
        default = CampaignEngine(store=ResultStore(path), max_workers=1)
        default_results = default.run(plan)
        assert default_results.report.cached == 0  # different physics
        for job in plan:
            assert custom_results[job] != default_results[job]


class TestConsumerEquivalence:
    """build_dataset / exhaustive_static_search produce identical results
    through serial engines, parallel engines, and warm stores."""

    def test_build_dataset_serial_parallel_and_cached_identical(self, tmp_path):
        import numpy as np

        from repro.modeling.dataset import build_dataset

        kwargs = dict(thread_counts=(24,))
        serial = build_dataset(("EP",), engine=CampaignEngine(max_workers=1), **kwargs)
        parallel = build_dataset(("EP",), engine=CampaignEngine(max_workers=2), **kwargs)
        store = ResultStore(tmp_path / "store.jsonl")
        warm_engine = CampaignEngine(store=store, max_workers=1)
        build_dataset(("EP",), engine=warm_engine, **kwargs)  # populate
        cached = build_dataset(("EP",), engine=warm_engine, **kwargs)
        assert warm_engine.total_executed == 34  # second build added nothing
        for other in (parallel, cached):
            assert np.array_equal(serial.features, other.features)
            assert np.array_equal(serial.targets, other.targets)
            assert np.array_equal(serial.times, other.times)

    def test_static_search_cached_run_simulates_nothing(self, tmp_path):
        from repro.ptf.static_tuning import exhaustive_static_search

        from repro.campaign.plan import grid_rows, static_operating_points

        cluster = Cluster(4)
        app = registry.build("EP")
        store = ResultStore(tmp_path / "store.jsonl")
        engine = CampaignEngine(store=store, max_workers=1)
        first = exhaustive_static_search(
            app, cluster, stride=6, thread_counts=(24,), engine=engine
        )
        executed = engine.total_executed
        # The default measurement submits one sweep-replay job per
        # (threads, CF) grid row, not one per cell.
        points = static_operating_points(app, stride=6, thread_counts=(24,))
        assert executed == len(grid_rows(points))
        assert first.configurations_tried == len(points)
        second = exhaustive_static_search(
            app, cluster, stride=6, thread_counts=(24,), engine=engine
        )
        assert engine.total_executed == executed  # zero new simulations
        assert second == first
        # The historical per-cell plan measures the same result.
        assert exhaustive_static_search(
            app, cluster, stride=6, thread_counts=(24,), measurement="cell"
        ) == first

    def test_static_search_honours_explicit_threads_for_mpi_codes(self):
        from repro.ptf.static_tuning import exhaustive_static_search

        app = registry.build("Kripke")  # no thread tuning
        assert not app.model.supports_thread_tuning
        result = exhaustive_static_search(
            app, Cluster(4), stride=7, thread_counts=(8, 16)
        )
        # 2 threads x 2 CFs x 3 UCFs + appended platform default.
        assert result.configurations_tried == 13

    def test_completed_jobs_persisted_despite_midrun_failure(self, tmp_path):
        from repro.errors import CampaignExecutionError

        good = sweep_jobs("EP", threads=24)[0]
        bad = CampaignJob(app="NotABenchmark", mode="sweep", threads=24)
        store = ResultStore(tmp_path / "store.jsonl")
        engine = CampaignEngine(store=store, max_workers=1)
        with pytest.raises(CampaignExecutionError) as excinfo:
            engine.run((good, bad))
        # The original failure is chained, partial completion is reported.
        assert isinstance(excinfo.value.__cause__, WorkloadError)
        assert len(excinfo.value.completed) == 1
        assert len(excinfo.value.failures) == 1
        assert len(store) == 1  # the completed job survived the crash

    def test_mutated_registered_app_runs_live_object(self):
        """An Application sharing a registry name but differing from the
        stock build must be simulated as passed, never cache-substituted."""
        import dataclasses

        from repro.modeling.dataset import measure_counter_rates

        cluster = Cluster(2)
        stock = registry.build("EP")
        mutated = dataclasses.replace(stock, phase_iterations=3)
        stock_rates = measure_counter_rates(stock, cluster, threads=24, runs=1)
        mutated_rates = measure_counter_rates(mutated, cluster, threads=24, runs=1)
        assert stock_rates != mutated_rates

    def test_unregistered_custom_app_runs_serially(self):
        import dataclasses

        from repro.modeling.dataset import measure_counter_rates
        from repro.ptf.static_tuning import exhaustive_static_search

        app = dataclasses.replace(registry.build("EP"), name="CustomEP")
        cluster = Cluster(2)
        rates = measure_counter_rates(app, cluster, threads=24)
        assert rates["PAPI_LD_INS"] > 0
        result = exhaustive_static_search(
            app, cluster, stride=7, thread_counts=(24,)
        )
        assert result.app_name == "CustomEP"
        assert result.configurations_tried == 7

    def test_out_of_range_node_id_rejected(self):
        from repro.errors import JobError
        from repro.modeling.dataset import build_dataset, measure_counter_rates
        from repro.ptf.static_tuning import exhaustive_static_search

        cluster = Cluster(4)
        app = registry.build("EP")
        with pytest.raises(JobError):
            measure_counter_rates(app, cluster, node_id=99, threads=24)
        with pytest.raises(JobError):
            exhaustive_static_search(app, cluster, node_id=99)
        with pytest.raises(JobError):
            build_dataset(("EP",), cluster=cluster, node_id=99)


class TestDirectWorkerWrites:
    """On concurrent-writer backends (SQLite, segments) pool workers
    persist their own results instead of funneling through the parent;
    results must stay bit-identical to the serial JSONL path."""

    @pytest.mark.parametrize("name, backend", [
        ("store.sqlite", "sqlite"),
        ("store-segments", "segment"),
    ])
    def test_pool_direct_writes_bit_identical_to_serial(
        self, tmp_path, name, backend
    ):
        plan = small_plan()
        serial = CampaignEngine(max_workers=1).run(plan)
        with ResultStore(tmp_path / name, backend=backend) as store:
            engine = CampaignEngine(store=store, max_workers=2)
            assert engine._direct_write()
            parallel = engine.run(plan)
            assert parallel.report.executed == len(plan)
            for job in plan:
                assert parallel[job] == serial[job]
            # The workers, not the parent, persisted every record.
            assert len(store) == len(plan)
        # A fresh session recalls everything from the worker-written store.
        with ResultStore(tmp_path / name) as reopened:
            fresh = CampaignEngine(store=reopened, max_workers=1)
            second = fresh.run(plan)
            assert second.report.executed == 0
            assert second.report.cached == len(plan)
            for job in plan:
                assert second[job] == serial[job]

    def test_jsonl_store_keeps_parent_funnel(self, tmp_path):
        with ResultStore(tmp_path / "store.jsonl") as store:
            engine = CampaignEngine(store=store, max_workers=2)
            assert not engine._direct_write()
            engine.run(small_plan())
            assert len(store) == len(small_plan())
