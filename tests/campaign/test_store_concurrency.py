"""Multi-process write stress for the concurrent store backends.

The SQLite and segment backends advertise
``supports_concurrent_writers``: several worker processes may put
results into the same store at once (this is what lets campaign pool
workers write directly instead of funnelling results through the
parent).  The contract under contention:

* **no lost records** — every key written by any process is readable
  afterwards;
* **no duplicate-key divergence** — concurrent writers of the same key
  (campaign workers always compute bit-identical payloads for the same
  descriptor) never leave a reader seeing a third value;
* **stale healing is last-wins** — records pre-seeded under an older
  schema version end up healed to the current-version payload.

The JSONL tier makes no such promise and is excluded here.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.campaign.store import STORE_VERSION, ResultStore, job_key

CONCURRENT_BACKENDS = ("sqlite", "segment")

#: Keys are deliberately shared across writers: with 4 writers over 80
#: keys each from a 120-key space, most keys see multiple writers.
WRITERS = 4
KEYS_PER_WRITER = 80
KEY_SPACE = 120


def descriptor(i: int) -> dict:
    return {"mode": "synthetic", "app": f"app-{i % 4}", "i": i}


def result(i: int) -> dict:
    # Deterministic per key — like real campaign jobs, every writer
    # computes the identical payload for the same descriptor.
    return {"node_energy_j": 100.0 + i * 0.125, "time_s": 1.0 + i}


def writer(path_str: str, worker: int) -> None:
    """One writer process: put an overlapping slice of the key space."""
    with ResultStore(path_str) as store:
        for n in range(KEYS_PER_WRITER):
            i = (worker * 31 + n * 7) % KEY_SPACE  # overlapping stride
            store.put(job_key(descriptor(i)), descriptor(i), result(i))
            if n % 16 == 0:
                store.flush()  # interleave index flushes across writers


def written_indices() -> set[int]:
    return {
        (worker * 31 + n * 7) % KEY_SPACE
        for worker in range(WRITERS)
        for n in range(KEYS_PER_WRITER)
    }


@pytest.mark.parametrize("backend", CONCURRENT_BACKENDS)
def test_concurrent_writers_lose_nothing(tmp_path, backend):
    path = tmp_path / ("store.sqlite" if backend == "sqlite" else "store-seg")
    with ResultStore(path, backend=backend) as store:
        assert store.supports_concurrent_writers
        # Pre-seed a few stale-version records; concurrent writers must
        # heal them (last-wins) rather than trip over them.
        for i in range(0, KEY_SPACE, 10):
            desc = descriptor(i)
            store._backend.put_record(
                {
                    "key": job_key(desc),
                    "store_version": STORE_VERSION - 1,
                    "job": desc,
                    "result": {"obsolete": True},
                }
            )

    processes = [
        multiprocessing.Process(target=writer, args=(str(path), worker))
        for worker in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0, f"writer crashed (exit {process.exitcode})"

    expected = written_indices()
    assert len(expected) == KEY_SPACE  # the strides cover the key space
    with ResultStore(path) as store:
        assert len(store) == KEY_SPACE
        for i in sorted(expected):
            assert store.get(job_key(descriptor(i))) == result(i), i
        assert store.stale_records == 0  # every seeded record was healed
        assert store.verify() == []
        summary = store.summary()
        assert summary["results"] == KEY_SPACE
        assert sum(summary["apps"].values()) == KEY_SPACE


@pytest.mark.parametrize("backend", CONCURRENT_BACKENDS)
def test_live_store_sees_other_processes_after_refresh(tmp_path, backend):
    """A store held open while another process writes picks the new
    records up on refresh() — the engine's post-pool resync path."""
    path = tmp_path / ("live.sqlite" if backend == "sqlite" else "live-seg")
    with ResultStore(path, backend=backend) as store:
        desc = descriptor(0)
        store.put(job_key(desc), desc, result(0))
        store.flush()

        process = multiprocessing.Process(target=writer, args=(str(path), 1))
        process.start()
        process.join(timeout=120)
        assert process.exitcode == 0

        store.refresh()
        for n in range(KEYS_PER_WRITER):
            i = (31 + n * 7) % KEY_SPACE
            assert store.get(job_key(descriptor(i))) == result(i)


def test_jsonl_does_not_claim_concurrency(tmp_path):
    with ResultStore(tmp_path / "store.jsonl") as store:
        assert not store.supports_concurrent_writers
