"""The ``grid`` campaign mode: row jobs over the sweep-replay engine."""

import pytest

from repro import config
from repro.campaign.engine import (
    CampaignEngine,
    execute_job,
    validate_payload,
)
from repro.campaign.plan import (
    CampaignJob,
    grid_jobs,
    grid_rows,
    grid_run_key,
    static_jobs,
)
from repro.campaign.store import ResultStore
from repro.errors import CampaignError
from repro.execution.simulator import OperatingPoint


def small_grid(threads=(24,), ncf=2, nucf=3):
    return [
        OperatingPoint(cf, ucf, t)
        for t in threads
        for cf in config.CORE_FREQUENCIES_GHZ[:ncf]
        for ucf in config.UNCORE_FREQUENCIES_GHZ[:nucf]
    ]


class TestGridPlan:
    def test_rows_preserve_sweep_order(self):
        points = small_grid(threads=(12, 24))
        rows = grid_rows(points)
        assert [r[:2] for r in rows] == [
            (12, 1.2), (12, 1.3), (24, 1.2), (24, 1.3)
        ]
        assert all(r[2] == (1.3, 1.4, 1.5) for r in rows)

    def test_one_job_per_row(self):
        jobs = grid_jobs("EP", label="static", points=small_grid())
        assert len(jobs) == 2
        assert all(job.mode == "grid" for job in jobs)
        assert jobs[0].uncore_freqs_ghz == (1.3, 1.4, 1.5)

    def test_cell_run_keys_match_historical_layouts(self):
        job = grid_jobs("EP", label="static", points=small_grid())[0]
        static = static_jobs("EP", points=small_grid())[:3]
        assert job.cell_run_keys() == tuple(s.run_key() for s in static)
        heat = grid_jobs("EP", label="heatmap", points=small_grid())[0]
        assert heat.cell_run_keys()[0] == ("heatmap", 1.2, 1.3)

    def test_run_key_refuses_grid_jobs(self):
        job = grid_jobs("EP", label="static", points=small_grid())[0]
        with pytest.raises(CampaignError, match="cell_run_keys"):
            job.run_key()

    def test_unknown_label_rejected(self):
        with pytest.raises(CampaignError, match="run-key label"):
            grid_run_key("warp", core_freq_ghz=1.2, uncore_freq_ghz=1.3, threads=24)
        with pytest.raises(CampaignError, match="run-key label"):
            CampaignJob(
                app="EP", mode="grid", label="warp", uncore_freqs_ghz=(1.3,)
            )

    def test_empty_row_rejected(self):
        with pytest.raises(CampaignError, match="UCF row"):
            CampaignJob(app="EP", mode="grid", label="static")

    def test_descriptor_carries_row_axis(self):
        job = grid_jobs("EP", label="heatmap", points=small_grid())[0]
        descriptor = job.descriptor()
        assert descriptor["label"] == "heatmap"
        assert descriptor["uncore_freqs_ghz"] == [1.3, 1.4, 1.5]
        # Savings-only fields stay out of grid descriptors.
        assert "controller" not in descriptor


class TestGridExecution:
    def test_row_payload_matches_per_cell_static_jobs(self):
        points = small_grid()
        row = grid_jobs("EP", label="static", points=points)[0]
        payload = execute_job(row)
        validate_payload(row, payload)
        cells = static_jobs("EP", points=points)[:3]
        for i, cell in enumerate(cells):
            ref = execute_job(cell)
            assert payload["node_energy_j"][i] == ref["node_energy_j"]
            assert payload["cpu_energy_j"][i] == ref["cpu_energy_j"]
            assert payload["time_s"][i] == ref["time_s"]

    def test_default_threads_resolved_like_run(self):
        points = [OperatingPoint(1.2, 1.3, 24)]
        job = grid_jobs("EP", label="static", points=points)[0]
        explicit = execute_job(job)
        none_threads = CampaignJob(
            app="EP", mode="grid", core_freq_ghz=1.2, threads=None,
            label="static", uncore_freqs_ghz=(1.3,),
        )
        resolved = execute_job(none_threads)
        # EP's default is 24 threads, so the physics agree; only the
        # noise key (which carries threads verbatim) differs.
        assert resolved["uncore_freqs_ghz"] == explicit["uncore_freqs_ghz"]

    def test_store_roundtrip_caches_rows(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = CampaignEngine(store=store, max_workers=0)
        jobs = grid_jobs("EP", label="heatmap", points=small_grid())
        first = engine.run(jobs)
        assert first.report.executed == len(jobs)
        second = engine.run(jobs)
        assert second.report.cached == len(jobs)
        for job in jobs:
            assert second[job] == first[job]

    def test_stale_payload_rejected_with_clear_error(self, tmp_path):
        from repro.campaign.engine import topology_job_key

        store = ResultStore(tmp_path / "store.jsonl")
        job = grid_jobs("EP", label="heatmap", points=small_grid())[0]
        key = topology_job_key(job, None)
        store.put(key, job.descriptor(), {"node_energy_j": [1.0]})
        engine = CampaignEngine(store=store, max_workers=0)
        with pytest.raises(CampaignError, match="older"):
            engine.run([job])
