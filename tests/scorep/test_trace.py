"""Tests for OTF2-style tracing and metric plugins."""

import pytest

from repro.errors import TraceError
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.node import ComputeNode
from repro.scorep.hdeem_plugin import HdeemMetricPlugin
from repro.scorep.otf2 import read_trace, write_trace
from repro.scorep.papi_plugin import PapiMetricPlugin
from repro.scorep.trace import (
    EnterRecord,
    LeaveRecord,
    Trace,
    TraceCollector,
)
from repro.workloads import registry


def trace_run(app, plugins=(), node=None):
    collector = TraceCollector(app.name, metric_plugins=plugins)
    sim = ExecutionSimulator(node or ComputeNode(0))
    sim.run(app, listeners=(collector,), collect_counters=True)
    return collector.trace()


class TestTraceStructure:
    def test_records_chronological_and_balanced(self):
        trace = trace_run(registry.build("EP"))
        trace.validate()  # should not raise

    def test_enter_leave_counts_match(self):
        app = registry.build("FT")
        trace = trace_run(app)
        assert len(trace.enters()) == len(trace.leaves())
        assert len(trace.enters("phase")) == app.phase_iterations

    def test_out_of_order_trace_rejected(self):
        t = Trace(app_name="x")
        t.records = [
            EnterRecord(1.0, "a", 0),
            LeaveRecord(0.5, "a", 0),
        ]
        with pytest.raises(TraceError, match="chronological"):
            t.validate()

    def test_unbalanced_trace_rejected(self):
        t = Trace(app_name="x")
        t.records = [EnterRecord(0.0, "a", 0), LeaveRecord(1.0, "b", 0)]
        with pytest.raises(TraceError, match="unbalanced"):
            t.validate()

    def test_open_region_at_end_rejected(self):
        t = Trace(app_name="x")
        t.records = [EnterRecord(0.0, "a", 0)]
        with pytest.raises(TraceError, match="open"):
            t.validate()


class TestMetricPlugins:
    def test_hdeem_plugin_adds_energy_records(self):
        trace = trace_run(registry.build("EP"), plugins=(HdeemMetricPlugin(),))
        metrics = trace.metrics("gaussian_pairs")
        assert metrics
        assert all(m.values[HdeemMetricPlugin.ENERGY_KEY] > 0 for m in metrics)

    def test_papi_plugin_respects_event_limit(self):
        plugin = PapiMetricPlugin(("LD_INS", "SR_INS", "BR_MSP", "RES_STL"))
        trace = trace_run(registry.build("EP"), plugins=(plugin,))
        m = trace.metrics("gaussian_pairs")[0]
        papi_keys = [k for k in m.values if k.startswith("papi::")]
        assert sorted(papi_keys) == [
            "papi::BR_MSP", "papi::LD_INS", "papi::RES_STL", "papi::SR_INS"
        ]

    def test_combined_plugins(self):
        plugins = (PapiMetricPlugin(("LD_INS",)), HdeemMetricPlugin())
        trace = trace_run(registry.build("EP"), plugins=plugins)
        m = trace.metrics("gaussian_pairs")[0]
        assert "papi::LD_INS" in m.values
        assert HdeemMetricPlugin.ENERGY_KEY in m.values


class TestOtf2Serialisation:
    def test_roundtrip(self, tmp_path):
        trace = trace_run(registry.build("EP"), plugins=(HdeemMetricPlugin(),))
        path = write_trace(trace, tmp_path / "ep.otf2.jsonl")
        clone = read_trace(path)
        assert clone.app_name == trace.app_name
        assert len(clone.records) == len(trace.records)
        assert clone.metrics()[0].values == trace.metrics()[0].values

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(TraceError):
            read_trace(p)

    def test_version_mismatch_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"otf2_version": 99, "app": "x"}\n')
        with pytest.raises(TraceError, match="version"):
            read_trace(p)
