"""Tests for instrumentation, profiling and the autofilter workflow."""

import pytest

from repro.errors import InstrumentationError
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.node import ComputeNode
from repro.scorep.filtering import (
    FilterFile,
    apply_compile_time_filter,
    scorep_autofilter,
)
from repro.scorep.instrumentation import Instrumentation
from repro.scorep.macros import annotate_phase
from repro.scorep.profile import CallTreeProfile, ProfileCollector
from repro.workloads import registry


def profile_run(app, instrumentation=None):
    collector = ProfileCollector(app.name)
    sim = ExecutionSimulator(ComputeNode(0))
    sim.run(app, listeners=(collector,), instrumentation=instrumentation)
    return collector.profile()


class TestInstrumentation:
    def test_compiler_default_instruments_everything(self):
        app = registry.build("Lulesh")
        instr = Instrumentation.compiler_default(app)
        assert all(instr.is_instrumented(r) for r in app.regions)

    def test_filter_removes_function_probes(self):
        app = registry.build("Lulesh")
        instr = Instrumentation.compiler_default(app)
        filtered = instr.apply_filter({"CalcTimeConstraintsForElems"})
        region = app.find_region("CalcTimeConstraintsForElems")
        assert not filtered.is_instrumented(region)

    def test_omp_regions_cannot_be_filtered(self):
        app = registry.build("Mcb")
        instr = Instrumentation.compiler_default(app)
        with pytest.raises(InstrumentationError):
            instr.apply_filter({"omp parallel:423"})

    def test_phase_region_cannot_be_filtered(self):
        app = registry.build("EP")
        instr = Instrumentation.compiler_default(app)
        with pytest.raises(InstrumentationError):
            instr.apply_filter({"phase"})


class TestProfileCollector:
    def test_profile_structure_mirrors_region_tree(self):
        app = registry.build("Lulesh")
        profile = profile_run(app)
        phase = profile.node("phase")
        assert phase.visits == app.phase_iterations
        assert "IntegrateStressForElems" in phase.children

    def test_mean_time_positive(self):
        app = registry.build("EP")
        profile = profile_run(app)
        assert profile.node("gaussian_pairs").mean_time_s > 0

    def test_profile_roundtrip_through_dict(self):
        app = registry.build("EP")
        profile = profile_run(app)
        clone = CallTreeProfile.from_dict(profile.to_dict())
        assert clone.region_names() == profile.region_names()
        assert clone.node("phase").inclusive_time_s == pytest.approx(
            profile.node("phase").inclusive_time_s
        )

    def test_unknown_region_lookup_fails(self):
        app = registry.build("EP")
        profile = profile_run(app)
        with pytest.raises(InstrumentationError):
            profile.node("nope")


class TestAutofilter:
    def test_tiny_regions_get_filtered(self):
        app = registry.build("Lulesh")
        instr = Instrumentation.compiler_default(app)
        profile = profile_run(app, instr)
        ff = scorep_autofilter(profile, instr)
        assert "CalcTimeConstraintsForElems" in ff.excluded
        assert "LagrangeNodal_misc" in ff.excluded

    def test_significant_regions_survive(self):
        app = registry.build("Lulesh")
        instr = Instrumentation.compiler_default(app)
        ff = scorep_autofilter(profile_run(app, instr), instr)
        assert "IntegrateStressForElems" not in ff.excluded
        assert "phase" not in ff.excluded

    def test_compile_time_filter_reduces_overhead(self):
        app = registry.build("Lulesh")
        instr = Instrumentation.compiler_default(app)
        ff = scorep_autofilter(profile_run(app, instr), instr)
        filtered = apply_compile_time_filter(instr, ff)

        full = ExecutionSimulator(ComputeNode(0)).run(app, instrumentation=instr)
        trimmed = ExecutionSimulator(ComputeNode(0)).run(
            app, instrumentation=filtered
        )
        assert trimmed.instrumentation_time_s < full.instrumentation_time_s

    def test_overhead_not_fully_removed(self):
        """OpenMP/MPI wrapper events survive filtering (Section V-E)."""
        app = registry.build("Mcb")
        instr = Instrumentation.compiler_default(app)
        ff = scorep_autofilter(profile_run(app, instr), instr)
        filtered = apply_compile_time_filter(instr, ff)
        run = ExecutionSimulator(ComputeNode(0)).run(app, instrumentation=filtered)
        assert run.instrumentation_time_s > 0

    def test_filter_file_roundtrip(self):
        ff = FilterFile(excluded=("a", "b", "c"))
        assert FilterFile.parse(ff.render()) == ff

    def test_malformed_filter_file_rejected(self):
        with pytest.raises(InstrumentationError):
            FilterFile.parse("not a filter file")

    def test_bad_threshold_rejected(self):
        app = registry.build("EP")
        instr = Instrumentation.compiler_default(app)
        with pytest.raises(InstrumentationError):
            scorep_autofilter(profile_run(app, instr), instr, threshold_s=0)


class TestPhaseAnnotation:
    def test_all_benchmarks_annotatable(self):
        for name in registry.benchmark_names():
            assert annotate_phase(registry.build(name)) == "phase"
