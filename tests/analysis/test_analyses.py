"""Tests for the per-figure/table analysis producers."""

import pytest

from repro import config
from repro.analysis.heatmap import energy_heatmap
from repro.analysis.savings import compare_static_dynamic
from repro.analysis.tradeoffs import energy_time_tradeoff, pareto_front
from repro.analysis.tuning_time import tuning_time_comparison
from repro.analysis.variability import variability_study
from repro.analysis import reporting
from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.readex.tuning_model import TuningModel
from repro.workloads import registry


@pytest.fixture(scope="module")
def cluster():
    return Cluster(6)


class TestVariability:
    @pytest.fixture(scope="class")
    def study(self, cluster):
        return variability_study("Lulesh", axis="core", nodes=(0, 1, 2), cluster=cluster)

    def test_nodes_have_distinct_raw_energy(self, study):
        mins = [s.min() for s in study.raw_energy_j.values()]
        assert len({round(m, 3) for m in mins}) == 3

    def test_normalization_reduces_spread(self, study):
        assert study.normalized_spread < study.raw_spread
        assert study.spread_reduction > 2.0

    def test_series_cover_all_core_frequencies(self, study):
        assert study.frequencies == config.CORE_FREQUENCIES_GHZ
        for series in study.raw_energy_j.values():
            assert len(series) == 14

    def test_uncore_axis(self, cluster):
        study = variability_study(
            "Lulesh", axis="uncore", nodes=(0, 1), cluster=cluster
        )
        assert study.frequencies == config.UNCORE_FREQUENCIES_GHZ
        assert study.normalized_spread < study.raw_spread

    def test_bad_axis_rejected(self):
        with pytest.raises(ValueError):
            variability_study("Lulesh", axis="dram")

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            variability_study("Lulesh", engine="sweep")

    @pytest.mark.parametrize("axis", ["core", "uncore"])
    def test_fleet_engine_bit_identical_to_loop(self, axis, cluster):
        """The default fleet-kernel sweep equals the per-cell loop."""
        kwargs = dict(axis=axis, nodes=(0, 2), cluster=cluster)
        fleet = variability_study("Mcb", engine="fleet", **kwargs)
        loop = variability_study("Mcb", engine="loop", **kwargs)
        for node_id in (0, 2):
            assert (
                fleet.raw_energy_j[node_id].tolist()
                == loop.raw_energy_j[node_id].tolist()
            )
            assert (
                fleet.normalized_energy[node_id].tolist()
                == loop.normalized_energy[node_id].tolist()
            )

    def test_rendering(self, study):
        text = reporting.render_variability(study)
        assert "Lulesh" in text and "spread" in text


class TestHeatmap:
    @pytest.fixture(scope="class")
    def lulesh_map(self, cluster):
        return energy_heatmap(
            "Lulesh", threads=24, cluster=cluster, selected=(2.4, 1.7)
        )

    def test_grid_shape(self, lulesh_map):
        assert lulesh_map.normalized.shape == (14, 18)

    def test_compute_bound_best_high_cf_low_ucf(self, lulesh_map):
        cf, ucf = lulesh_map.best
        assert cf >= 2.2
        assert ucf <= 2.0

    def test_calibration_cell_is_unity(self, lulesh_map):
        assert lulesh_map.value_at(2.0, 1.5) == pytest.approx(1.0, abs=0.02)

    def test_plateau_contains_best(self, lulesh_map):
        assert lulesh_map.best in lulesh_map.plateau()

    def test_selected_within_plateau(self, lulesh_map):
        assert lulesh_map.selected_within_plateau(threshold=0.03)

    def test_memory_bound_best_low_cf_high_ucf(self, cluster):
        heatmap = energy_heatmap("Mcb", threads=20, cluster=cluster)
        cf, ucf = heatmap.best
        assert cf <= 1.9
        assert ucf >= 2.2

    def test_rendering_marks_best(self, lulesh_map):
        text = reporting.render_heatmap(lulesh_map)
        assert "*" in text and "+" in text


class TestSavings:
    @pytest.fixture(scope="class")
    def lulesh_savings(self, cluster):
        tmm = TuningModel.from_best_configs(
            "Lulesh",
            "phase",
            {
                "phase": OperatingPoint(2.4, 1.7, 24),
                "IntegrateStressForElems": OperatingPoint(2.5, 1.7, 24),
                "CalcFBHourglassForceForElems": OperatingPoint(2.4, 1.6, 24),
                "CalcKinematicsForElems": OperatingPoint(2.4, 1.8, 24),
                "CalcQForElems": OperatingPoint(2.4, 1.7, 24),
                "ApplyMaterialPropertiesForElems": OperatingPoint(2.4, 1.7, 20),
            },
        )
        return compare_static_dynamic(
            "Lulesh",
            OperatingPoint(2.4, 1.6, 24),
            tmm,
            cluster=cluster,
            runs=3,
        )

    def test_both_strategies_save_energy(self, lulesh_savings):
        s = lulesh_savings
        assert s.static_job_energy_saving > 0
        assert s.dynamic_job_energy_saving > 0

    def test_cpu_savings_exceed_job_savings(self, lulesh_savings):
        """Blade power dilutes job-energy savings (Table VI pattern)."""
        s = lulesh_savings
        assert s.static_cpu_energy_saving > s.static_job_energy_saving
        assert s.dynamic_cpu_energy_saving > s.dynamic_job_energy_saving

    def test_dynamic_costs_time(self, lulesh_savings):
        assert lulesh_savings.dynamic_time_saving < 0

    def test_overhead_is_negative(self, lulesh_savings):
        """Switching + instrumentation always cost time."""
        assert lulesh_savings.overhead < 0

    def test_rendering(self, lulesh_savings):
        text = reporting.render_savings([lulesh_savings])
        assert "Lulesh" in text and "average" in text

    def test_engines_and_campaign_bit_identical(self, cluster):
        """The row is engine-independent, and the campaign-backed path
        reproduces the in-process loop exactly."""
        from repro.campaign.engine import CampaignEngine

        tmm = TuningModel.from_best_configs(
            "Lulesh", "phase",
            {
                "phase": OperatingPoint(2.5, 2.1, 24),
                "CalcKinematicsForElems": OperatingPoint(2.4, 2.0, 24),
                "CalcQForElems": OperatingPoint(2.5, 2.0, 24),
            },
        )
        static = OperatingPoint(2.4, 2.0, 24)
        rows = {
            engine: compare_static_dynamic(
                "Lulesh", static, tmm, cluster=cluster, runs=2, engine=engine
            )
            for engine in ("auto", "recursive", "replay")
        }
        assert rows["auto"] == rows["recursive"] == rows["replay"]
        via_campaign = compare_static_dynamic(
            "Lulesh", static, tmm, cluster=cluster, runs=2,
            campaign=CampaignEngine(max_workers=0),
        )
        assert via_campaign == rows["auto"]

    def test_many_matches_solo_rows_and_shares_one_campaign_run(
        self, cluster
    ):
        """compare_static_dynamic_many batches every benchmark's four
        variants into one fleet campaign run, each row bit-identical
        to its solo compare_static_dynamic call."""
        from repro import api
        from repro.analysis.savings import (
            SavingsCase,
            compare_static_dynamic_many,
        )
        from repro.campaign.engine import CampaignEngine

        def case(benchmark):
            app = registry.build(benchmark)
            best = {"phase": OperatingPoint(2.5, 2.1, 24)}
            for child in app.phase.children[:2]:
                best[child.name] = OperatingPoint(2.4, 2.0, 24)
            return SavingsCase(
                benchmark=benchmark,
                static_config=OperatingPoint(2.4, 2.0, 24),
                tuning_model=TuningModel.from_best_configs(
                    benchmark, "phase", best
                ),
            )

        cases = [case("Lulesh"), case("EP")]
        engine = CampaignEngine(max_workers=0)
        options = api.ExecutionOptions(campaign=engine, cluster=cluster)
        rows = compare_static_dynamic_many(
            cases, runs=2, options=options
        )
        assert engine.total_executed > 0
        solo = [
            compare_static_dynamic(
                c.benchmark, c.static_config, c.tuning_model,
                cluster=cluster, runs=2,
            )
            for c in cases
        ]
        assert rows == solo
        # without a campaign engine, the cases run one at a time and
        # still produce identical rows
        plain = compare_static_dynamic_many(
            cases, runs=2, options=api.ExecutionOptions(cluster=cluster)
        )
        assert plain == solo

    def test_unknown_engine_rejected(self, cluster):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="unknown engine"):
            compare_static_dynamic(
                "Lulesh", OperatingPoint(2.4, 1.6, 24),
                TuningModel.from_best_configs(
                    "Lulesh", "phase", {"phase": OperatingPoint(2.4, 1.6, 24)}
                ),
                cluster=cluster, runs=1, engine="warp",
            )

    def test_campaign_topology_mismatch_rejected(self, cluster):
        from repro.campaign.engine import CampaignEngine
        from repro.errors import CampaignError
        from repro.hardware.topology import NodeTopology

        with pytest.raises(CampaignError, match="topology"):
            compare_static_dynamic(
                "Lulesh", OperatingPoint(2.4, 1.6, 24),
                TuningModel.from_best_configs(
                    "Lulesh", "phase", {"phase": OperatingPoint(2.4, 1.6, 24)}
                ),
                cluster=cluster, runs=1,
                campaign=CampaignEngine(topology=NodeTopology.build(1, 8)),
            )


class TestTuningTime:
    def test_exhaustive_dwarfs_model_based(self, cluster):
        cmp = tuning_time_comparison("Mcb", cluster=cluster)
        assert cmp.exhaustive_time_s > 100 * cmp.model_based_run_time_s
        assert cmp.phase_exploitation_speedup > 1.0

    def test_formula_matches_paper(self, cluster):
        cmp = tuning_time_comparison("Mcb", cluster=cluster, num_regions=5)
        e = cmp.estimate
        assert e.exhaustive_runs == 5 * 4 * 14 * 18
        assert e.model_based_experiments == 14

    def test_rendering(self, cluster):
        text = reporting.render_tuning_time(tuning_time_comparison("Mcb", cluster=cluster))
        assert "exhaustive" in text


class TestTradeoffs:
    def test_default_point_is_reference(self, cluster):
        points = energy_time_tradeoff(
            "EP",
            [OperatingPoint(1.2, 1.3, 24)],
            cluster=cluster,
        )
        default = [p for p in points if p.configuration == OperatingPoint()][0]
        assert default.relative_time == pytest.approx(1.0)
        assert default.relative_energy == pytest.approx(1.0)

    def test_low_frequency_trades_time_for_energy(self, cluster):
        """Memory-bound code: lower CF costs time but saves energy."""
        points = energy_time_tradeoff(
            "Mcb", [OperatingPoint(1.6, 2.5, 20)], cluster=cluster
        )
        slow = [p for p in points if p.configuration.core_freq_ghz == 1.6][0]
        assert slow.relative_time > 1.0
        assert slow.relative_energy < 1.0

    def test_extreme_downclock_wastes_energy_on_compute_bound(self, cluster):
        """EP at minimum frequencies: static power dominates the stretched
        run time, so energy rises — the reason interior optima exist."""
        points = energy_time_tradeoff(
            "EP", [OperatingPoint(1.2, 1.3, 24)], cluster=cluster
        )
        slow = [p for p in points if p.configuration.core_freq_ghz == 1.2][0]
        assert slow.relative_time > 1.5
        assert slow.relative_energy > 1.0

    def test_pareto_front_is_nondominated(self, cluster):
        points = energy_time_tradeoff(
            "EP",
            [
                OperatingPoint(cf, ucf, 24)
                for cf in (1.2, 1.8, 2.4)
                for ucf in (1.3, 2.0)
            ],
            cluster=cluster,
        )
        front = pareto_front(points)
        assert front
        for a in front:
            assert not any(
                b.relative_time <= a.relative_time
                and b.relative_energy <= a.relative_energy
                and b.pareto_key != a.pareto_key
                for b in points
            )


class TestRosterRendering:
    def test_table2(self):
        text = reporting.render_roster(registry.roster())
        assert "NPB-3.3" in text and "BEM4I" in text

    def test_region_configs(self):
        text = reporting.render_region_configs(
            "Lulesh", {"CalcQForElems": OperatingPoint(2.5, 2.0, 24)}
        )
        assert "CalcQForElems" in text
