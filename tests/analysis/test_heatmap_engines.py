"""Heatmap analysis satellites: plateau vectorization, tolerant
frequency lookups, and the campaign-backed grid measurement."""

import numpy as np
import pytest

from repro import config
from repro.analysis.heatmap import PLATEAU_THRESHOLD, EnergyHeatmap, energy_heatmap
from repro.campaign.engine import CampaignEngine
from repro.campaign.store import ResultStore
from repro.errors import CampaignError
from repro.hardware.cluster import Cluster
from repro.hardware.topology import NodeTopology
from repro.util.validation import frequency_index


def synthetic_heatmap(selected=None):
    cfs = config.CORE_FREQUENCIES_GHZ
    ucfs = config.UNCORE_FREQUENCIES_GHZ
    grid = 1.0 + 0.01 * (
        np.arange(len(cfs))[:, None] + np.arange(len(ucfs))[None, :]
    )
    grid[3, 5] = 0.9  # the optimum
    grid[3, 6] = 0.905
    grid[4, 5] = 0.917
    return EnergyHeatmap(
        benchmark="X",
        threads=24,
        core_frequencies=cfs,
        uncore_frequencies=ucfs,
        normalized=grid,
        selected=selected,
    )


def reference_plateau(heatmap, threshold=PLATEAU_THRESHOLD):
    """The historical nested-loop implementation."""
    limit = heatmap.best_value * (1.0 + threshold)
    out = []
    for i, cf in enumerate(heatmap.core_frequencies):
        for j, ucf in enumerate(heatmap.uncore_frequencies):
            if heatmap.normalized[i, j] <= limit:
                out.append((cf, ucf))
    return out


class TestPlateau:
    def test_matches_loop_reference_row_major(self):
        heatmap = synthetic_heatmap()
        assert heatmap.plateau() == reference_plateau(heatmap)
        assert heatmap.plateau(0.5) == reference_plateau(heatmap, 0.5)

    def test_plateau_contains_best_first_cells(self):
        heatmap = synthetic_heatmap()
        plateau = heatmap.plateau()
        assert heatmap.best in plateau
        assert plateau == sorted(plateau)  # row-major == sorted pairs here

    def test_selected_within_plateau(self):
        best_cf, best_ucf = synthetic_heatmap().best
        assert synthetic_heatmap(selected=(best_cf, best_ucf)).selected_within_plateau()
        assert not synthetic_heatmap(selected=(2.5, 3.0)).selected_within_plateau()
        assert not synthetic_heatmap().selected_within_plateau()


class TestFrequencyLookups:
    def test_value_at_tolerates_float_dust(self):
        heatmap = synthetic_heatmap()
        exact = heatmap.value_at(1.5, 2.0)
        assert heatmap.value_at(1.5 + 1e-12, 2.0 - 1e-12) == exact
        assert heatmap.value_at(0.9 + 0.6, 2.0) == exact  # 1.4999999...

    def test_unknown_frequency_named_in_error(self):
        heatmap = synthetic_heatmap()
        with pytest.raises(ValueError, match="9.9 GHz.*core-frequency"):
            heatmap.value_at(9.9, 2.0)
        with pytest.raises(ValueError, match="0.2 GHz.*uncore-frequency"):
            heatmap.value_at(1.5, 0.2)

    def test_frequency_index_helper(self):
        axis = config.CORE_FREQUENCIES_GHZ
        assert frequency_index(axis, 1.2) == 0
        assert frequency_index(axis, 2.5) == len(axis) - 1
        assert frequency_index(axis, 1.2000000001) == 0
        with pytest.raises(ValueError, match="frequency axis"):
            frequency_index(axis, 5.0)
        with pytest.raises(ValueError):
            frequency_index((), 1.2, axis="empty")


class TestCampaignHeatmap:
    def test_campaign_rows_cache_and_match(self, tmp_path):
        cluster = Cluster(2)
        engine = CampaignEngine(
            store=ResultStore(tmp_path / "store.jsonl"), max_workers=0
        )
        direct = energy_heatmap("EP", threads=24, cluster=cluster)
        cached = energy_heatmap(
            "EP", threads=24, cluster=cluster, campaign=engine
        )
        assert np.array_equal(direct.normalized, cached.normalized)
        executed = engine.total_executed
        assert executed == len(config.CORE_FREQUENCIES_GHZ)  # one per row
        again = energy_heatmap(
            "EP", threads=24, cluster=cluster, campaign=engine
        )
        assert engine.total_executed == executed  # all rows recalled
        assert np.array_equal(again.normalized, direct.normalized)

    def test_topology_mismatch_rejected(self):
        engine = CampaignEngine(topology=NodeTopology.build(1, 8))
        with pytest.raises(CampaignError, match="topology"):
            energy_heatmap(
                "EP", threads=24, cluster=Cluster(2), campaign=engine
            )

    def test_loop_engine_with_campaign_rejected(self):
        with pytest.raises(CampaignError, match="sweep engine"):
            energy_heatmap(
                "EP", threads=24, engine="loop", campaign=CampaignEngine()
            )
