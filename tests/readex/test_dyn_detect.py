"""Tests for readex-dyn-detect and the READEX config file."""

import pytest

from repro import config
from repro.errors import WorkloadError
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.node import ComputeNode
from repro.readex.config_file import ReadexConfig
from repro.readex.dyn_detect import readex_dyn_detect
from repro.scorep.profile import ProfileCollector
from repro.workloads import registry


def detect(name: str) -> ReadexConfig:
    app = registry.build(name)
    node = ComputeNode(0)
    node.set_frequencies(
        config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
    )
    collector = ProfileCollector(app.name)
    ExecutionSimulator(node).run(app, listeners=(collector,))
    return readex_dyn_detect(app, collector.profile())


class TestDynDetect:
    def test_lulesh_has_five_significant_regions(self):
        cfg = detect("Lulesh")
        assert sorted(cfg.significant_names) == sorted(
            [
                "IntegrateStressForElems",
                "CalcFBHourglassForceForElems",
                "CalcKinematicsForElems",
                "CalcQForElems",
                "ApplyMaterialPropertiesForElems",
            ]
        )

    def test_mcb_has_five_significant_regions(self):
        cfg = detect("Mcb")
        assert sorted(cfg.significant_names) == sorted(
            ["setupDT", "advPhoton", "omp parallel:423",
             "omp parallel:501", "omp parallel:642"]
        )

    def test_tiny_regions_not_significant(self):
        cfg = detect("Lulesh")
        assert "CalcTimeConstraintsForElems" not in cfg.significant_names

    def test_all_significant_regions_exceed_threshold(self):
        for name in registry.TEST_BENCHMARKS:
            cfg = detect(name)
            assert cfg.significant_regions, name
            for region in cfg.significant_regions:
                assert region.mean_time_s > config.SIGNIFICANT_REGION_THRESHOLD_S

    def test_phase_iterations_recorded(self):
        app = registry.build("Lulesh")
        cfg = detect("Lulesh")
        assert cfg.phase_iterations == app.phase_iterations

    def test_bad_threshold_rejected(self):
        app = registry.build("EP")
        collector = ProfileCollector(app.name)
        ExecutionSimulator(ComputeNode(0)).run(app, listeners=(collector,))
        with pytest.raises(WorkloadError):
            readex_dyn_detect(app, collector.profile(), threshold_s=-1)


class TestConfigFile:
    def test_json_roundtrip(self, tmp_path):
        cfg = detect("Lulesh")
        path = cfg.save(tmp_path / "readex_config.json")
        clone = ReadexConfig.load(path)
        assert clone.significant_names == cfg.significant_names
        assert clone.thread_lower_bound == cfg.thread_lower_bound
        assert clone.phase_region == cfg.phase_region

    def test_malformed_json_rejected(self):
        with pytest.raises(WorkloadError):
            ReadexConfig.from_json('{"application": "x"}')

    def test_thread_bounds_validated(self):
        with pytest.raises(WorkloadError):
            ReadexConfig(
                app_name="x",
                phase_region="phase",
                phase_iterations=1,
                significant_regions=(),
                thread_lower_bound=0,
            )
