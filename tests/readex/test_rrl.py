"""Tests for scenarios, the tuning model and the RRL."""

import pytest

from repro import config
from repro.errors import RRLError, TuningModelError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.hardware.node import ComputeNode
from repro.readex.pcp import CpuFreqPlugin, OpenMPTPlugin, UncoreFreqPlugin
from repro.readex.rrl import RRL, StaticController
from repro.readex.scenario import Scenario, classify_scenarios
from repro.readex.tuning_model import TMM_PATH_ENV, TuningModel
from repro.workloads import registry


def lulesh_tmm() -> TuningModel:
    best = {
        "phase": OperatingPoint(2.5, 2.1, 24),
        "IntegrateStressForElems": OperatingPoint(2.5, 2.0, 24),
        "CalcFBHourglassForceForElems": OperatingPoint(2.5, 2.0, 24),
        "CalcKinematicsForElems": OperatingPoint(2.4, 2.0, 24),
        "CalcQForElems": OperatingPoint(2.5, 2.0, 24),
        "ApplyMaterialPropertiesForElems": OperatingPoint(2.4, 2.0, 20),
    }
    return TuningModel.from_best_configs("Lulesh", "phase", best)


class TestScenarios:
    def test_identical_configs_grouped(self):
        best = {
            "a": OperatingPoint(2.5, 2.0, 24),
            "b": OperatingPoint(2.5, 2.0, 24),
            "c": OperatingPoint(1.6, 2.3, 20),
        }
        scenarios = classify_scenarios(best)
        assert len(scenarios) == 2
        grouped = {s.regions for s in scenarios}
        assert ("a", "b") in grouped

    def test_empty_input_rejected(self):
        with pytest.raises(TuningModelError):
            classify_scenarios({})

    def test_empty_scenario_rejected(self):
        with pytest.raises(TuningModelError):
            Scenario(0, OperatingPoint(), ())


class TestTuningModel:
    def test_lookup(self):
        tmm = lulesh_tmm()
        cfg = tmm.configuration_for("CalcKinematicsForElems")
        assert cfg == OperatingPoint(2.4, 2.0, 24)
        assert tmm.configuration_for("unknown") is None

    def test_scenario_count_reflects_grouping(self):
        tmm = lulesh_tmm()
        # 6 regions but only 4 distinct configurations
        assert len(tmm.scenarios) == 4

    def test_json_roundtrip(self, tmp_path):
        tmm = lulesh_tmm()
        path = tmm.save(tmp_path / "tmm.json")
        clone = TuningModel.load(path)
        assert clone.tuned_regions == tmm.tuned_regions
        assert clone.configuration_for("CalcQForElems") == tmm.configuration_for(
            "CalcQForElems"
        )

    def test_load_from_env(self, tmp_path, monkeypatch):
        path = lulesh_tmm().save(tmp_path / "tmm.json")
        monkeypatch.setenv(TMM_PATH_ENV, str(path))
        assert TuningModel.load_from_env().app_name == "Lulesh"

    def test_load_from_env_unset_rejected(self, monkeypatch):
        monkeypatch.delenv(TMM_PATH_ENV, raising=False)
        with pytest.raises(TuningModelError):
            TuningModel.load_from_env()

    def test_malformed_json_rejected(self):
        with pytest.raises(TuningModelError):
            TuningModel.from_json("{}")

    def test_duplicate_region_rejected(self):
        with pytest.raises(TuningModelError):
            TuningModel(
                app_name="x",
                phase_region="phase",
                scenarios=(
                    Scenario(0, OperatingPoint(2.5, 3.0, 24), ("r",)),
                    Scenario(1, OperatingPoint(2.4, 3.0, 24), ("r",)),
                ),
            )


class TestPCPs:
    def test_cpu_freq_plugin(self):
        node = ComputeNode(0)
        CpuFreqPlugin().apply(node, 1.8)
        assert node.core_freq_ghz == 1.8

    def test_uncore_freq_plugin(self):
        node = ComputeNode(0)
        UncoreFreqPlugin().apply(node, 2.2)
        assert node.uncore_freq_ghz == 2.2

    def test_openmp_plugin_validates_range(self):
        node = ComputeNode(0)
        plugin = OpenMPTPlugin()
        assert plugin.apply(node, 16) == 16
        with pytest.raises(RRLError):
            plugin.apply(node, 0)
        with pytest.raises(RRLError):
            plugin.apply(node, 25)


class TestRRL:
    def test_rrl_switches_configs_during_run(self):
        app = registry.build("Lulesh")
        node = ComputeNode(0)
        rrl = RRL(lulesh_tmm())
        result = ExecutionSimulator(node).run(
            app, controller=rrl, instrumented=True
        )
        assert rrl.stats.scenario_hits > 0
        assert rrl.stats.frequency_switches > 0
        assert result.switching_time_s > 0

    def test_rrl_applies_region_configuration(self):
        app = registry.build("Lulesh")
        node = ComputeNode(0)
        rrl = RRL(lulesh_tmm())
        captured = {}

        class Spy:
            def on_enter(self, region, iteration, time_s):
                if region.name == "CalcKinematicsForElems":
                    captured["cf"] = node.core_freq_ghz
                    captured["ucf"] = node.uncore_freq_ghz

            def on_exit(self, region, iteration, time_s, metrics):
                pass

        ExecutionSimulator(node).run(app, controller=rrl, listeners=(Spy(),))
        assert captured["cf"] == 2.4
        assert captured["ucf"] == 2.0

    def test_rrl_saves_energy_vs_default(self):
        app = registry.build("Mcb")
        best = {
            "phase": OperatingPoint(1.6, 2.5, 20),
            "setupDT": OperatingPoint(1.6, 2.5, 20),
            "advPhoton": OperatingPoint(1.6, 2.6, 20),
            "omp parallel:423": OperatingPoint(1.6, 2.5, 20),
            "omp parallel:501": OperatingPoint(1.7, 2.4, 20),
            "omp parallel:642": OperatingPoint(1.6, 2.5, 20),
        }
        tmm = TuningModel.from_best_configs("Mcb", "phase", best)
        default = ExecutionSimulator(ComputeNode(0)).run(app)
        tuned = ExecutionSimulator(ComputeNode(0)).run(
            app, controller=RRL(tmm), instrumented=True
        )
        assert tuned.node_energy_j < default.node_energy_j
        assert tuned.time_s > default.time_s  # dynamic tuning costs time

    def test_scenario_grouping_avoids_redundant_switches(self):
        """Regions in one scenario switch only when entered from another."""
        app = registry.build("Lulesh")
        rrl = RRL(lulesh_tmm())
        ExecutionSimulator(ComputeNode(0)).run(app, controller=rrl)
        # Far fewer hardware switches than region enters with scenarios.
        assert rrl.stats.frequency_switches < rrl.stats.scenario_hits

    def test_static_controller_applies_once(self):
        app = registry.build("EP")
        node = ComputeNode(0)
        controller = StaticController(OperatingPoint(2.4, 1.3, 24))
        result = ExecutionSimulator(node).run(app, controller=controller)
        assert node.core_freq_ghz == 2.4
        assert node.uncore_freq_ghz == 1.3
        # one switch at start only
        assert result.switching_time_s <= (
            config.DVFS_TRANSITION_LATENCY_S + config.UFS_TRANSITION_LATENCY_S
        ) * 1.001
