"""Tests for the ground-truth power model."""

import pytest
from hypothesis import given, strategies as st

from repro import config
from repro.hardware.power import NodeVariability, PowerModel


@pytest.fixture
def model() -> PowerModel:
    return PowerModel(NodeVariability.nominal())


class TestPowerMonotonicity:
    def test_core_power_increases_with_frequency(self, model):
        p = [
            model.core_dynamic_power_w(f, 24, 1.0)
            for f in config.CORE_FREQUENCIES_GHZ
        ]
        assert all(a < b for a, b in zip(p, p[1:]))

    def test_core_power_scales_with_threads(self, model):
        p12 = model.core_dynamic_power_w(2.0, 12, 1.0)
        p24 = model.core_dynamic_power_w(2.0, 24, 1.0)
        assert p24 == pytest.approx(2 * p12)

    def test_stalled_cores_draw_less(self, model):
        busy = model.core_dynamic_power_w(2.0, 24, 1.0)
        stalled = model.core_dynamic_power_w(2.0, 24, config.STALLED_CORE_ACTIVITY)
        assert stalled < busy

    def test_uncore_power_increases_with_frequency(self, model):
        p = [
            model.uncore_dynamic_power_w(f, 0.8)
            for f in config.UNCORE_FREQUENCIES_GHZ
        ]
        assert all(a < b for a, b in zip(p, p[1:]))

    def test_uncore_idle_floor(self, model):
        idle = model.uncore_dynamic_power_w(3.0, 0.0)
        busy = model.uncore_dynamic_power_w(3.0, 1.0)
        assert idle == pytest.approx(busy * config.UNCORE_IDLE_ACTIVITY)

    def test_dram_power_proportional_to_traffic(self, model):
        base = model.dram_power_w(0.0)
        loaded = model.dram_power_w(100.0)
        assert loaded - base == pytest.approx(100.0 * config.DRAM_POWER_W_PER_GBS)


class TestBreakdown:
    def test_node_power_is_sum_of_parts(self, model):
        b = model.power(
            core_freq_ghz=2.5,
            uncore_freq_ghz=3.0,
            active_threads=24,
            core_activity=1.0,
            uncore_activity=1.0,
            membw_gbs=60.0,
        )
        assert b.node_w == pytest.approx(
            b.static_w + b.core_dynamic_w + b.uncore_dynamic_w + b.dram_w + b.blade_w
        )

    def test_rapl_excludes_blade(self, model):
        b = model.power(
            core_freq_ghz=2.5,
            uncore_freq_ghz=3.0,
            active_threads=24,
            core_activity=1.0,
            uncore_activity=1.0,
            membw_gbs=60.0,
        )
        assert b.cpu_w < b.node_w
        assert b.node_w - b.cpu_w >= config.BLADE_POWER_W

    def test_full_load_node_power_plausible(self, model):
        """A loaded Haswell node draws a few hundred watts, not kW or mW."""
        b = model.power(
            core_freq_ghz=2.5,
            uncore_freq_ghz=3.0,
            active_threads=24,
            core_activity=1.0,
            uncore_activity=1.0,
            membw_gbs=60.0,
        )
        assert 200.0 < b.node_w < 500.0

    def test_idle_power_below_loaded(self, model):
        idle = model.idle_power(2.5, 3.0)
        b = model.power(
            core_freq_ghz=2.5,
            uncore_freq_ghz=3.0,
            active_threads=24,
            core_activity=1.0,
            uncore_activity=1.0,
            membw_gbs=60.0,
        )
        assert idle.node_w < b.node_w

    def test_invalid_thread_count_rejected(self, model):
        with pytest.raises(ValueError):
            model.power(
                core_freq_ghz=2.0,
                uncore_freq_ghz=2.0,
                active_threads=25,
                core_activity=1.0,
                uncore_activity=1.0,
                membw_gbs=0.0,
            )

    def test_invalid_activity_rejected(self, model):
        with pytest.raises(ValueError):
            model.core_dynamic_power_w(2.0, 24, 1.5)


class TestVariability:
    def test_sample_is_deterministic(self):
        a = NodeVariability.sample(7)
        b = NodeVariability.sample(7)
        assert a == b

    def test_different_nodes_differ(self):
        assert NodeVariability.sample(1) != NodeVariability.sample(2)

    def test_seed_changes_sample(self):
        assert NodeVariability.sample(1, seed=1) != NodeVariability.sample(1, seed=2)

    def test_factors_near_unity(self):
        for node_id in range(50):
            v = NodeVariability.sample(node_id)
            assert 0.7 < v.static_factor < 1.45
            assert 0.7 < v.dynamic_factor < 1.45

    @given(st.integers(min_value=0, max_value=1000))
    def test_variability_always_positive(self, node_id):
        v = NodeVariability.sample(node_id)
        assert v.static_factor > 0 and v.dynamic_factor > 0
