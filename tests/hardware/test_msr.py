"""Tests for the simulated MSR register file and msr-tools wrappers."""

import pytest

from repro.errors import MSRError
from repro.hardware.msr import (
    MSR,
    MSRRegisterFile,
    RAPL_ESU,
    ghz_of_ratio,
    ratio_of_ghz,
)
from repro.hardware.msr_tools import rdmsr, rdmsr_all, wrmsr, wrmsr_all


@pytest.fixture
def regfile() -> MSRRegisterFile:
    return MSRRegisterFile(num_cores=24, num_sockets=2, cores_per_socket=12)


class TestRatioEncoding:
    def test_roundtrip_all_core_frequencies(self):
        for f in [1.2, 1.3, 2.0, 2.4, 2.5, 3.0]:
            assert ghz_of_ratio(ratio_of_ghz(f)) == f

    def test_ratio_is_bus_clock_multiples(self):
        assert ratio_of_ghz(2.5) == 25
        assert ratio_of_ghz(1.2) == 12


class TestRegisterFile:
    def test_unknown_register_rejected(self, regfile):
        with pytest.raises(MSRError, match="unknown MSR"):
            regfile.read(0, 0xDEAD)

    def test_unknown_cpu_rejected(self, regfile):
        with pytest.raises(MSRError, match="no such cpu"):
            regfile.read(99, MSR.IA32_PERF_CTL)

    def test_core_scope_registers_are_per_core(self, regfile):
        regfile.write(3, MSR.IA32_PERF_CTL, 0x1900)
        assert regfile.read(3, MSR.IA32_PERF_CTL) == 0x1900
        assert regfile.read(4, MSR.IA32_PERF_CTL) == 0

    def test_package_scope_registers_alias_across_cores(self, regfile):
        regfile.write(0, MSR.MSR_UNCORE_RATIO_LIMIT, 0x1E1E)
        # Any core of socket 0 sees the value; socket 1 does not.
        assert regfile.read(11, MSR.MSR_UNCORE_RATIO_LIMIT) == 0x1E1E
        assert regfile.read(12, MSR.MSR_UNCORE_RATIO_LIMIT) == 0

    def test_read_only_registers_reject_writes(self, regfile):
        for addr in (MSR.IA32_PERF_STATUS, MSR.MSR_PKG_ENERGY_STATUS,
                     MSR.MSR_DRAM_ENERGY_STATUS, MSR.MSR_RAPL_POWER_UNIT):
            with pytest.raises(MSRError, match="read-only"):
                regfile.write(0, addr, 1)

    def test_hw_set_bypasses_write_protection(self, regfile):
        regfile.hw_set(0, MSR.MSR_PKG_ENERGY_STATUS, 42)
        assert regfile.read(0, MSR.MSR_PKG_ENERGY_STATUS) == 42

    def test_value_out_of_64bit_range_rejected(self, regfile):
        with pytest.raises(MSRError, match="64-bit"):
            regfile.write(0, MSR.IA32_PERF_CTL, 1 << 64)
        with pytest.raises(MSRError, match="64-bit"):
            regfile.write(0, MSR.IA32_PERF_CTL, -1)

    def test_rapl_power_unit_exposes_esu(self, regfile):
        unit = regfile.read(0, MSR.MSR_RAPL_POWER_UNIT)
        assert (unit >> 8) & 0x1F == RAPL_ESU

    def test_inconsistent_topology_rejected(self):
        with pytest.raises(MSRError):
            MSRRegisterFile(num_cores=20, num_sockets=2, cores_per_socket=12)


class TestMsrTools:
    def test_rdmsr_wrmsr_accept_hex_strings(self, regfile):
        wrmsr(regfile, 0, "0x199", "0x1800")
        assert rdmsr(regfile, 0, "0x199") == 0x1800

    def test_rdmsr_all_returns_one_value_per_cpu(self, regfile):
        values = rdmsr_all(regfile, MSR.IA32_PERF_CTL)
        assert len(values) == 24

    def test_wrmsr_all_writes_every_cpu(self, regfile):
        wrmsr_all(regfile, MSR.IA32_PERF_CTL, 0x1400)
        assert all(v == 0x1400 for v in rdmsr_all(regfile, MSR.IA32_PERF_CTL))
