"""Tests for DVFS/UFS controllers and the x86_adapt wrapper."""

import pytest

from repro import config
from repro.errors import FrequencyError, HardwareError
from repro.hardware.frequency import quantize_frequency
from repro.hardware.node import ComputeNode
from repro.hardware.x86_adapt import X86AdaptKnob


@pytest.fixture
def node() -> ComputeNode:
    return ComputeNode(0)


class TestQuantize:
    def test_on_grid_unchanged(self):
        assert quantize_frequency(2.4) == 2.4

    def test_snaps_to_nearest_step(self):
        assert quantize_frequency(2.44) == 2.4
        assert quantize_frequency(2.46) == 2.5

    def test_float_noise_does_not_leak(self):
        assert quantize_frequency(0.1 + 0.2) == 0.3


class TestDVFS:
    def test_default_frequency(self, node):
        assert node.core_freq_ghz == config.DEFAULT_CORE_FREQ_GHZ

    def test_set_all_cores(self, node):
        node.dvfs.set_all(1.8)
        assert node.core_freq_ghz == 1.8
        for core in node.topology.all_core_ids():
            assert node.dvfs.get_frequency(core) == 1.8

    def test_per_core_setting(self, node):
        node.dvfs.set_frequency(0, 1.2)
        assert node.dvfs.get_frequency(0) == 1.2
        assert node.dvfs.get_frequency(1) == config.DEFAULT_CORE_FREQ_GHZ

    def test_mixed_frequencies_detected(self, node):
        node.dvfs.set_frequency(0, 1.2)
        with pytest.raises(FrequencyError, match="mixed"):
            node.core_freq_ghz

    def test_out_of_range_rejected(self, node):
        with pytest.raises(FrequencyError):
            node.dvfs.set_frequency(0, 1.1)
        with pytest.raises(FrequencyError):
            node.dvfs.set_frequency(0, 2.6)

    def test_boundary_frequencies_accepted(self, node):
        assert node.dvfs.set_frequency(0, config.CORE_FREQ_MIN_GHZ) == 1.2
        assert node.dvfs.set_frequency(0, config.CORE_FREQ_MAX_GHZ) == 2.5

    def test_transitions_logged_with_latency(self, node):
        node.dvfs.log.clear()
        node.dvfs.set_all(2.0)
        assert node.dvfs.log.count == node.topology.num_cores
        expected = node.topology.num_cores * config.DVFS_TRANSITION_LATENCY_S
        assert node.dvfs.log.total_latency_s == pytest.approx(expected)

    def test_no_op_transition_not_logged(self, node):
        node.dvfs.log.clear()
        node.dvfs.set_all(config.DEFAULT_CORE_FREQ_GHZ)
        assert node.dvfs.log.count == 0


class TestUFS:
    def test_default_frequency(self, node):
        assert node.uncore_freq_ghz == config.DEFAULT_UNCORE_FREQ_GHZ

    def test_set_per_socket(self, node):
        node.ufs.set_frequency(0, 1.5)
        assert node.ufs.get_frequency(0) == 1.5
        assert node.ufs.get_frequency(1) == config.DEFAULT_UNCORE_FREQ_GHZ

    def test_out_of_range_rejected(self, node):
        with pytest.raises(FrequencyError):
            node.ufs.set_frequency(0, 1.2)
        with pytest.raises(FrequencyError):
            node.ufs.set_frequency(0, 3.1)

    def test_transition_latency_per_socket(self, node):
        node.ufs.log.clear()
        node.ufs.set_all(2.0)
        assert node.ufs.log.count == 2
        assert node.ufs.log.total_latency_s == pytest.approx(
            2 * config.UFS_TRANSITION_LATENCY_S
        )

    def test_ratio_roundtrip_through_msr(self, node):
        node.ufs.set_all(2.1)
        assert node.uncore_freq_ghz == 2.1


class TestX86Adapt:
    def test_pstate_knob_sets_core_frequency(self, node):
        node.x86_adapt.set_setting(5, X86AdaptKnob.INTEL_TARGET_PSTATE, 14)
        assert node.dvfs.get_frequency(5) == 1.4

    def test_uncore_knob_sets_socket_frequency(self, node):
        node.x86_adapt.set_setting(1, X86AdaptKnob.INTEL_UNCORE_RATIO, 22)
        assert node.ufs.get_frequency(1) == 2.2

    def test_get_setting_roundtrip(self, node):
        node.x86_adapt.set_setting(0, X86AdaptKnob.INTEL_TARGET_PSTATE, 20)
        assert node.x86_adapt.get_setting(0, X86AdaptKnob.INTEL_TARGET_PSTATE) == 20

    def test_out_of_range_knob_value_rejected(self, node):
        with pytest.raises(HardwareError):
            node.x86_adapt.set_setting(0, X86AdaptKnob.INTEL_TARGET_PSTATE, 26)

    def test_knob_range_matches_platform(self, node):
        assert node.x86_adapt.knob_range(X86AdaptKnob.INTEL_TARGET_PSTATE) == (12, 25)
        assert node.x86_adapt.knob_range(X86AdaptKnob.INTEL_UNCORE_RATIO) == (13, 30)
