"""Tests for RAPL counters, HDEEM monitor, ComputeNode and Cluster."""

import pytest

from repro import config
from repro.errors import HardwareError, JobError
from repro.hardware.cluster import Cluster
from repro.hardware.hdeem import HdeemMonitor
from repro.hardware.msr import MSRRegisterFile
from repro.hardware.node import ComputeNode
from repro.hardware.rapl import (
    RAPL_ENERGY_UNIT_J,
    RaplAccumulator,
    RaplDomain,
    RaplReader,
)


@pytest.fixture
def regfile():
    return MSRRegisterFile(num_cores=24, num_sockets=2, cores_per_socket=12)


class TestRapl:
    def test_deposit_appears_in_reader(self, regfile):
        acc = RaplAccumulator(regfile, 0, 12)
        reader = RaplReader(regfile, 2, 12)
        reader.read_joules(0, RaplDomain.PACKAGE)  # baseline
        acc.deposit(RaplDomain.PACKAGE, 123.0)
        total = reader.read_joules(0, RaplDomain.PACKAGE)
        assert total == pytest.approx(123.0, abs=2 * RAPL_ENERGY_UNIT_J)

    def test_sub_unit_deposits_accumulate(self, regfile):
        acc = RaplAccumulator(regfile, 0, 12)
        reader = RaplReader(regfile, 2, 12)
        tiny = RAPL_ENERGY_UNIT_J / 10
        for _ in range(100):
            acc.deposit(RaplDomain.DRAM, tiny)
        total = reader.read_joules(0, RaplDomain.DRAM)
        assert total == pytest.approx(100 * tiny, abs=2 * RAPL_ENERGY_UNIT_J)

    def test_wraparound_unwrapped_by_reader(self, regfile):
        acc = RaplAccumulator(regfile, 0, 12)
        reader = RaplReader(regfile, 2, 12)
        near_wrap = ((1 << 32) - 100) * RAPL_ENERGY_UNIT_J
        acc.deposit(RaplDomain.PACKAGE, near_wrap)
        first = reader.read_joules(0, RaplDomain.PACKAGE)
        acc.deposit(RaplDomain.PACKAGE, 200 * RAPL_ENERGY_UNIT_J)  # crosses wrap
        second = reader.read_joules(0, RaplDomain.PACKAGE)
        assert second > first
        assert second - first == pytest.approx(
            200 * RAPL_ENERGY_UNIT_J, abs=2 * RAPL_ENERGY_UNIT_J
        )

    def test_negative_deposit_rejected(self, regfile):
        acc = RaplAccumulator(regfile, 0, 12)
        with pytest.raises(HardwareError):
            acc.deposit(RaplDomain.PACKAGE, -1.0)

    def test_energy_unit_read_from_msr(self, regfile):
        reader = RaplReader(regfile, 2, 12)
        assert reader.energy_unit_j == pytest.approx(RAPL_ENERGY_UNIT_J)

    def test_cpu_energy_sums_domains_and_sockets(self, regfile):
        reader = RaplReader(regfile, 2, 12)
        reader.read_cpu_energy_joules()
        for s in (0, 1):
            acc = RaplAccumulator(regfile, s, 12)
            acc.deposit(RaplDomain.PACKAGE, 10.0)
            acc.deposit(RaplDomain.DRAM, 5.0)
        assert reader.read_cpu_energy_joules() == pytest.approx(30.0, rel=1e-3)


class TestHdeem:
    def test_measurement_integrates_power(self):
        mon = HdeemMonitor(0)
        mon.start()
        mon.advance(1.0, 300.0)
        m = mon.stop()
        # Start delay eats 5 ms of the window.
        expected = (1.0 - config.HDEEM_MEASUREMENT_DELAY_S) * 300.0
        assert m.energy_j == pytest.approx(expected, rel=0.02)

    def test_sample_count_reflects_rate(self):
        mon = HdeemMonitor(0)
        mon.start()
        mon.advance(0.5, 250.0)
        m = mon.stop()
        assert m.samples == pytest.approx(
            (0.5 - config.HDEEM_MEASUREMENT_DELAY_S) * config.HDEEM_SAMPLE_RATE_HZ,
            abs=2,
        )

    def test_double_start_rejected(self):
        mon = HdeemMonitor(0)
        mon.start()
        with pytest.raises(HardwareError):
            mon.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(HardwareError):
            HdeemMonitor(0).stop()

    def test_mean_power_consistent(self):
        mon = HdeemMonitor(0)
        mon.start()
        mon.advance(2.0, 321.0)
        m = mon.stop()
        assert m.mean_power_w == pytest.approx(321.0, rel=0.02)

    def test_multi_segment_integration(self):
        mon = HdeemMonitor(0)
        mon.advance(1.0, 100.0)  # before window: not counted
        mon.start()
        mon.advance(1.0, 200.0)
        mon.advance(1.0, 400.0)
        m = mon.stop()
        expected = (1.0 - config.HDEEM_MEASUREMENT_DELAY_S) * 200.0 + 400.0
        assert m.energy_j == pytest.approx(expected, rel=0.02)

    def test_noise_is_deterministic_per_measurement(self):
        def run():
            mon = HdeemMonitor(3)
            mon.start()
            mon.advance(1.0, 300.0)
            return mon.stop().energy_j

        assert run() == run()


class TestComputeNode:
    def test_advance_charges_all_meters(self):
        node = ComputeNode(0)
        node.rapl.read_cpu_energy_joules()  # baseline
        node.hdeem.start()
        b = node.compute_power(
            active_threads=24, core_activity=1.0, uncore_activity=0.5, membw_gbs=30.0
        )
        node.advance(2.0, b)
        hdeem = node.hdeem.stop()
        cpu_j = node.rapl.read_cpu_energy_joules()
        assert hdeem.energy_j > cpu_j > 0  # node energy > CPU energy

    def test_set_frequencies_convenience(self):
        node = ComputeNode(0)
        node.set_frequencies(1.8, 2.2)
        assert node.core_freq_ghz == 1.8
        assert node.uncore_freq_ghz == 2.2

    def test_reset_to_default(self):
        node = ComputeNode(0)
        node.set_frequencies(1.2, 1.3)
        node.reset_to_default()
        assert node.core_freq_ghz == config.DEFAULT_CORE_FREQ_GHZ
        assert node.uncore_freq_ghz == config.DEFAULT_UNCORE_FREQ_GHZ

    def test_time_advances(self):
        node = ComputeNode(0)
        node.advance_idle(1.5)
        assert node.now_s == pytest.approx(1.5)

    def test_negative_advance_rejected(self):
        node = ComputeNode(0)
        with pytest.raises(HardwareError):
            node.advance_idle(-1.0)


class TestCluster:
    def test_nodes_are_cached(self):
        cluster = Cluster(4)
        assert cluster.node(2) is cluster.node(2)

    def test_fresh_node_resets_meters_keeps_physics(self):
        cluster = Cluster(4)
        node = cluster.node(1)
        var = node.power_model.variability
        node.advance_idle(5.0)
        fresh = cluster.fresh_node(1)
        assert fresh.now_s == 0.0
        assert fresh.power_model.variability == var

    def test_round_robin_allocation(self):
        cluster = Cluster(3)
        ids = [cluster.allocate().node_id for _ in range(6)]
        assert ids == [0, 1, 2, 0, 1, 2]

    def test_out_of_range_node_rejected(self):
        with pytest.raises(JobError):
            Cluster(2).node(5)

    def test_different_nodes_have_different_power(self):
        cluster = Cluster(8)
        draws = set()
        for i in range(8):
            b = cluster.node(i).compute_power(
                active_threads=24, core_activity=1.0, uncore_activity=1.0, membw_gbs=50.0
            )
            draws.add(round(b.node_w, 6))
        assert len(draws) == 8  # variability separates every node
