"""The documentation suite exists and every intra-repo reference resolves.

Runs the same checker the CI docs job uses (``scripts/check_doc_links.py``)
and exercises its failure modes on synthetic documents.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_doc_links.py"

spec = importlib.util.spec_from_file_location("check_doc_links", CHECKER)
check_doc_links = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_doc_links)


def test_documentation_suite_exists():
    for doc in ("README.md", "docs/workflow.md", "docs/architecture.md",
                "docs/cli.md"):
        assert (REPO_ROOT / doc).exists(), doc


def test_checker_passes_on_repo_docs():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_checker_flags_dead_references(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "A [dead link](missing.md), a dead path `src/repro/nope.py`,\n"
        "a dead module `repro.no_such_module`, and a dead attribute\n"
        "`repro.util.rng.rng_for_everything`.\n"
    )
    errors = check_doc_links.check_document(doc)
    assert len(errors) == 4


def test_checker_accepts_valid_references(tmp_path):
    doc = tmp_path / "good.md"
    doc.write_text(
        "Module `repro.campaign.engine`, attribute chain\n"
        "`repro.execution.simulator.ExecutionSimulator.run`, path\n"
        "`src/repro/util/rng.py`, glob `benchmarks/bench_*.py`,\n"
        "and external [link](https://example.com).\n"
    )
    assert check_doc_links.check_document(doc) == []
