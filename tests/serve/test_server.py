"""Live-server integration: real sockets, concurrent clients, SIGTERM.

The in-process tests bind a :class:`TuningServer` to an ephemeral port
and speak actual HTTP/1.1 over asyncio streams; the subprocess test
runs ``python -m repro.serve.server`` end to end and asserts the
documented drain contract (SIGTERM → responses still delivered →
exit code 130).
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.serve.schema import WIRE_VERSION
from repro.serve.server import DRAIN_EXIT_CODE, TuningServer
from repro.serve.service import TuningService


async def http(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    data = b"" if body is None else json.dumps(body).encode("utf-8")
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(data)}\r\n\r\n"
    ).encode("ascii") + data
    writer.write(request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(payload)


class TestLiveServer:
    def test_concurrent_clients_coalesce_and_match_offline(self):
        async def scenario():
            service = TuningService(max_batch=8, max_wait_s=0.05)
            server = TuningServer(service, port=0)
            host, port = await server.start()
            payloads = [
                {
                    "version": WIRE_VERSION,
                    "benchmark": "EP",
                    "stride": 7,
                    "objective": objective,
                }
                for objective in ("energy", "edp", "ed2p")
            ]
            responses = await asyncio.gather(
                *(http(host, port, "POST", "/v1/tune", p) for p in payloads)
            )
            _, metrics = await http(host, port, "GET", "/metrics")
            _, health = await http(host, port, "GET", "/healthz")
            await server.aclose()
            return payloads, responses, metrics, health

        payloads, responses, metrics, health = asyncio.run(scenario())
        assert health == {"status": "ok", "draining": False}
        assert metrics["coalesced"] >= 1
        for payload, (status, envelope) in zip(payloads, responses):
            assert status == 200
            offline = api.tune(
                api.TuningRequest(
                    "EP", stride=7, objective=payload["objective"]
                )
            )
            assert envelope["result"] == offline.payload()

    def test_http_error_mapping(self):
        async def scenario():
            service = TuningService(max_wait_s=0.0)
            server = TuningServer(service, port=0)
            host, port = await server.start()
            results = {
                "bad_version": await http(
                    host, port, "POST", "/v1/tune",
                    {"version": 99, "benchmark": "EP"},
                ),
                "bad_value": await http(
                    host, port, "POST", "/v1/tune",
                    {"version": WIRE_VERSION, "benchmark": "NoSuch"},
                ),
                "not_json": None,
                "no_route": await http(host, port, "GET", "/nope"),
                "wrong_method": await http(host, port, "GET", "/v1/tune"),
            }
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /v1/tune HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            results["not_json"] = int(raw.split()[1])
            await server.aclose()
            return results

        results = asyncio.run(scenario())
        assert results["bad_version"][0] == 400
        assert results["bad_value"][0] == 400
        assert results["bad_value"][1]["error"]["code"] == "bad-value"
        assert results["not_json"] == 400
        assert results["no_route"][0] == 404
        assert results["wrong_method"][0] == 405


class TestSubprocessDrain:
    # real process, real SIGTERM: runs with the chaos suite, like the
    # campaign drain tests
    @pytest.mark.chaos
    def test_sigterm_drains_and_exits_130(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(_repo_src()), env.get("PYTHONPATH", "")])
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.server",
                "--port",
                "0",
                "--max-wait-ms",
                "10",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving on http://"), banner
            port = int(banner.rsplit(":", 1)[1])

            async def one_request():
                return await http(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/tune",
                    {"version": WIRE_VERSION, "benchmark": "EP", "stride": 7},
                )

            status, envelope = asyncio.run(one_request())
            assert status == 200
            offline = api.tune(api.TuningRequest("EP", stride=7))
            assert envelope["result"] == offline.payload()

            process.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + 30
            while process.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            assert process.poll() == DRAIN_EXIT_CODE, process.stderr.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()


def _repo_src():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)), "src")
