"""Wire-schema tests: round-trips, shape errors, semantic errors."""

import pytest

from repro import config
from repro.api import TuningRequest
from repro.errors import SchemaError, TuningError
from repro.serve.schema import (
    ERROR_CODES,
    WIRE_VERSION,
    error_response,
    ok_response,
    parse_request,
    request_payload,
)


def wire(**overrides):
    payload = {"version": WIRE_VERSION, "benchmark": "EP"}
    payload.update(overrides)
    return payload


class TestParseRequest:
    def test_minimal_request_fills_defaults(self):
        request = parse_request(wire())
        assert request.benchmark == "EP"
        assert request.threads is None
        assert request.objective == "energy"
        assert request.tmm is None
        assert request.stride == 1
        assert request.node_id == 0
        assert request.seed == config.DEFAULT_SEED

    def test_round_trip_through_request_payload(self):
        request = parse_request(
            wire(threads=12, objective="edp", stride=3, node_id=1, seed=7)
        )
        assert parse_request(request_payload(request)) == request

    def test_round_trip_preserves_every_field(self):
        request = TuningRequest(
            "Lulesh", threads=12, objective="ed2p", stride=2, node_id=1, seed=9
        )
        assert parse_request(request_payload(request)) == request

    def test_non_object_payload_rejected(self):
        with pytest.raises(SchemaError, match="JSON object"):
            parse_request([wire()])

    def test_missing_version_rejected(self):
        with pytest.raises(SchemaError, match="version"):
            parse_request({"benchmark": "EP"})

    def test_wrong_version_rejected(self):
        with pytest.raises(SchemaError, match="unsupported wire version"):
            parse_request(wire(version=WIRE_VERSION + 1))

    def test_missing_benchmark_rejected(self):
        with pytest.raises(SchemaError, match="benchmark"):
            parse_request({"version": WIRE_VERSION})

    def test_unknown_field_rejected_and_named(self):
        with pytest.raises(SchemaError, match="objectve"):
            parse_request(wire(objectve="energy"))

    @pytest.mark.parametrize(
        "field, value",
        [
            ("threads", "24"),
            ("threads", True),
            ("objective", 3),
            ("tmm", 1),
            ("stride", 1.5),
            ("node_id", None),
            ("seed", "42"),
        ],
    )
    def test_wrong_types_rejected(self, field, value):
        with pytest.raises(SchemaError, match=field):
            parse_request(wire(**{field: value}))

    def test_semantic_errors_are_tuning_errors(self):
        with pytest.raises(TuningError):
            parse_request(wire(benchmark="NoSuchBench"))
        with pytest.raises(TuningError):
            parse_request(wire(objective="nope"))
        with pytest.raises(TuningError):
            parse_request(wire(stride=0))


class TestResponses:
    def test_error_response_shape(self):
        envelope = error_response("bad-request", "nope")
        assert envelope == {
            "version": WIRE_VERSION,
            "status": "error",
            "error": {"code": "bad-request", "message": "nope"},
        }

    def test_unknown_error_code_rejected(self):
        with pytest.raises(SchemaError, match="unknown error code"):
            error_response("not-a-code", "x")

    @pytest.mark.parametrize("code", ERROR_CODES)
    def test_every_declared_code_usable(self, code):
        assert error_response(code, "m")["error"]["code"] == code

    def test_ok_response_wraps_answer_payload(self):
        from repro import api

        answer = api.tune(api.TuningRequest("EP", stride=7))
        envelope = ok_response(answer, meta={"coalesced": 2})
        assert envelope["version"] == WIRE_VERSION
        assert envelope["status"] == "ok"
        assert envelope["result"] == answer.payload()
        assert envelope["meta"] == {"coalesced": 2}
