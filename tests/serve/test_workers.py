"""Worker-pool tests: parallel dispatch, dedup, fallback, drain, crashes.

Everything here must hold on a single-core machine: concurrency is
asserted *structurally* (a fault-injected delay pins one group to one
worker while a later-submitted group overtakes it — impossible on the
serial executor, deterministic on the pool because the delayed worker
is sleeping), never via wall-clock speedups.
"""

import asyncio
import json
import os
import signal

import pytest

from repro import api
from repro.campaign.engine import topology_job_key
from repro.campaign.store import ResultStore
from repro.serve import batcher as batching
from repro.serve import workers as pooling
from repro.serve.batcher import PendingGroup
from repro.serve.schema import WIRE_VERSION, request_payload
from repro.serve.service import TuningService


def run(coro):
    return asyncio.run(coro)


def payload_for(benchmark, *, objective="energy", seed=42, stride=7):
    return {
        "version": WIRE_VERSION,
        "benchmark": benchmark,
        "objective": objective,
        "seed": seed,
        "stride": stride,
    }


def store_snapshot(service, requests):
    """Every stored grid row of ``requests``, keyed, as canonical JSON."""
    store = service.engine.store
    snapshot = {}
    for request in requests:
        jobs, _, _ = service._grid_jobs(request.resolved())
        for job in jobs:
            key = topology_job_key(job, service.engine.topology)
            snapshot[key] = json.dumps(store.get(key), sort_keys=True)
    return snapshot


async def drive(service, payloads):
    responses = await asyncio.gather(
        *(service.handle(p) for p in payloads)
    )
    metrics = service.metrics_payload()
    await service.aclose()
    return responses, metrics


class TestPooledBitIdentity:
    def test_pooled_responses_and_store_match_serial(self, tmp_path):
        payloads = [
            payload_for("EP"),
            payload_for("EP", objective="edp"),
            payload_for("FT", seed=43),
            payload_for("Lulesh", objective="ed2p", seed=43),
        ]
        requests = [
            api.TuningRequest(
                p["benchmark"],
                objective=p["objective"],
                seed=p["seed"],
                stride=p["stride"],
            )
            for p in payloads
        ]

        async def scenario(store_path, workers):
            service = TuningService(
                store=ResultStore(store_path),
                max_batch=16,
                max_wait_s=0.01,
                workers=workers,
                warm=("EP",),
            )
            responses, metrics = await drive(service, payloads)
            return service, responses, metrics

        serial_service, serial, _ = run(
            scenario(tmp_path / "serial.sqlite", 1)
        )
        pooled_service, pooled, metrics = run(
            scenario(tmp_path / "pooled.sqlite", 2)
        )
        assert pooled_service.workers == 2
        assert pooled_service.pool_fallback is None
        for p, s, request in zip(pooled, serial, requests):
            assert p["status"] == "ok", p
            assert p["result"] == s["result"]
            assert p["result"] == api.tune(request).payload()
        # store keys and payloads are byte-identical across modes
        assert store_snapshot(
            pooled_service, requests
        ) == store_snapshot(serial_service, requests)
        # the pool really executed (and reports its gauges)
        pool = metrics["worker_pool"]
        assert pool["workers"] == 2
        assert pool["groups_executed"] >= 1
        assert sum(pool["groups_per_worker"].values()) == (
            pool["groups_executed"]
        )

    def test_storeless_pool_answers_bit_identically(self):
        async def scenario():
            service = TuningService(max_wait_s=0.01, workers=2)
            return await drive(
                service, [payload_for("EP"), payload_for("FT", seed=43)]
            )

        responses, metrics = run(scenario())
        assert [r["status"] for r in responses] == ["ok", "ok"]
        assert responses[0]["result"] == api.tune(
            api.TuningRequest("EP", stride=7, seed=42)
        ).payload()
        assert metrics["worker_pool"]["workers"] == 2


class TestConcurrentDedup:
    def test_identical_racing_requests_execute_once(self, tmp_path):
        payload = payload_for("EP")

        async def scenario():
            service = TuningService(
                store=ResultStore(tmp_path / "dedup.sqlite"),
                max_wait_s=0.01,
                workers=2,
            )
            responses = await asyncio.gather(
                *(service.handle(dict(payload)) for _ in range(6))
            )
            metrics = service.metrics_payload()
            await service.aclose()
            return responses, metrics

        responses, metrics = run(scenario())
        bodies = {json.dumps(r, sort_keys=True) for r in responses}
        assert len(bodies) == 1  # every racer got the same envelope
        assert responses[0]["status"] == "ok"
        # one admission, five in-flight joins, one group on the pool
        assert metrics["admitted"] == 1
        assert metrics["inflight_joins"] == 5
        assert metrics["worker_pool"]["groups_executed"] == 1


class TestStructuralConcurrency:
    def test_later_group_overtakes_a_stalled_worker(
        self, tmp_path, monkeypatch
    ):
        # Pin EP's fleet shard to a 2.5 s in-worker delay.  On the
        # serial executor FT (submitted second) could never finish
        # first; on the pool it must, because EP only occupies one of
        # the two workers.
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            json.dumps(
                [
                    {
                        "action": "delay",
                        "stage": "execute",
                        "app": "EP",
                        "mode": "fleet",
                        "delay_s": 2.5,
                        "attempts": "all",
                    }
                ]
            ),
        )

        async def scenario():
            service = TuningService(
                store=ResultStore(tmp_path / "overtake.sqlite"),
                coalesce="grid",
                max_wait_s=0.01,
                workers=2,
            )
            slow = asyncio.ensure_future(
                service.handle(payload_for("EP"))
            )
            await asyncio.sleep(0.2)  # EP's group is dispatched first
            fast = asyncio.ensure_future(
                service.handle(payload_for("FT", seed=43))
            )
            done, pending = await asyncio.wait(
                {slow, fast}, return_when=asyncio.FIRST_COMPLETED
            )
            first_done = done.pop()
            responses = await asyncio.gather(slow, fast)
            await service.aclose()
            return first_done is fast, responses

        fast_won, responses = run(scenario())
        assert fast_won, "FT should complete while EP is still delayed"
        assert [r["status"] for r in responses] == ["ok", "ok"]
        assert responses[0]["result"] == api.tune(
            api.TuningRequest("EP", stride=7, seed=42)
        ).payload()


class TestFallback:
    def test_jsonl_store_falls_back_to_serial(self, tmp_path):
        async def scenario():
            service = TuningService(
                store=ResultStore(tmp_path / "fb.jsonl"),
                max_wait_s=0.01,
                workers=4,
            )
            fallback = (service.workers, service.pool_fallback)
            responses, metrics = await drive(
                service, [payload_for("EP")]
            )
            return fallback, responses, metrics

        (workers, reason), responses, metrics = run(scenario())
        assert workers == 1
        assert "concurrent writers" in reason
        assert responses[0]["status"] == "ok"
        assert responses[0]["result"] == api.tune(
            api.TuningRequest("EP", stride=7, seed=42)
        ).payload()
        pool = metrics["worker_pool"]
        assert pool["workers"] == 1
        assert pool["fallback"] == reason
        assert pool["groups_per_worker"] == {"in-process": 1}

    def test_in_memory_store_falls_back(self):
        reason = pooling.pool_supported(ResultStore())
        assert reason is not None and "in-memory" in reason


class TestDrainDeadline:
    def test_deadline_cancels_queued_group_with_draining_error(
        self, monkeypatch
    ):
        real = batching.answer_group

        def slow_answer_group(requests, options=None):
            import time

            time.sleep(0.8)
            return real(requests, options)

        monkeypatch.setattr(batching, "answer_group", slow_answer_group)

        async def scenario():
            # grid coalescing + distinct seeds -> two groups; the serial
            # executor starts the first and queues the second behind it.
            service = TuningService(coalesce="grid", max_wait_s=0.01)
            first = asyncio.ensure_future(
                service.handle(payload_for("EP"))
            )
            second = asyncio.ensure_future(
                service.handle(payload_for("EP", seed=43))
            )
            await asyncio.sleep(0.2)  # both groups fired, first running
            await service.drain(deadline_s=0.2)
            responses = await asyncio.gather(first, second)
            metrics = service.metrics_payload()
            await service.aclose()
            return responses, metrics

        (first, second), metrics = run(scenario())
        assert first["status"] == "ok"
        assert second["status"] == "error"
        assert second["error"]["code"] == "draining"
        assert "drain deadline" in second["error"]["message"]
        assert metrics["drain_cancelled"] == 1

    def test_default_drain_finishes_everything(self):
        async def scenario():
            service = TuningService(max_batch=100, max_wait_s=60.0)
            pending = asyncio.ensure_future(
                service.handle(payload_for("EP"))
            )
            await asyncio.sleep(0.05)
            await service.drain()  # default deadline, nothing cancelled
            response = await pending
            await service.aclose()
            return response, service.metrics.drain_cancelled

        response, cancelled = run(scenario())
        assert response["status"] == "ok"
        assert cancelled == 0


class TestSplitGroup:
    def _group(self, requests):
        group = PendingGroup(key=("fleet",), deadline=1.0)
        for i, request in enumerate(requests):
            group.requests.append(request.resolved())
            group.tickets.append(i)
        return group

    def test_split_preserves_requests_and_grid_key_cohesion(self):
        requests = [
            api.TuningRequest("EP", stride=7),
            api.TuningRequest("EP", objective="edp", stride=7),
            api.TuningRequest("FT", stride=7, seed=43),
            api.TuningRequest("Lulesh", stride=7, seed=44),
        ]
        group = self._group(requests)
        parts = batching.split_group(group, 2)
        assert len(parts) == 2
        flattened = [r for part in parts for r in part.requests]
        assert sorted(
            (r.benchmark, r.objective) for r in flattened
        ) == sorted((r.benchmark, r.objective) for r in group.requests)
        # requests sharing a grid key stay in one part
        for part in parts:
            keys = [r.grid_key() for r in part.requests]
            for key in keys:
                others = [
                    p for p in parts if p is not part and
                    key in [r.grid_key() for r in p.requests]
                ]
                assert not others
        # tickets stay aligned with their requests
        for part in parts:
            assert len(part.tickets) == len(part.requests)

    def test_split_noop_for_small_groups_or_one_part(self):
        requests = [api.TuningRequest("EP", stride=7)]
        group = self._group(requests)
        assert batching.split_group(group, 4) == [group]
        group2 = self._group(
            [
                api.TuningRequest("EP", stride=7),
                api.TuningRequest("FT", stride=7),
            ]
        )
        assert batching.split_group(group2, 1) == [group2]


class TestWarm:
    def test_warm_process_is_idempotent(self):
        pooling.warm_process(("EP",))
        assert "EP" in pooling._WARMED
        pooling.warm_process(("EP",))  # no error, no re-warm


@pytest.mark.chaos
class TestWorkerCrash:
    def test_sigkilled_worker_mid_group_retries_bit_identically(
        self, tmp_path, monkeypatch
    ):
        # Hold EP's shard in an in-worker delay long enough to SIGKILL
        # the whole pool mid-group; the service must respawn, re-run the
        # group, and still answer bit-identically (re-execution cannot
        # change an answer: noise streams are keyed, not process-bound).
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            json.dumps(
                [
                    {
                        "action": "delay",
                        "stage": "execute",
                        "app": "EP",
                        "mode": "fleet",
                        "delay_s": 2.0,
                        "attempts": "all",
                    }
                ]
            ),
        )

        async def scenario():
            service = TuningService(
                store=ResultStore(tmp_path / "crash.sqlite"),
                max_wait_s=0.01,
                workers=2,
            )
            pending = asyncio.ensure_future(
                service.handle(payload_for("EP"))
            )
            await asyncio.sleep(0.6)  # group is on a worker, delayed
            for pid in list(service._pool._executor._processes):
                os.kill(pid, signal.SIGKILL)
            response = await pending
            generation = service._pool.generation
            await service.aclose()
            return response, generation

        response, generation = run(scenario())
        assert generation >= 1, "the pool should have respawned"
        assert response["status"] == "ok"
        assert response["result"] == api.tune(
            api.TuningRequest("EP", stride=7, seed=42)
        ).payload()


def test_request_payload_roundtrip_matches_wire():
    request = api.TuningRequest("EP", stride=7)
    assert request_payload(request)["benchmark"] == "EP"
