"""Request-lifecycle tests: dedup, coalescing, quarantine, drain.

The service is asyncio-native; each test spins its own loop via
``asyncio.run`` (no pytest-asyncio in the container) and drives
:meth:`TuningService.handle` directly — transport-free, exactly like
the throughput benchmark.
"""

import asyncio
import json

import pytest

from repro import api
from repro.campaign.engine import qualified_descriptor, topology_job_key
from repro.campaign.resilience import FailureRecord, failure_descriptor
from repro.campaign.store import ResultStore, job_key
from repro.errors import SchemaError
from repro.serve.schema import WIRE_VERSION
from repro.serve.service import TuningService

EP = {"version": WIRE_VERSION, "benchmark": "EP", "stride": 7}


def run(coro):
    return asyncio.run(coro)


def failure_record_for(service, request, *, message="boom"):
    """A persisted FailureRecord for the first grid row of ``request``."""
    jobs, _, _ = service._grid_jobs(request.resolved())
    topology = service.engine.topology
    descriptor = failure_descriptor(qualified_descriptor(jobs[0], topology))
    record = FailureRecord(
        job_store_key=topology_job_key(jobs[0], topology),
        app=request.benchmark,
        mode="grid",
        error_type="InjectedFault",
        error_message=message,
        kind="deterministic",
        attempts=1,
    )
    service.engine.store.put(job_key(descriptor), descriptor, record.payload())


class TestLifecycle:
    def test_coalesced_responses_bit_identical_to_offline(self):
        async def scenario():
            service = TuningService(max_batch=8, max_wait_s=0.05)
            payloads = [
                dict(EP, objective=objective)
                for objective in ("energy", "edp", "ed2p")
            ]
            responses = await asyncio.gather(
                *(service.handle(p) for p in payloads)
            )
            await service.aclose()
            return service, payloads, responses

        service, payloads, responses = run(scenario())
        assert service.batcher.coalesced == 2
        assert service.batcher.groups_fired == 1
        for payload, response in zip(payloads, responses):
            assert response["status"] == "ok"
            assert response["meta"] == {"cached": False, "coalesced": 2}
            offline = api.tune(
                api.TuningRequest(
                    "EP", stride=7, objective=payload["objective"]
                )
            )
            assert response["result"] == offline.payload()

    def test_cross_benchmark_requests_coalesce_into_one_group(self):
        """The service's default fleet coalescing merges requests for
        *different* benchmarks into one group — one fleet-kernel pass —
        with responses bit-identical to their offline answers."""
        async def scenario():
            service = TuningService(max_batch=8, max_wait_s=0.05)
            payloads = [
                dict(EP),
                {"version": WIRE_VERSION, "benchmark": "FT", "stride": 7},
            ]
            responses = await asyncio.gather(
                *(service.handle(p) for p in payloads)
            )
            await service.aclose()
            return service, responses

        service, responses = run(scenario())
        assert service.batcher.coalesced == 1
        assert service.batcher.groups_fired == 1
        for benchmark, response in zip(("EP", "FT"), responses):
            assert response["status"] == "ok"
            offline = api.tune(api.TuningRequest(benchmark, stride=7))
            assert response["result"] == offline.payload()

    def test_responses_are_json_serialisable(self):
        async def scenario():
            service = TuningService(max_wait_s=0.0)
            response = await service.handle(dict(EP))
            await service.aclose()
            return response

        response = run(scenario())
        assert json.loads(json.dumps(response)) == response

    def test_exact_duplicates_join_inflight_future(self):
        async def scenario():
            service = TuningService(max_batch=1, max_wait_s=0.0)
            responses = await asyncio.gather(
                *(service.handle(dict(EP)) for _ in range(3))
            )
            await service.aclose()
            return service, responses

        service, responses = run(scenario())
        assert responses[0] == responses[1] == responses[2]
        assert service.metrics.inflight_joins == 2
        # one sweep total: duplicates joined, they were not re-admitted
        assert service.batcher.admitted == 1

    def test_unbatched_admission_never_coalesces(self):
        async def scenario():
            service = TuningService(admission="unbatched")
            payloads = [
                dict(EP, objective=o) for o in ("energy", "edp", "ed2p")
            ]
            responses = await asyncio.gather(
                *(service.handle(p) for p in payloads)
            )
            await service.aclose()
            return service, responses

        service, responses = run(scenario())
        assert all(r["status"] == "ok" for r in responses)
        assert service.batcher.coalesced == 0
        assert service.batcher.groups_fired == 3

    def test_schema_and_value_errors_map_to_codes(self):
        async def scenario():
            service = TuningService(max_wait_s=0.0)
            bad_shape = await service.handle({"benchmark": "EP"})
            bad_value = await service.handle(
                {"version": WIRE_VERSION, "benchmark": "NoSuch"}
            )
            await service.aclose()
            return bad_shape, bad_value

        bad_shape, bad_value = run(scenario())
        assert bad_shape["error"]["code"] == "bad-request"
        assert bad_value["error"]["code"] == "bad-value"

    def test_unknown_admission_mode_rejected(self):
        with pytest.raises(SchemaError, match="admission"):
            TuningService(admission="sometimes")


class TestStoreDedup:
    def test_second_request_is_a_cached_hit(self):
        async def scenario():
            service = TuningService(store=ResultStore(), max_wait_s=0.0)
            first = await service.handle(dict(EP))
            executed = service.engine.total_executed
            second = await service.handle(dict(EP))
            await service.aclose()
            return service, first, executed, second

        service, first, executed, second = run(scenario())
        assert first["meta"]["cached"] is False
        assert second["meta"]["cached"] is True
        assert second["result"] == first["result"]
        assert service.metrics.cached_hits == 1
        # the cached path never touched the engine
        assert service.engine.total_executed == executed

    def test_results_shadow_stale_failure_records(self):
        """Regression: a FailureRecord left over from a run that later
        succeeded must not quarantine a request whose full answer is in
        the store — result lookups win, as in CampaignEngine.run."""

        async def scenario():
            service = TuningService(store=ResultStore(), max_wait_s=0.0)
            first = await service.handle(dict(EP))
            failure_record_for(service, api.TuningRequest("EP", stride=7))
            stale = await service.handle(dict(EP))
            await service.aclose()
            return first, stale

        first, stale = run(scenario())
        assert first["status"] == "ok"
        assert stale["status"] == "ok", stale
        assert stale["meta"]["cached"] is True
        assert stale["result"] == first["result"]

    def test_failure_record_without_result_quarantines(self):
        async def scenario():
            service = TuningService(store=ResultStore(), max_wait_s=0.0)
            failure_record_for(service, api.TuningRequest("EP", stride=7))
            executed_before = service.engine.total_executed
            response = await service.handle(dict(EP))
            await service.aclose()
            return service, executed_before, response

        service, executed_before, response = run(scenario())
        assert response["status"] == "error"
        assert response["error"]["code"] == "quarantined"
        assert "boom" in response["error"]["message"]
        assert service.engine.total_executed == executed_before
        assert service.metrics.quarantined == 1

    def test_retry_failed_service_executes_quarantined_jobs(self):
        async def scenario():
            store = ResultStore()
            refusing = TuningService(store=store, max_wait_s=0.0)
            failure_record_for(refusing, api.TuningRequest("EP", stride=7))
            refused = await refusing.handle(dict(EP))
            await refusing.aclose()
            retrying = TuningService(
                store=store, retry_failed=True, max_wait_s=0.0
            )
            answered = await retrying.handle(dict(EP))
            await retrying.aclose()
            return refused, answered

        refused, answered = run(scenario())
        assert refused["error"]["code"] == "quarantined"
        assert answered["status"] == "ok"
        offline = api.tune(api.TuningRequest("EP", stride=7))
        assert answered["result"] == offline.payload()


class TestFaultsAndDrain:
    def test_injected_fault_surfaces_as_quarantined_and_persists(
        self, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            json.dumps(
                [
                    {
                        "action": "raise",
                        "mode": "grid",
                        "app": "CG",
                        "attempts": "all",
                    }
                ]
            ),
        )

        async def scenario():
            service = TuningService(store=ResultStore(), max_wait_s=0.0)
            payload = {"version": WIRE_VERSION, "benchmark": "CG", "stride": 7}
            first = await service.handle(payload)
            executed = service.engine.total_executed
            second = await service.handle(payload)
            await service.aclose()
            return service, first, executed, second

        service, first, executed, second = run(scenario())
        assert first["error"]["code"] == "quarantined"
        assert second["error"]["code"] == "quarantined"
        # the persisted FailureRecord answered the duplicate; no re-run
        assert service.engine.total_executed == executed
        assert service.metrics.quarantined == 2

    def test_drain_answers_pending_and_refuses_new(self):
        async def scenario():
            # a window so long only drain can flush the group
            service = TuningService(max_batch=100, max_wait_s=60.0)
            pending = asyncio.create_task(service.handle(dict(EP)))
            await asyncio.sleep(0.02)
            await service.drain()
            answered = await pending
            refused = await service.handle(dict(EP))
            await service.aclose()
            return answered, refused

        answered, refused = run(scenario())
        assert answered["status"] == "ok"
        offline = api.tune(api.TuningRequest("EP", stride=7))
        assert answered["result"] == offline.payload()
        assert refused["error"]["code"] == "draining"
