"""Coalescing-queue invariants and the bit-equality property.

The property that makes the serving layer trustworthy: however
requests are interleaved into the batcher and however the windows
land, every request's coalesced answer equals its solo
:func:`repro.api.tune` answer to the bit.  Hypothesis drives the
admission orders; the solo answers are computed once per request
identity and memoised.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import api
from repro.errors import CampaignError
from repro.execution import fleet_replay
from repro.serve.batcher import FLEET_KEY, CoalescingBatcher, answer_group

#: The request universe for the property: small grids (stride 7 keeps
#: 3 x 3 cells), two seeds, every objective.  Identities are distinct
#: but several share a grid key — exactly the coalescing case.
UNIVERSE = [
    api.TuningRequest("EP", stride=7, seed=seed, objective=objective)
    for seed in (0, 7)
    for objective in ("energy", "edp", "ed2p")
]

_SOLO_CACHE: dict[api.TuningRequest, dict] = {}


def solo_payload(request: api.TuningRequest) -> dict:
    if request not in _SOLO_CACHE:
        _SOLO_CACHE[request] = api.tune(request).payload()
    return _SOLO_CACHE[request]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCoalescingBatcher:
    def test_same_grid_key_coalesces(self):
        batcher = CoalescingBatcher(max_batch=4)
        a = api.TuningRequest("EP", stride=7, objective="energy").resolved()
        b = api.TuningRequest("EP", stride=7, objective="edp").resolved()
        _, started_a, fire_a = batcher.admit(a)
        _, started_b, fire_b = batcher.admit(b)
        assert started_a and not started_b
        assert not fire_a and not fire_b
        assert batcher.coalesced == 1
        group = batcher.pop(a.grid_key())
        assert group.requests == [a, b]
        assert group.tickets == [0, 1]

    def test_distinct_grid_keys_do_not_coalesce(self):
        batcher = CoalescingBatcher(max_batch=4)
        batcher.admit(api.TuningRequest("EP", stride=7, seed=0).resolved())
        batcher.admit(api.TuningRequest("EP", stride=7, seed=1).resolved())
        assert batcher.coalesced == 0
        assert len(batcher.due(now=float("inf"))) == 2

    def test_max_batch_fires_immediately(self):
        batcher = CoalescingBatcher(max_batch=2)
        a = api.TuningRequest("EP", stride=7, objective="energy").resolved()
        b = api.TuningRequest("EP", stride=7, objective="edp").resolved()
        assert batcher.admit(a)[2] is False
        assert batcher.admit(b)[2] is True

    def test_window_expiry_via_injected_clock(self):
        clock = FakeClock()
        batcher = CoalescingBatcher(max_batch=8, max_wait_s=0.5, clock=clock)
        request = api.TuningRequest("EP", stride=7).resolved()
        batcher.admit(request)
        assert batcher.due() == []
        assert batcher.next_deadline() == pytest.approx(0.5)
        clock.now = 0.6
        assert batcher.due() == [request.grid_key()]

    def test_pop_is_idempotent(self):
        batcher = CoalescingBatcher()
        request = api.TuningRequest("EP", stride=7).resolved()
        batcher.admit(request)
        assert batcher.pop(request.grid_key()) is not None
        assert batcher.pop(request.grid_key()) is None
        assert batcher.groups_fired == 1

    def test_drain_flushes_everything(self):
        batcher = CoalescingBatcher(max_wait_s=100.0)
        for request in UNIVERSE:
            batcher.admit(request.resolved())
        groups = batcher.drain()
        assert sum(len(g.requests) for g in groups) == len(UNIVERSE)
        assert batcher.pending == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CampaignError):
            CoalescingBatcher(max_batch=0)
        with pytest.raises(CampaignError):
            CoalescingBatcher(max_wait_s=-1.0)
        with pytest.raises(CampaignError, match="coalesce"):
            CoalescingBatcher(coalesce="per-request")


class TestFleetCoalescing:
    """``coalesce="fleet"`` merges *across* grid keys (the service
    default): different benchmarks, seeds and nodes share one pending
    group, priced by a single fleet-kernel invocation."""

    def test_distinct_grid_keys_share_one_group(self):
        batcher = CoalescingBatcher(max_batch=8, coalesce="fleet")
        requests = [
            api.TuningRequest("EP", stride=7, seed=0).resolved(),
            api.TuningRequest("EP", stride=7, seed=1).resolved(),
            api.TuningRequest("FT", stride=7).resolved(),
        ]
        for request in requests:
            assert batcher.key_for(request) == FLEET_KEY
            batcher.admit(request)
        assert batcher.coalesced == 2
        group = batcher.pop(FLEET_KEY)
        assert group is not None and group.requests == requests
        assert batcher.pending == 0

    def test_grid_mode_still_splits_by_grid_key(self):
        batcher = CoalescingBatcher(max_batch=8, coalesce="grid")
        a = api.TuningRequest("EP", stride=7, seed=0).resolved()
        b = api.TuningRequest("FT", stride=7).resolved()
        assert batcher.key_for(a) == a.grid_key()
        batcher.admit(a)
        batcher.admit(b)
        assert batcher.coalesced == 0
        assert len(batcher.due(now=float("inf"))) == 2

    def test_two_apps_one_fleet_invocation_bit_identical(self, monkeypatch):
        """The regression the fleet key exists for: two requests with
        different benchmarks are priced by exactly one fleet-kernel
        pass, and each answer is bit-identical to its solo answer."""
        calls = []
        real_fleet_run = fleet_replay.fleet_run

        def counting_fleet_run(members, **kwargs):
            calls.append(len(members))
            return real_fleet_run(members, **kwargs)

        monkeypatch.setattr(fleet_replay, "fleet_run", counting_fleet_run)
        requests = [
            api.TuningRequest("EP", stride=7).resolved(),
            api.TuningRequest("FT", stride=7).resolved(),
        ]
        answers = answer_group(list(requests))
        assert len(calls) == 1
        # every cell of both benchmarks' grids rode the one invocation
        assert calls[0] == sum(
            len(axis_cfs) * len(axis_ucfs)
            for axis_cfs, axis_ucfs in [api.grid_axes(7)] * 2
        )
        monkeypatch.undo()
        for request, answer in zip(requests, answers):
            assert answer.payload() == api.tune(request).payload()


class TestAnswerGroup:
    def test_empty_group(self):
        assert answer_group([]) == []

    def test_mixed_grid_keys_answered_bit_identically(self):
        """A group spanning grid keys (the fleet-coalesced case) gets
        each member the same answer as its solo ``tune``."""
        requests = [
            api.TuningRequest("EP", stride=7, seed=0).resolved(),
            api.TuningRequest("EP", stride=7, seed=1).resolved(),
        ]
        answers = answer_group(list(requests))
        for request, answer in zip(requests, answers):
            assert answer.payload() == solo_payload(request)

    @given(
        order=st.permutations(range(len(UNIVERSE))),
        max_batch=st.integers(min_value=1, max_value=len(UNIVERSE)),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_admission_order_is_bit_identical_to_solo(
        self, order, max_batch
    ):
        """The tentpole invariant: coalesced == solo, always."""
        batcher = CoalescingBatcher(max_batch=max_batch, max_wait_s=100.0)
        fired: list = []
        for index in order:
            request = UNIVERSE[index].resolved()
            _, _, fire = batcher.admit(request)
            if fire:
                fired.append(batcher.pop(request.grid_key()))
        fired.extend(batcher.drain())
        answered = 0
        for group in fired:
            answers = answer_group(group.requests)
            for request, answer in zip(group.requests, answers):
                assert answer.payload() == solo_payload(request)
                answered += 1
        assert answered == len(UNIVERSE)
