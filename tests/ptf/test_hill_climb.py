"""Tests for the hill-climbing verification extension."""

import pytest

from repro.errors import TuningError
from repro.ptf.search import hill_climb


def quadratic_surface(optimum):
    """Objective with a single minimum at ``optimum``."""

    def evaluate(points):
        return {
            p: (p[0] - optimum[0]) ** 2 + (p[1] - optimum[1]) ** 2
            for p in points
        }

    return evaluate


class TestHillClimb:
    def test_converges_to_adjacent_optimum_in_one_step(self):
        best, n = hill_climb((2.0, 2.0), quadratic_surface((2.1, 2.1)), max_steps=1)
        assert best == (2.1, 2.1)
        assert n <= 9

    def test_recovers_from_multi_step_error(self):
        """The paper's single round cannot reach an optimum two steps
        away; the extension can."""
        single, _ = hill_climb((2.0, 2.0), quadratic_surface((2.3, 1.7)), max_steps=1)
        multi, n = hill_climb((2.0, 2.0), quadratic_surface((2.3, 1.7)), max_steps=4)
        assert single != (2.3, 1.7)
        assert multi == (2.3, 1.7)
        assert n < 14 * 18  # still far below exhaustive

    def test_stops_early_at_interior_minimum(self):
        best, n = hill_climb((2.0, 2.0), quadratic_surface((2.0, 2.0)), max_steps=5)
        assert best == (2.0, 2.0)
        assert n == 9  # one neighborhood, then convergence

    def test_does_not_reevaluate_points(self):
        calls = []

        def evaluate(points):
            calls.extend(points)
            return quadratic_surface((2.5, 3.0))(points)

        hill_climb((2.3, 2.8), evaluate, max_steps=4)
        assert len(calls) == len(set(calls))

    def test_respects_grid_bounds(self):
        best, _ = hill_climb((1.3, 1.4), quadratic_surface((0.0, 0.0)), max_steps=10)
        assert best == (1.2, 1.3)  # clamped at the platform minimum

    def test_invalid_steps_rejected(self):
        with pytest.raises(TuningError):
            hill_climb((2.0, 2.0), quadratic_surface((2.0, 2.0)), max_steps=0)


class TestPluginIntegration:
    def test_extension_finds_at_least_as_good_configs(self):
        """With more climb steps the verified phase configuration's
        measured energy can only improve."""
        from repro.hardware.cluster import Cluster
        from repro.modeling.dataset import build_dataset
        from repro.modeling.training import TrainingConfig, train_network
        from repro.ptf.framework import PeriscopeTuningFramework

        ds = build_dataset(("EP", "CG", "BT", "XSBench"), thread_counts=(24,))
        model = train_network(
            ds.features, ds.targets, config=TrainingConfig(epochs=8)
        )
        cluster = Cluster(4)
        paper = PeriscopeTuningFramework(cluster, model).tune("Lulesh")
        extended = PeriscopeTuningFramework(
            cluster, model, hill_climb_steps=3
        ).tune("Lulesh")
        assert (
            extended.plugin_result.experiments_performed
            >= paper.plugin_result.experiments_performed
        )
        # Both must deliver valid tuned configurations for all regions.
        assert set(extended.plugin_result.region_configurations) == set(
            paper.plugin_result.region_configurations
        )
