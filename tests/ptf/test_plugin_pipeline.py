"""Tests for the experiments engine, the energy plugin and the framework.

A small model trained on a reduced dataset is shared module-wide; the
assertions check workflow structure and qualitative optima, not exact
frequencies (those are benchmark territory).
"""

import pytest

from repro import config
from repro.errors import TuningError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.hardware.cluster import Cluster
from repro.modeling.dataset import build_dataset
from repro.modeling.training import TrainingConfig, train_network
from repro.ptf.energy_plugin import EnergyTuningPlugin
from repro.ptf.exhaustive_plugin import (
    ExhaustiveRegionTuner,
    estimate_tuning_time,
)
from repro.ptf.experiments import ExperimentsEngine
from repro.ptf.framework import PeriscopeTuningFramework
from repro.ptf.static_tuning import exhaustive_static_search
from repro.readex.rrl import RRL
from repro.workloads import registry


@pytest.fixture(scope="module")
def trained_model():
    ds = build_dataset(
        ("EP", "CG", "BT", "XSBench", "FT", "MG", "miniFE", "Blasbench"),
        thread_counts=(12, 24),
    )
    return train_network(ds.features, ds.targets, config=TrainingConfig(epochs=8))


@pytest.fixture(scope="module")
def cluster():
    return Cluster(4)


@pytest.fixture(scope="module")
def lulesh_outcome(trained_model, cluster):
    return PeriscopeTuningFramework(cluster, trained_model).tune("Lulesh")


@pytest.fixture(scope="module")
def mcb_outcome(trained_model, cluster):
    return PeriscopeTuningFramework(cluster, trained_model).tune("Mcb")


class TestExperimentsEngine:
    def test_one_config_per_phase_iteration(self, cluster):
        app = registry.build("EP")
        engine = ExperimentsEngine(cluster)
        points = [
            OperatingPoint(cf, 1.5, 24) for cf in (1.2, 1.6, 2.0, 2.4)
        ]
        measured = engine.evaluate_configurations(app, points)
        assert engine.application_runs == 1  # 4 configs fit in 5 iterations
        assert set(measured) == set(points)

    def test_many_configs_chunk_across_runs(self, cluster):
        app = registry.build("EP")  # 5 phase iterations
        engine = ExperimentsEngine(cluster)
        points = [OperatingPoint(cf, 1.5, 24) for cf in config.CORE_FREQUENCIES_GHZ]
        engine.evaluate_configurations(app, points)
        assert engine.application_runs == 3  # ceil(14 / 5)

    def test_measurements_reflect_configuration(self, cluster):
        app = registry.build("EP")
        engine = ExperimentsEngine(cluster)
        slow = OperatingPoint(1.2, 1.5, 24)
        fast = OperatingPoint(2.5, 1.5, 24)
        measured = engine.evaluate_configurations(app, [slow, fast])
        assert (
            measured[slow]["gaussian_pairs"].time_s
            > measured[fast]["gaussian_pairs"].time_s
        )

    def test_empty_configurations_rejected(self, cluster):
        with pytest.raises(TuningError):
            ExperimentsEngine(cluster).evaluate_configurations(
                registry.build("EP"), []
            )

    def test_schedule_controller_rides_controlled_replay(self, cluster):
        """The predeclared experiment schedule compiles for the
        controlled-replay fast path, bit-identical to the recursion."""
        from repro import config as cfg
        from repro.execution.simulator import ExecutionSimulator
        from repro.ptf.experiments import _ScheduleController

        app = registry.build("Lulesh")
        schedule = [
            OperatingPoint(2.4, 1.7, 24),
            OperatingPoint(1.6, 2.5, 16),
            OperatingPoint(2.0, 1.5, 24),
        ]
        runs = {}
        for fast_path in (None, False):
            node = cluster.fresh_node(0)
            node.set_frequencies(
                cfg.CALIBRATION_CORE_FREQ_GHZ, cfg.CALIBRATION_UNCORE_FREQ_GHZ
            )
            controller = _ScheduleController(list(schedule), app.phase.name)
            runs[fast_path] = ExecutionSimulator(node).run(
                app,
                threads=schedule[0].threads,
                controller=controller,
                instrumented=True,
                run_key=("experiments", (("exhaustive",), 0)),
                fast_path=fast_path,
            )
        assert runs[None].engine == "replay"
        assert runs[None] == runs[False]


class TestEnergyPlugin:
    def test_plugin_requires_initialisation(self, trained_model):
        plugin = EnergyTuningPlugin(trained_model)
        with pytest.raises(TuningError):
            plugin.run_tuning_steps()
        with pytest.raises(TuningError):
            plugin.result

    def test_lulesh_thread_optimum(self, lulesh_outcome):
        assert lulesh_outcome.plugin_result.phase_threads == 24

    def test_mcb_thread_optimum(self, mcb_outcome):
        """Memory-bound code prefers fewer than the maximum threads.

        The paper finds 20; at the calibration point our physics puts the
        optimum at 16/20 (one step) — the qualitative interior optimum is
        what matters.
        """
        assert mcb_outcome.plugin_result.phase_threads in (16, 20)

    def test_prediction_grid_covers_all_frequencies(self, lulesh_outcome):
        grid = lulesh_outcome.plugin_result.predicted_grid
        assert len(grid) == 14 * 18

    def test_lulesh_is_compute_bound_shape(self, lulesh_outcome):
        """High CF, low-mid UCF (Figure 6 trend)."""
        cf, ucf = lulesh_outcome.plugin_result.global_frequencies
        assert cf >= 2.0
        assert ucf <= 2.2

    def test_mcb_is_memory_bound_shape(self, mcb_outcome):
        """Low CF, high UCF (Figure 7 trend)."""
        cf, ucf = mcb_outcome.plugin_result.global_frequencies
        assert cf <= 2.0
        assert ucf >= 1.7
        # The prediction must separate Mcb from a compute-bound shape:
        # UCF above CF-normalised midpoint, unlike Lulesh's low-UCF pick.
        grid = mcb_outcome.plugin_result.predicted_grid
        assert grid[(1.6, 2.5)] < grid[(2.5, 1.3)]

    def test_all_significant_regions_tuned(self, lulesh_outcome):
        configs = lulesh_outcome.plugin_result.region_configurations
        assert sorted(configs) == sorted(
            lulesh_outcome.readex_config.significant_names
        )

    def test_tuning_model_has_scenarios(self, lulesh_outcome):
        tmm = lulesh_outcome.tuning_model
        assert 1 <= len(tmm.scenarios) <= 6
        assert tmm.configuration_for("CalcQForElems") is not None

    def test_search_space_reduction(self, lulesh_outcome):
        """Experiments stay at (k + 9), far below the full product."""
        r = lulesh_outcome.plugin_result
        k = len(config.OPENMP_THREAD_CANDIDATES)
        assert r.experiments_performed <= k + 9
        assert r.experiments_performed < 14 * 18

    def test_region_configs_within_neighborhood(self, lulesh_outcome):
        r = lulesh_outcome.plugin_result
        gcf, gucf = r.global_frequencies
        for cfg in r.region_configurations.values():
            assert abs(cfg.core_freq_ghz - gcf) <= config.FREQ_STEP_GHZ + 1e-9
            assert abs(cfg.uncore_freq_ghz - gucf) <= config.FREQ_STEP_GHZ + 1e-9


class TestRRLIntegration:
    def test_tuned_run_saves_energy(self, mcb_outcome, cluster):
        app = registry.build("Mcb")
        default = ExecutionSimulator(cluster.fresh_node(1)).run(app)
        rrl = RRL(mcb_outcome.tuning_model)
        tuned = ExecutionSimulator(cluster.fresh_node(1)).run(
            app, controller=rrl, instrumented=True
        )
        assert tuned.node_energy_j < default.node_energy_j
        assert tuned.cpu_energy_j < default.cpu_energy_j


class TestStaticTuning:
    def test_static_search_finds_savings(self, cluster):
        app = registry.build("Mcb")
        result = exhaustive_static_search(app, cluster, stride=3)
        assert result.energy_saving > 0.05
        assert result.best.core_freq_ghz < config.DEFAULT_CORE_FREQ_GHZ

    def test_default_config_always_evaluated(self, cluster):
        app = registry.build("EP")
        result = exhaustive_static_search(
            app, cluster, stride=4, thread_counts=(24,)
        )
        assert result.default_energy_j > 0

    def test_bad_stride_rejected(self, cluster):
        with pytest.raises(TuningError):
            exhaustive_static_search(registry.build("EP"), cluster, stride=0)


class TestExhaustiveBaseline:
    def test_tuning_time_formula(self):
        app = registry.build("Mcb")
        est = estimate_tuning_time(app, 60.0, num_regions=5)
        assert est.exhaustive_runs == 5 * 4 * 14 * 18
        assert est.model_based_experiments == 4 + 1 + 9
        assert est.speedup > 100

    def test_exhaustive_tuner_agrees_with_boundedness(self, cluster):
        app = registry.build("Mcb")
        tuner = ExhaustiveRegionTuner(cluster)
        best, engine = tuner.tune(
            app, stride=4, thread_counts=(20,), regions=("advPhoton",)
        )
        cfg = best["advPhoton"]
        assert cfg.core_freq_ghz <= 2.0  # memory bound: low CF
        assert engine.experiments_performed > 9
