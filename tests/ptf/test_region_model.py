"""Tests for the region-level model application (future-work extension)."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.hardware.cluster import Cluster
from repro.modeling.dataset import build_dataset
from repro.modeling.training import TrainingConfig, train_network
from repro.ptf.region_model import RegionModelTuner
from repro.workloads import registry


@pytest.fixture(scope="module")
def tuner():
    ds = build_dataset(
        ("EP", "CG", "BT", "XSBench", "MG", "miniFE", "FT", "Blasbench"),
        thread_counts=(12, 24),
    )
    model = train_network(ds.features, ds.targets, config=TrainingConfig(epochs=10))
    return RegionModelTuner(model, Cluster(4))


class TestRegionRates:
    def test_rates_positive_for_work_regions(self, tuner):
        app = registry.build("Lulesh")
        rates = tuner.measure_region_rates(
            app, ("IntegrateStressForElems", "CalcQForElems")
        )
        for vec in rates.values():
            assert np.all(vec >= 0)
            assert vec.sum() > 0

    def test_unknown_region_rejected(self, tuner):
        app = registry.build("EP")
        with pytest.raises(TuningError):
            tuner.measure_region_rates(app, ("does_not_exist",))

    def test_memory_heavy_region_has_higher_stall_rate(self, tuner):
        """Within miniMD, neighbor_build touches more memory than the
        force kernel — per-region rates must expose that."""
        app = registry.build("miniMD")
        rates = tuner.measure_region_rates(
            app, ("force_compute", "neighbor_build")
        )
        from repro.modeling.dataset import FEATURE_COUNTERS
        stl = FEATURE_COUNTERS.index("PAPI_RES_STL")
        assert rates["neighbor_build"][stl] > rates["force_compute"][stl]


class TestRegionPredictions:
    def test_per_region_tune_returns_all_regions(self, tuner):
        app = registry.build("Lulesh")
        regions = tuple(r.name for r in app.candidate_regions if r.has_work)[:3]
        result = tuner.tune(app, regions)
        assert set(result.region_predictions) == set(regions)
        assert result.phase_prediction.region == "phase"

    def test_empty_region_list_rejected(self, tuner):
        with pytest.raises(TuningError):
            tuner.tune(registry.build("EP"), ())

    def test_homogeneous_app_has_no_outliers(self, tuner):
        """Lulesh's regions are all compute-bound: none should sit far
        from the phase optimum."""
        app = registry.build("Lulesh")
        regions = (
            "IntegrateStressForElems",
            "CalcFBHourglassForceForElems",
            "CalcQForElems",
        )
        result = tuner.tune(app, regions)
        assert len(result.outliers(threshold_ghz=1.0)) == 0

    def test_prediction_orders_boundedness(self, tuner):
        """The predicted surfaces separate memory- from compute-bound
        regions (the signal the future-work extension is after).

        Argmins of nearly-flat surfaces are brittle, so the check
        compares surface *trends*: for the memory-bound region the
        low-CF/high-UCF corner must beat the high-CF/low-UCF corner by
        more than it does for the compute-bound region.
        """
        def corner_gap(app_name: str, region: str) -> float:
            app = registry.build(app_name)
            rates = tuner.measure_region_rates(app, (region,))[region]
            import numpy as np
            mem_corner = tuner._model.predict(
                np.concatenate([rates, [1.6, 2.5]])[None, :]
            )[0]
            cpu_corner = tuner._model.predict(
                np.concatenate([rates, [2.5, 1.4]])[None, :]
            )[0]
            return float(cpu_corner - mem_corner)  # >0 favours memory corner

        mcb_gap = corner_gap("Mcb", "advPhoton")
        ep_gap = corner_gap("EP", "gaussian_pairs")
        assert mcb_gap > ep_gap
        assert mcb_gap > 0  # memory-bound region prefers the memory corner
