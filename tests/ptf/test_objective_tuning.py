"""Tuning under alternative objectives (EDP/ED2P — Section VI outlook).

The experiments engine scalarises measurements through the context's
objective, so the same plugin machinery tunes for energy-delay products;
these tests check the qualitative consequence: delay-weighted objectives
pull the optimum toward higher frequencies.
"""

import pytest

from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.ptf.experiments import ExperimentsEngine
from repro.ptf.objectives import ED2P, EDP, ENERGY
from repro.workloads import registry


@pytest.fixture(scope="module")
def measurements():
    """Mcb phase measurements across a CF sweep at high UCF."""
    engine = ExperimentsEngine(Cluster(2))
    points = [OperatingPoint(cf, 2.5, 20) for cf in (1.2, 1.6, 2.0, 2.5)]
    return engine.evaluate_configurations(registry.build("Mcb"), points)


def argmin_under(measurements, objective):
    best_point, best_value = None, float("inf")
    for point, regions in measurements.items():
        m = regions["phase"]
        value = objective(m.node_energy_j, m.time_s)
        if value < best_value:
            best_point, best_value = point, value
    return best_point


class TestObjectiveTuning:
    def test_energy_prefers_lower_cf_than_edp(self, measurements):
        energy_best = argmin_under(measurements, ENERGY)
        edp_best = argmin_under(measurements, EDP)
        assert edp_best.core_freq_ghz >= energy_best.core_freq_ghz

    def test_ed2p_prefers_highest_cf_of_the_three(self, measurements):
        """ED2P weights delay quadratically: for a memory-bound code the
        time penalty of low CF dominates, pushing toward max frequency."""
        edp_best = argmin_under(measurements, EDP)
        ed2p_best = argmin_under(measurements, ED2P)
        assert ed2p_best.core_freq_ghz >= edp_best.core_freq_ghz

    def test_objectives_disagree_somewhere(self, measurements):
        """Energy and ED2P cannot both pick the lowest frequency."""
        energy_best = argmin_under(measurements, ENERGY)
        ed2p_best = argmin_under(measurements, ED2P)
        assert (
            energy_best.core_freq_ghz < 2.5
            or ed2p_best.core_freq_ghz == 2.5
        )

    def test_plugin_accepts_objective_name(self):
        """The tuning context threads objective names to the plugin."""
        from repro.errors import TuningError
        from repro.ptf.objectives import get_objective

        assert get_objective("edp") is EDP
        with pytest.raises(TuningError):
            get_objective("watts")
