"""Tests for search spaces, neighborhoods and objectives."""

import pytest

from repro import config
from repro.errors import TuningError
from repro.ptf.objectives import ED2P, EDP, ENERGY, get_objective, tco_objective
from repro.ptf.plugin import TuningParameter
from repro.ptf.search import SearchSpace, frequency_space, neighborhood


class TestTuningParameter:
    def test_empty_values_rejected(self):
        with pytest.raises(TuningError):
            TuningParameter("x", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(TuningError):
            TuningParameter("x", (1, 1))

    def test_len(self):
        assert len(TuningParameter("x", (1, 2, 3))) == 3


class TestSearchSpace:
    def test_size_is_product(self):
        space = SearchSpace(
            (TuningParameter("a", (1, 2)), TuningParameter("b", (1, 2, 3)))
        )
        assert space.size == 6
        assert len(space.points()) == 6

    def test_frequency_space_matches_platform(self):
        assert frequency_space().size == 14 * 18

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(TuningError):
            SearchSpace((TuningParameter("a", (1,)), TuningParameter("a", (2,))))

    def test_points_cover_all_combinations(self):
        space = SearchSpace((TuningParameter("a", (1, 2)),))
        assert space.points() == [{"a": 1}, {"a": 2}]


class TestNeighborhood:
    def test_interior_point_has_nine_neighbors(self):
        assert len(neighborhood(2.0, 2.0)) == 9

    def test_corner_point_has_four_neighbors(self):
        assert len(neighborhood(1.2, 1.3)) == 4
        assert len(neighborhood(2.5, 3.0)) == 4

    def test_edge_point_has_six_neighbors(self):
        assert len(neighborhood(1.2, 2.0)) == 6

    def test_neighbors_within_one_step(self):
        for cf, ucf in neighborhood(2.0, 2.0):
            assert abs(cf - 2.0) <= config.FREQ_STEP_GHZ + 1e-9
            assert abs(ucf - 2.0) <= config.FREQ_STEP_GHZ + 1e-9

    def test_off_grid_point_rejected(self):
        with pytest.raises(TuningError):
            neighborhood(2.05, 2.0)


class TestObjectives:
    def test_energy_ignores_time(self):
        assert ENERGY(100.0, 5.0) == 100.0

    def test_edp_and_ed2p(self):
        assert EDP(100.0, 2.0) == 200.0
        assert ED2P(100.0, 2.0) == 400.0

    def test_edp_prefers_faster_at_equal_energy(self):
        assert EDP(100.0, 1.0) < EDP(100.0, 2.0)

    def test_tco_combines_costs(self):
        tco = tco_objective(energy_price_per_joule=2.0, machine_cost_per_second=10.0)
        assert tco(5.0, 3.0) == 5.0 * 2 + 3.0 * 10

    def test_negative_inputs_rejected(self):
        with pytest.raises(TuningError):
            ENERGY(-1.0, 1.0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(TuningError):
            get_objective("speed")

    def test_lookup(self):
        assert get_objective("edp") is EDP
