"""Tests for workload characteristics and derived quantities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.characteristics import CACHE_LINE_BYTES, WorkloadCharacteristics
from repro.workloads.generator import random_characteristics
from repro.util.rng import rng_for


class TestValidation:
    def test_negative_instructions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadCharacteristics(instructions=-1)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            WorkloadCharacteristics(instructions=1e9, load_frac=1.5)

    def test_mix_over_unity_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            WorkloadCharacteristics(
                instructions=1e9,
                load_frac=0.5,
                store_frac=0.4,
                cond_branch_frac=0.2,
            )

    def test_defaults_valid(self):
        WorkloadCharacteristics(instructions=1e9)  # should not raise


class TestDerived:
    def test_cache_miss_chain_monotone(self):
        c = WorkloadCharacteristics(instructions=1e10)
        assert c.data_accesses >= c.l1d_misses >= c.l2d_misses >= c.l3d_misses

    def test_memory_bytes_from_llc_misses(self):
        c = WorkloadCharacteristics(
            instructions=1e10, prefetch_frac=0.0, writeback_frac=0.0
        )
        assert c.memory_bytes == pytest.approx(c.l3d_misses * CACHE_LINE_BYTES)

    def test_writeback_increases_traffic(self):
        lo = WorkloadCharacteristics(instructions=1e10, writeback_frac=0.0)
        hi = WorkloadCharacteristics(instructions=1e10, writeback_frac=0.5)
        assert hi.memory_bytes > lo.memory_bytes

    def test_compute_cycles_inverse_in_ipc(self):
        slow = WorkloadCharacteristics(instructions=1e10, ipc=1.0)
        fast = WorkloadCharacteristics(instructions=1e10, ipc=2.0)
        assert slow.compute_cycles == pytest.approx(2 * fast.compute_cycles)

    def test_scaled_preserves_rates(self):
        c = WorkloadCharacteristics(instructions=1e10)
        d = c.scaled(2.0)
        assert d.instructions == 2e10
        assert d.memory_intensity == pytest.approx(c.memory_intensity)

    def test_with_replaces_fields(self):
        c = WorkloadCharacteristics(instructions=1e10)
        d = c.with_(ipc=2.2)
        assert d.ipc == 2.2 and c.ipc != 2.2

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_characteristics_always_valid(self, idx):
        c = random_characteristics(rng_for("chars-test", idx))
        assert c.data_accesses >= c.l1d_misses >= c.l2d_misses >= c.l3d_misses
        assert c.memory_bytes > 0
        assert c.compute_cycles > 0
