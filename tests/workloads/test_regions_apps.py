"""Tests for region trees, applications and the Table II registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.application import Application, ProgrammingModel
from repro.workloads.generator import random_application
from repro.workloads.region import Region, phase_region
from repro.workloads import registry


class TestRegion:
    def test_walk_is_preorder(self):
        root = Region("a")
        b = root.add_child(Region("b"))
        b.add_child(Region("c"))
        root.add_child(Region("d"))
        assert [r.name for r in root.walk()] == ["a", "b", "c", "d"]

    def test_find_raises_for_missing(self):
        with pytest.raises(WorkloadError):
            Region("a").find("zzz")

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            Region("")

    def test_bad_calls_per_phase_rejected(self):
        with pytest.raises(WorkloadError):
            Region("x", calls_per_phase=0)


class TestApplication:
    def test_requires_exactly_one_phase_region(self):
        main = Region("main")
        with pytest.raises(WorkloadError, match="phase"):
            Application(
                name="x", suite="s", model=ProgrammingModel.OPENMP, main=main
            )

    def test_two_phase_regions_rejected(self):
        main = Region("main")
        main.add_child(phase_region([], name="p1"))
        main.add_child(phase_region([], name="p2"))
        with pytest.raises(WorkloadError):
            Application(name="x", suite="s", model=ProgrammingModel.OPENMP, main=main)

    def test_candidate_regions_are_phase_children(self):
        app = registry.build("Lulesh")
        names = {r.name for r in app.candidate_regions}
        assert "IntegrateStressForElems" in names

    def test_mpi_model_fixes_threads(self):
        assert not ProgrammingModel.MPI.supports_thread_tuning
        assert ProgrammingModel.HYBRID.supports_thread_tuning


class TestRegistry:
    def test_nineteen_benchmarks(self):
        assert len(registry.benchmark_names()) == 19

    def test_table2_roster_suites(self):
        roster = registry.roster()
        by_suite = {}
        for info in roster:
            by_suite.setdefault(info.suite, []).append(info.name)
        assert sorted(by_suite["NPB-3.3"]) == sorted(
            ["CG", "DC", "EP", "FT", "IS", "MG", "BT", "BT-MZ", "SP-MZ"]
        )
        assert sorted(by_suite["CORAL"]) == sorted(
            ["Amg2013", "Lulesh", "miniFE", "XSBench", "Kripke", "Mcb"]
        )
        assert sorted(by_suite["Mantevo"]) == sorted(["CoMD", "miniMD"])
        assert by_suite["LLCBench"] == ["Blasbench"]
        assert by_suite["Other"] == ["BEM4I"]

    def test_test_split_matches_paper(self):
        assert set(registry.TEST_BENCHMARKS) == {
            "Lulesh", "Amg2013", "miniMD", "BEM4I", "Mcb"
        }
        assert len(registry.training_benchmarks()) == 14

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            registry.build("NotABenchmark")

    def test_mpi_only_benchmarks(self):
        assert registry.info("Kripke").model is ProgrammingModel.MPI
        assert registry.info("CoMD").model is ProgrammingModel.MPI

    def test_builders_return_fresh_instances(self):
        assert registry.build("Lulesh") is not registry.build("Lulesh")

    def test_lulesh_table3_regions_present(self):
        app = registry.build("Lulesh")
        for name in (
            "IntegrateStressForElems",
            "CalcFBHourglassForceForElems",
            "CalcKinematicsForElems",
            "CalcQForElems",
            "ApplyMaterialPropertiesForElems",
        ):
            app.find_region(name)

    def test_mcb_table4_regions_present(self):
        app = registry.build("Mcb")
        for name in (
            "setupDT", "advPhoton",
            "omp parallel:423", "omp parallel:501", "omp parallel:642",
        ):
            app.find_region(name)


class TestGenerator:
    def test_deterministic(self):
        a = random_application(3)
        b = random_application(3)
        assert [r.name for r in a.regions] == [r.name for r in b.regions]

    def test_has_valid_phase(self):
        app = random_application(7)
        assert app.phase is not None
        assert len(app.candidate_regions) >= 2
