"""Suite-wide invariants for the 19 benchmarks of Table II.

These validate that every benchmark satisfies the structural and
physical assumptions the rest of the stack relies on — significance
thresholds, boundedness classification, diversified but consistent
instruction mixes.
"""

import pytest

from repro import config
from repro.execution.timing import region_timing
from repro.workloads import registry
from repro.workloads.suites.common import diversify_mix, moderate_profile


def calibration_timing(region, threads=24):
    return region_timing(
        region.characteristics,
        threads=threads,
        core_freq_ghz=config.CALIBRATION_CORE_FREQ_GHZ,
        uncore_freq_ghz=config.CALIBRATION_UNCORE_FREQ_GHZ,
    )


@pytest.mark.parametrize("name", registry.benchmark_names())
class TestEveryBenchmark:
    def test_has_phase_with_work_regions(self, name):
        app = registry.build(name)
        work = [r for r in app.phase.children if r.has_work]
        assert len(work) >= 2

    def test_has_at_least_one_significant_region(self, name):
        app = registry.build(name)
        significant = [
            c
            for c in app.phase.children
            if c.has_work
            and calibration_timing(c).time_s
            > config.SIGNIFICANT_REGION_THRESHOLD_S
        ]
        assert significant, f"{name} has no tunable region"

    def test_has_filterable_noise_regions(self, name):
        """Every app carries fine-granular regions below the threshold
        (what run-time filtering and dyn-detect must reject)."""
        app = registry.build(name)
        tiny = [
            c
            for c in app.phase.children
            if c.has_work
            and calibration_timing(c).time_s
            < config.SIGNIFICANT_REGION_THRESHOLD_S
        ]
        assert tiny, f"{name} has no fine-granular region"

    def test_instruction_mix_valid_after_diversification(self, name):
        app = registry.build(name)
        for region in app.regions:
            if not region.has_work:
                continue
            c = region.characteristics
            mix = (
                c.load_frac + c.store_frac + c.cond_branch_frac
                + c.uncond_branch_frac
            )
            assert mix <= 1.0

    def test_phase_runtime_within_job_scale(self, name):
        """One run stays in the seconds-to-minutes range of the paper's
        benchmark configurations."""
        app = registry.build(name)
        total = sum(
            calibration_timing(r).time_s
            for r in app.phase.children
            if r.has_work
        ) * app.phase_iterations
        assert 2.0 < total < 300.0


class TestBoundednessClassification:
    def test_memory_bound_flags_match_physics(self):
        """The registry's memory-bound labels agree with the timing
        model's dominant term at the default operating point."""
        for info in registry.roster():
            app = registry.build(info.name)
            significant = [
                c for c in app.phase.children
                if c.has_work
                and calibration_timing(c).time_s
                > config.SIGNIFICANT_REGION_THRESHOLD_S
            ]
            mem_time = comp_time = 0.0
            for region in significant:
                t = region_timing(
                    region.characteristics,
                    threads=24,
                    core_freq_ghz=config.DEFAULT_CORE_FREQ_GHZ,
                    uncore_freq_ghz=config.DEFAULT_UNCORE_FREQ_GHZ,
                )
                mem_time += t.memory_time_s
                comp_time += t.compute_time_s
            ratio = mem_time / comp_time
            if info.memory_bound:
                assert ratio > 1.0, info.name
            else:
                # Borderline codes (FT, Amg2013) sit near parity; clearly
                # memory-dominated behaviour would contradict the label.
                assert ratio < 1.15, info.name


class TestDiversifyMix:
    def test_preserves_timing_relevant_fields(self):
        base = moderate_profile()
        flavoured = diversify_mix(base, "some-region")
        assert flavoured.instructions == base.instructions
        assert flavoured.ipc == base.ipc
        assert flavoured.l1d_miss_rate == base.l1d_miss_rate
        assert flavoured.l2d_miss_rate == base.l2d_miss_rate
        assert flavoured.l3d_miss_rate == base.l3d_miss_rate
        assert flavoured.overlap == base.overlap
        assert flavoured.parallel_fraction == base.parallel_fraction
        assert flavoured.thread_overhead == base.thread_overhead
        # Combined data-access fraction preserved -> memory traffic intact.
        assert flavoured.load_frac + flavoured.store_frac == pytest.approx(
            base.load_frac + base.store_frac
        )

    def test_deterministic_per_key(self):
        a = diversify_mix(moderate_profile(), "r1")
        b = diversify_mix(moderate_profile(), "r1")
        c = diversify_mix(moderate_profile(), "r2")
        assert a == b
        assert a != c

    def test_memory_bytes_change_bounded(self):
        """Flavouring shifts DRAM traffic only marginally (the physics
        calibration must survive)."""
        base = moderate_profile()
        flavoured = diversify_mix(base, "region-x")
        assert flavoured.memory_bytes == pytest.approx(
            base.memory_bytes, rel=0.05
        )
