"""Tests for the :mod:`repro.api` facade and its deprecation shims."""

import json
import warnings

import numpy as np
import pytest

from repro import api, config
from repro.campaign.engine import CampaignEngine
from repro.campaign.store import ResultStore
from repro.errors import CampaignError, TuningError


class TestExecutionOptions:
    def test_defaults(self):
        options = api.ExecutionOptions()
        assert options.engine == "auto"
        assert options.campaign is None
        assert options.measurement == "grid"
        assert options.on_failure == "raise"
        assert options.retry_failed is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "warp"},
            {"measurement": "row"},
            {"on_failure": "explode"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(CampaignError, match="unknown"):
            api.ExecutionOptions(**kwargs)

    def test_grid_engine_mapping(self):
        assert api.ExecutionOptions().grid_engine() == "sweep"
        assert api.ExecutionOptions(engine="sweep").grid_engine() == "sweep"
        assert api.ExecutionOptions(engine="loop").grid_engine() == "loop"
        with pytest.raises(CampaignError):
            api.ExecutionOptions(engine="replay").grid_engine()

    def test_resolve_cluster_prefers_explicit(self):
        from repro.hardware.cluster import Cluster

        cluster = Cluster(4, seed=3)
        assert api.ExecutionOptions(cluster=cluster).resolve_cluster(9) is cluster
        default = api.ExecutionOptions().resolve_cluster(9)
        assert default.seed == 9


class TestResolveOptions:
    def test_legacy_kwargs_warn_once_per_site(self):
        site = "tests.api.unique_site_for_warn_once"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = api.resolve_options(None, site=site, engine="loop")
            second = api.resolve_options(None, site=site, engine="loop")
        assert first.engine == "loop" and second.engine == "loop"
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert site in str(deprecations[0].message)

    def test_options_and_legacy_kwargs_conflict(self):
        with pytest.raises(CampaignError, match="both"):
            api.resolve_options(
                api.ExecutionOptions(), site="tests.api.conflict", engine="loop"
            )

    def test_options_pass_through_unchanged(self):
        options = api.ExecutionOptions(engine="loop")
        assert api.resolve_options(options, site="tests.api.pass") is options


class TestTuningRequest:
    def test_validation(self):
        with pytest.raises(TuningError):
            api.TuningRequest("NoSuch").validate()
        with pytest.raises(TuningError):
            api.TuningRequest("EP", objective="nope").validate()
        with pytest.raises(TuningError):
            api.TuningRequest("EP", stride=0).validate()
        with pytest.raises(TuningError):
            api.TuningRequest("EP", threads=0).validate()

    def test_resolved_fills_default_threads(self):
        from repro.workloads import registry

        resolved = api.TuningRequest("EP").resolved()
        assert resolved.threads == registry.build("EP").default_threads

    def test_grid_key_excludes_objective_and_tmm(self):
        base = api.TuningRequest("EP", stride=7).resolved()
        twin = api.TuningRequest(
            "EP", stride=7, objective="edp", tmm='{"x": 1}'
        ).resolved()
        assert base.grid_key() == twin.grid_key()
        assert base.grid_key() != api.TuningRequest(
            "EP", stride=7, seed=1
        ).resolved().grid_key()


class TestGridAxes:
    def test_stride_one_is_full_grid(self):
        cfs, ucfs = api.grid_axes(1)
        assert cfs == config.CORE_FREQUENCIES_GHZ
        assert ucfs == config.UNCORE_FREQUENCIES_GHZ

    def test_thinned_axes_keep_defaults(self):
        cfs, ucfs = api.grid_axes(5)
        assert config.DEFAULT_CORE_FREQ_GHZ in cfs
        assert config.DEFAULT_UNCORE_FREQ_GHZ in ucfs
        assert len(cfs) < len(config.CORE_FREQUENCIES_GHZ)

    def test_bad_stride_rejected(self):
        with pytest.raises(TuningError):
            api.grid_axes(0)


class TestTune:
    def test_answer_is_grid_argmin(self):
        request = api.TuningRequest("EP", stride=7, objective="energy")
        answer = api.tune(request)
        grid = api.sweep_grid("EP", stride=7)
        i, j = np.unravel_index(
            np.argmin(grid.node_energy_j), grid.node_energy_j.shape
        )
        assert answer.best.core_freq_ghz == grid.core_frequencies[i]
        assert answer.best.uncore_freq_ghz == grid.uncore_frequencies[j]
        assert answer.best_energy_j == grid.node_energy_j[i, j]
        assert answer.cells == grid.node_energy_j.size

    def test_loop_engine_bit_identical_to_sweep(self):
        request = api.TuningRequest("EP", stride=7)
        sweep = api.tune(request)
        loop = api.tune(request, api.ExecutionOptions(engine="loop"))
        assert loop.payload() == sweep.payload()

    def test_campaign_backed_tune_matches_direct(self):
        engine = CampaignEngine(store=ResultStore(), max_workers=0)
        request = api.TuningRequest("EP", stride=7)
        direct = api.tune(request)
        campaign = api.tune(request, api.ExecutionOptions(campaign=engine))
        assert campaign.payload() == direct.payload()
        executed = engine.total_executed
        assert executed > 0
        again = api.tune(request, api.ExecutionOptions(campaign=engine))
        assert again.payload() == direct.payload()
        assert engine.total_executed == executed  # warm cache

    def test_payload_json_round_trips(self):
        answer = api.tune(api.TuningRequest("EP", stride=7))
        assert json.loads(json.dumps(answer.payload())) == answer.payload()

    def test_energy_saving_sign(self):
        answer = api.tune(api.TuningRequest("EP", stride=7))
        expected = 1.0 - answer.best_energy_j / answer.default_energy_j
        assert answer.energy_saving == pytest.approx(expected)


class TestShims:
    def test_heatmap_legacy_engine_still_works_and_warns(self):
        from repro.analysis.heatmap import energy_heatmap

        # warn-once is per call site and global; an earlier test in the
        # session may already have warmed this site.
        api._WARNED_SITES.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = energy_heatmap("EP", threads=24, engine="sweep")
        modern = energy_heatmap(
            "EP", threads=24, options=api.ExecutionOptions(engine="sweep")
        )
        assert np.array_equal(legacy.normalized, modern.normalized)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_heatmap_rejects_options_plus_legacy(self):
        from repro.analysis.heatmap import energy_heatmap

        with pytest.raises(CampaignError, match="both"):
            energy_heatmap(
                "EP",
                threads=24,
                engine="sweep",
                options=api.ExecutionOptions(),
            )

    def test_static_tuning_accepts_options(self):
        from repro.hardware.cluster import Cluster
        from repro.ptf.static_tuning import exhaustive_static_search

        engine = CampaignEngine(store=ResultStore(), max_workers=0)
        cluster = Cluster(2)
        app = __import__(
            "repro.workloads", fromlist=["registry"]
        ).registry.build("EP")
        direct = exhaustive_static_search(
            app, cluster, stride=7, thread_counts=(24,)
        )
        campaign = exhaustive_static_search(
            app,
            cluster,
            stride=7,
            thread_counts=(24,),
            options=api.ExecutionOptions(campaign=engine),
        )
        assert campaign.best == direct.best
        assert campaign.best_energy_j == direct.best_energy_j
