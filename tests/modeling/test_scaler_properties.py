"""Property-based round-trip tests for the feature scaler.

The scaler sits on every model's input path and its parameters ride the
content-addressed model cache as JSON, so two round-trips matter: the
numeric one (standardise then de-standardise recovers the data) and the
serialisation one (``to_dict``/``from_dict`` reproduces ``transform``
bit-for-bit — floats survive JSON via shortest-repr).
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.modeling.scaler import StandardScaler


@st.composite
def matrices(draw):
    rows = draw(st.integers(min_value=1, max_value=30))
    cols = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    scale = draw(st.floats(min_value=1e-3, max_value=1e6))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols)) * scale
    if draw(st.booleans()) and cols > 1:
        x[:, 0] = draw(st.floats(min_value=-1e6, max_value=1e6))  # constant
    return x


class TestScalerRoundTrips:
    @given(matrices())
    @settings(max_examples=40)
    def test_transform_inverts_exactly_in_parameter_space(self, x):
        """transform is (x - mean) / scale; reconstructing with the
        fitted parameters recovers the input to float tolerance."""
        scaler = StandardScaler()
        z = scaler.fit_transform(x)
        back = z * scaler.scale_ + scaler.mean_
        assert np.allclose(back, x, rtol=1e-9, atol=1e-9 * np.abs(x).max())

    @given(matrices())
    @settings(max_examples=40)
    def test_dict_round_trip_is_bit_exact(self, x):
        scaler = StandardScaler().fit(x)
        clone = StandardScaler.from_dict(scaler.to_dict())
        assert np.array_equal(clone.transform(x), scaler.transform(x))

    @given(matrices())
    @settings(max_examples=40)
    def test_json_round_trip_is_bit_exact(self, x):
        """The model cache stores the dict as JSON: shortest-repr floats
        must reproduce the transform exactly after a disk round-trip."""
        scaler = StandardScaler().fit(x)
        clone = StandardScaler.from_dict(json.loads(json.dumps(scaler.to_dict())))
        assert np.array_equal(clone.transform(x), scaler.transform(x))

    @given(matrices())
    @settings(max_examples=40)
    def test_standardised_moments(self, x):
        """Non-constant columns come out zero-mean unit-variance;
        constant columns map to exactly zero (scale pinned to one)."""
        scaler = StandardScaler()
        z = scaler.fit_transform(x)
        constant = x.std(axis=0) == 0.0
        assert np.all(scaler.scale_[constant] == 1.0)
        assert np.allclose(z[:, constant], 0.0, atol=1e-6)
        if x.shape[0] > 1:
            # Columns constant up to accumulation rounding get a tiny
            # fitted scale that amplifies that rounding; assert moments
            # only where the variation is genuine.
            live = x.std(axis=0) > 1e-9 * max(1.0, float(np.abs(x).max()))
            assert np.allclose(z[:, live].mean(axis=0), 0.0, atol=1e-7)
            assert np.allclose(z[:, live].std(axis=0), 1.0, atol=1e-7)

    @given(matrices())
    @settings(max_examples=20)
    def test_fit_is_idempotent(self, x):
        scaler = StandardScaler().fit(x)
        first = scaler.transform(x)
        scaler.fit(x)
        assert np.array_equal(scaler.transform(x), first)
