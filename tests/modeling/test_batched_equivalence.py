"""Batched-vs-pointwise model-evaluation equivalence (bit-exact).

The load-bearing property of the batched engine: every consumer-visible
number — grid predictions, LOOCV MAPE, static-configuration and counter
selections — is *bit-identical* between the stacked fast path and the
historical pointwise loops, across applications, regions and seeds.
"""

import numpy as np
import pytest

from repro.campaign.engine import CampaignEngine
from repro.campaign.store import ResultStore
from repro.errors import ModelError
from repro.modeling.batched import (
    BatchedModelEvaluator,
    backward_batch,
    forward_batch,
    frequency_grid,
    predict_energy_grid,
    stack_grid_features,
    validate_engine,
)
from repro.modeling.crossval import leave_one_out_mape, network_loocv_mape
from repro.modeling.dataset import build_dataset
from repro.modeling.model_cache import (
    dataset_digest,
    model_from_payload,
    model_to_payload,
    train_network_cached,
    training_descriptor,
)
from repro.modeling.network import EnergyNetwork
from repro.modeling.selection import select_counters
from repro.modeling.training import TrainingConfig, train_network
from repro.ptf.region_model import RegionModelTuner
from repro.ptf.static_tuning import select_static_configurations
from repro.util.rng import rng_for
from repro.workloads import registry


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        ("EP", "Mcb", "Lulesh", "CG", "FT", "XSBench"), thread_counts=(16, 24)
    )


@pytest.fixture(scope="module")
def model(dataset):
    return train_network(
        dataset.features, dataset.targets, config=TrainingConfig(epochs=6)
    )


class TestForwardBackward:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("rows", [2, 5, 64, 513])
    def test_forward_batch_matches_network_forward(self, seed, rows):
        net = EnergyNetwork(seed=seed)
        x = rng_for("batched-test", rows, seed=seed).normal(size=(rows, 9))
        assert np.array_equal(forward_batch(net.parameters, x), net.forward(x))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_batched_stack_matches_chunked_evaluation(self, seed):
        """Stacking rows does not change a single output bit (the
        property the whole engine rests on)."""
        net = EnergyNetwork(seed=seed)
        x = rng_for("batched-chunk", seed=seed).normal(size=(612, 9))
        full = forward_batch(net.parameters, x)
        for chunk in (2, 9, 102):
            parts = [
                forward_batch(net.parameters, x[i : i + chunk])
                for i in range(0, x.shape[0], chunk)
            ]
            assert np.array_equal(np.vstack(parts), full)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_backward_batch_matches_network_backward(self, seed):
        net = EnergyNetwork(seed=seed)
        rng = rng_for("batched-grad", seed=seed)
        x = rng.normal(size=(37, 9))
        grad_out = rng.normal(size=(37, 1))
        net.backward(np.asarray(net.forward(x) * 0 + grad_out))
        reference = [g.copy() for g in net.gradients]
        grads = backward_batch(net.parameters, x, grad_out)
        assert len(grads) == len(reference)
        for got, want in zip(grads, reference):
            assert np.array_equal(got, want)

    def test_malformed_weights_rejected(self):
        with pytest.raises(ModelError):
            forward_batch([np.ones((9, 5))], np.ones((2, 9)))
        with pytest.raises(ModelError):
            backward_batch([np.ones((9, 5))], np.ones((2, 9)), np.ones((2, 1)))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ModelError):
            validate_engine("vectorised")


class TestGridAssembly:
    def test_stacked_features_match_pointwise_rows(self):
        rates = rng_for("grid-rates").normal(size=(3, 7)) ** 2
        points, grid = frequency_grid()
        stacked = stack_grid_features(rates, grid)
        assert stacked.shape == (3 * len(points), 9)
        row = 0
        for vec in rates:
            for cf, ucf in points:
                assert np.array_equal(stacked[row], np.concatenate([vec, [cf, ucf]]))
                row += 1

    def test_single_vector_promoted(self):
        points, grid = frequency_grid()
        stacked = stack_grid_features(np.ones(7), grid)
        assert stacked.shape == (len(points), 9)


class TestGridPredictionEquivalence:
    @pytest.mark.parametrize("rows", [1, 2, 6])
    def test_engines_bit_identical(self, model, dataset, rows):
        rates = np.asarray(list(dataset.counter_rates.values())[:rows])
        batched = predict_energy_grid(model, rates, engine="batched")
        pointwise = predict_energy_grid(model, rates, engine="pointwise")
        assert batched.points == pointwise.points
        assert np.array_equal(batched.energies, pointwise.energies)
        assert batched.best() == pointwise.best()

    def test_evaluator_matches_trained_model_predict(self, model, dataset):
        features = dataset.features[:100]
        assert np.array_equal(
            BatchedModelEvaluator(model).predict(features),
            model.predict(features),
        )

    def test_grid_dict_matches_historical_plugin_loop(self, model, dataset):
        from repro import config

        rates = dataset.counter_rates[("Mcb", 24)]
        rows = []
        for cf in config.CORE_FREQUENCIES_GHZ:
            for ucf in config.UNCORE_FREQUENCIES_GHZ:
                rows.append(np.concatenate([rates, [cf, ucf]]))
        reference = model.predict(np.asarray(rows))
        grid = predict_energy_grid(model, rates, labels=("x",)).as_dict("x")
        assert np.array_equal(np.asarray(list(grid.values())), reference)


class TestLOOCVEquivalence:
    def test_loocv_mape_bit_identical_across_engines(self, dataset):
        config = TrainingConfig(epochs=3)
        pointwise = network_loocv_mape(dataset, config=config, engine="pointwise")
        batched = network_loocv_mape(dataset, config=config, engine="batched")
        assert pointwise == batched  # dict equality: same keys, same bits

    def test_matches_generic_loocv_harness(self, dataset):
        config = TrainingConfig(epochs=3)

        def fit_predict(tx, ty, ex):
            return train_network(tx, ty, config=config).predict(ex)

        expected = leave_one_out_mape(dataset, fit_predict)
        assert network_loocv_mape(dataset, config=config) == expected

    def test_parallel_campaign_dispatch_bit_identical(self, dataset):
        config = TrainingConfig(epochs=3)
        serial = network_loocv_mape(dataset, config=config, engine="batched")
        parallel = network_loocv_mape(
            dataset,
            config=config,
            engine="batched",
            campaign=CampaignEngine(max_workers=2),
        )
        assert serial == parallel

    def test_warm_model_store_skips_training_and_is_identical(
        self, tmp_path, dataset
    ):
        config = TrainingConfig(epochs=3)
        store = ResultStore(tmp_path / "store.jsonl")
        campaign = CampaignEngine(store=store, max_workers=1)
        cold = network_loocv_mape(dataset, config=config, campaign=campaign)
        assert len(store) == len(dataset.benchmarks)
        store.close()
        warm_campaign = CampaignEngine(
            store=ResultStore(tmp_path / "store.jsonl"), max_workers=1
        )
        warm = network_loocv_mape(dataset, config=config, campaign=warm_campaign)
        assert cold == warm
        assert len(warm_campaign.store) == len(dataset.benchmarks)  # no retrain


class TestModelCache:
    def test_cached_model_bit_identical(self, dataset):
        config = TrainingConfig(epochs=2)
        store = ResultStore(None)
        first = train_network_cached(
            dataset.features, dataset.targets, config=config, store=store
        )
        second = train_network_cached(
            dataset.features, dataset.targets, config=config, store=store
        )
        for a, b in zip(first.network.get_weights(), second.network.get_weights()):
            assert np.array_equal(a, b)
        assert first.losses == second.losses
        assert np.array_equal(
            first.predict(dataset.features[:10]),
            second.predict(dataset.features[:10]),
        )

    def test_digest_sensitive_to_data_and_config(self, dataset):
        d1 = dataset_digest(dataset.features, dataset.targets)
        d2 = dataset_digest(dataset.features[:-1], dataset.targets[:-1])
        assert d1 != d2
        k1 = training_descriptor(d1, TrainingConfig(epochs=2))
        k2 = training_descriptor(d1, TrainingConfig(epochs=3))
        assert k1 != k2

    def test_stale_model_payload_surfaces_clear_error(self):
        with pytest.raises(ModelError, match="older store schema"):
            model_from_payload({"weights": []})

    def test_payload_round_trip(self, model, dataset):
        rebuilt = model_from_payload(model_to_payload(model))
        assert np.array_equal(
            rebuilt.predict(dataset.features[:50]),
            model.predict(dataset.features[:50]),
        )


class TestSelectionEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_engines_select_identical_counters_synthetic(self, seed):
        rng = rng_for("selection-equiv", seed=seed)
        n, j = 240, 12
        rates = rng.normal(size=(n, j))
        freqs = rng.normal(size=(n, 2))
        coef = np.zeros(j)
        coef[rng.choice(j, size=4, replace=False)] = rng.normal(size=4) * 2
        targets = rates @ coef + freqs @ [0.5, -0.3] + rng.normal(size=n) * 0.1
        names = [f"C{i}" for i in range(j)]
        batched = select_counters(rates, names, freqs, targets, engine="batched")
        pointwise = select_counters(rates, names, freqs, targets, engine="pointwise")
        assert batched.counters == pointwise.counters
        assert batched.vifs == pointwise.vifs
        assert np.isclose(batched.adjusted_r2, pointwise.adjusted_r2)

    def test_engines_agree_on_real_dataset(self, dataset):
        freqs = dataset.features[:, -2:]
        rates = dataset.features[:, :-2]
        names = list(dataset.feature_names[:-2])
        batched = select_counters(rates, names, freqs, dataset.targets)
        pointwise = select_counters(
            rates, names, freqs, dataset.targets, engine="pointwise"
        )
        assert batched.counters == pointwise.counters

    def test_unknown_engine_rejected(self, dataset):
        with pytest.raises(ModelError):
            select_counters(
                np.ones((10, 3)),
                ["a", "b", "c"],
                np.ones((10, 2)),
                np.ones(10),
                engine="nope",
            )


class TestStaticSelectionEquivalence:
    def test_selected_configurations_bit_identical(self, model, dataset):
        batched = select_static_configurations(model, dataset.counter_rates)
        pointwise = select_static_configurations(
            model, dataset.counter_rates, engine="pointwise"
        )
        assert set(batched) == set(dataset.counter_rates)
        assert batched == pointwise  # OperatingPoint + energy, bit-equal

    def test_empty_series_ok(self, model):
        assert select_static_configurations(model, {}) == {}


class TestRegionTunerEquivalence:
    @pytest.mark.parametrize("app_name", ["Lulesh", "Mcb"])
    def test_tuner_engines_bit_identical(self, model, app_name):
        from repro.hardware.cluster import Cluster

        app = registry.build(app_name)
        regions = tuple(r.name for r in app.candidate_regions if r.has_work)[:3]
        cluster = Cluster(2)
        batched_tuner = RegionModelTuner(model, cluster, engine="batched")
        pointwise_tuner = RegionModelTuner(model, cluster, engine="pointwise")
        batched = batched_tuner.tune(app, regions)
        pointwise = pointwise_tuner.tune(app, regions)
        assert (
            batched.phase_prediction.best_frequencies
            == pointwise.phase_prediction.best_frequencies
        )
        assert (
            batched.phase_prediction.predicted_energy
            == pointwise.phase_prediction.predicted_energy
        )
        for name in regions:
            b = batched.region_predictions[name]
            p = pointwise.region_predictions[name]
            assert b.best_frequencies == p.best_frequencies
            assert b.predicted_energy == p.predicted_energy
        assert batched.outliers() == pointwise.outliers()
