"""Tests for the from-scratch neural network (Figure 4 architecture)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.modeling.adam import Adam
from repro.modeling.layers import Dense, ReLU
from repro.modeling.loss import mse, mse_gradient
from repro.modeling.network import EnergyNetwork
from repro.modeling.training import TrainingConfig, train_network


class TestLayers:
    def test_dense_forward_shape(self):
        layer = Dense(9, 5)
        out = layer.forward(np.ones((7, 9)))
        assert out.shape == (7, 5)

    def test_dense_he_initialisation_statistics(self):
        layer = Dense(1000, 500)
        assert abs(float(layer.weights.mean())) < 0.01
        assert float(layer.weights.std()) == pytest.approx(
            np.sqrt(2.0 / 1000), rel=0.05
        )
        assert np.all(layer.bias == 0.0)

    def test_dense_gradient_check(self):
        """Backprop gradient matches numerical finite differences."""
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))
        pred = layer.forward(x)
        layer.backward(mse_gradient(pred, target))
        analytic = layer.grad_weights.copy()
        eps = 1e-6
        for i, j in [(0, 0), (2, 1), (3, 2)]:
            layer.weights[i, j] += eps
            up = mse(layer.forward(x), target)
            layer.weights[i, j] -= 2 * eps
            down = mse(layer.forward(x), target)
            layer.weights[i, j] += eps
            numeric = (up - down) / (2 * eps)
            assert analytic[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_relu_masks_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert out.tolist() == [[0.0, 0.0, 2.0]]
        grad = relu.backward(np.array([[1.0, 1.0, 1.0]]))
        assert grad.tolist() == [[0.0, 0.0, 1.0]]

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ModelError):
            Dense(2, 2).backward(np.ones((1, 2)))


class TestNetworkArchitecture:
    def test_paper_architecture(self):
        """Fig. 4: 9 inputs, two hidden layers of 5 neurons, 1 output."""
        net = EnergyNetwork()
        dense = [layer for layer in net.layers if isinstance(layer, Dense)]
        relu = [layer for layer in net.layers if isinstance(layer, ReLU)]
        assert [(d.weights.shape) for d in dense] == [(9, 5), (5, 5), (5, 1)]
        assert len(relu) == 2

    def test_parameter_count(self):
        net = EnergyNetwork()
        n_params = sum(p.size for p in net.parameters)
        assert n_params == 9 * 5 + 5 + 5 * 5 + 5 + 5 * 1 + 1  # 91

    def test_predict_shape(self):
        net = EnergyNetwork()
        assert net.predict(np.ones((4, 9))).shape == (4,)

    def test_wrong_input_width_rejected(self):
        net = EnergyNetwork()
        with pytest.raises(ModelError):
            net.forward(np.ones((2, 7)))

    def test_weight_roundtrip(self):
        net = EnergyNetwork(seed=1)
        clone = EnergyNetwork.from_dict(net.to_dict())
        x = np.random.default_rng(0).standard_normal((3, 9))
        assert np.allclose(net.predict(x), clone.predict(x))

    def test_weight_shape_mismatch_rejected(self):
        net = EnergyNetwork()
        bad = [np.zeros((2, 2))] * len(net.parameters)
        with pytest.raises(ModelError):
            net.set_weights(bad)


class TestAdam:
    def test_minimises_quadratic(self):
        w = np.array([5.0, -3.0])
        opt = Adam([w], learning_rate=0.1)
        for _ in range(500):
            opt.step([2 * w])  # d/dw ||w||^2
        assert np.all(np.abs(w) < 1e-2)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ModelError):
            Adam([np.zeros(1)], learning_rate=0)

    def test_gradient_count_mismatch_rejected(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(ModelError):
            opt.step([np.zeros(2), np.zeros(2)])


class TestAllocationFreeUpdates:
    """The preallocated-gradient path (Dense buffers + bound Adam) must
    be numerically identical to per-step list passing."""

    @staticmethod
    def _data():
        rng = np.random.default_rng(42)
        x = rng.standard_normal((40, 9))
        y = rng.standard_normal(40)
        return x, y

    def test_gradient_buffers_are_stable_and_written_in_place(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        gw, gb = layer.grad_weights, layer.grad_bias
        x = np.random.default_rng(1).standard_normal((5, 4))
        layer.forward(x)
        layer.backward(np.ones((5, 3)))
        assert layer.grad_weights is gw
        assert layer.grad_bias is gb
        layer.backward(2 * np.ones((5, 3)))
        assert layer.grad_weights is gw  # still the same buffer

    def test_bound_optimizer_matches_explicit_gradients(self):
        """Same data, same seeds: bound-gradient stepping produces the
        exact per-epoch losses and final weights of explicit stepping."""
        x, y = self._data()
        bound = train_network(x, y, config=TrainingConfig(epochs=3, seed=0))

        # Reference loop: fresh gradient list passed every update, fresh
        # gradient copies so no buffer identity is exploited.
        from repro.modeling.scaler import StandardScaler
        from repro.util.rng import rng_for

        scaler = StandardScaler()
        xs = scaler.fit_transform(x)
        ys = y[:, None]
        net = EnergyNetwork(n_inputs=9, seed=0)
        optimizer = Adam(net.parameters, learning_rate=1e-3)
        rng = rng_for("training-shuffle", seed=0)
        losses = []
        for _epoch in range(3):
            order = rng.permutation(40)
            epoch_loss, batches = 0.0, 0
            for start in range(0, 40, 1):
                idx = order[start : start + 1]
                pred = net.forward(xs[idx])
                epoch_loss += mse(pred, ys[idx])
                batches += 1
                net.backward(mse_gradient(pred, ys[idx]))
                optimizer.step([g.copy() for g in net.gradients])
            losses.append(epoch_loss / batches)

        assert bound.losses == losses
        for got, expected in zip(bound.network.get_weights(), net.get_weights()):
            assert np.array_equal(got, expected)

    def test_step_without_bound_gradients_rejected(self):
        optimizer = Adam([np.zeros(2)])
        with pytest.raises(ModelError):
            optimizer.step()

    def test_bound_gradient_count_mismatch_rejected(self):
        with pytest.raises(ModelError):
            Adam([np.zeros(2)], gradients=[np.zeros(2), np.zeros(2)])


class TestTraining:
    def test_learns_smooth_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(600, 9))
        y = 1.0 + 0.3 * x[:, 0] - 0.2 * x[:, 1] ** 2 + 0.1 * x[:, 7]
        model = train_network(x, y, config=TrainingConfig(epochs=25, seed=2))
        pred = model.predict(x)
        rel = np.mean(np.abs(pred - y) / np.abs(y))
        assert rel < 0.08

    def test_loss_decreases(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(400, 9))
        y = 1.0 + 0.5 * x[:, 0]
        model = train_network(x, y, config=TrainingConfig(epochs=5))
        assert model.losses[-1] < model.losses[0]

    def test_training_is_deterministic(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(100, 9))
        y = x[:, 0]
        a = train_network(x, y, config=TrainingConfig(epochs=2, seed=7))
        b = train_network(x, y, config=TrainingConfig(epochs=2, seed=7))
        assert np.allclose(a.predict(x), b.predict(x))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            train_network(np.ones((4, 9)), np.ones(5))

    def test_bad_config_rejected(self):
        with pytest.raises(ModelError):
            TrainingConfig(epochs=0)
        with pytest.raises(ModelError):
            TrainingConfig(learning_rate=-1)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=100))
    def test_prediction_finite_for_any_seed(self, seed):
        net = EnergyNetwork(seed=seed)
        x = np.random.default_rng(seed).standard_normal((5, 9))
        assert np.all(np.isfinite(net.predict(x)))
