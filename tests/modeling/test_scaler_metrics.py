"""Tests for the scaler, loss, accuracy metrics and VIF."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ModelError
from repro.modeling.loss import mse, mse_gradient
from repro.modeling.metrics import mape, mean_absolute_error
from repro.modeling.scaler import StandardScaler
from repro.modeling.vif import mean_vif, variance_inflation_factors


class TestScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_stays_finite(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ModelError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch_rejected(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ModelError):
            scaler.transform(np.ones((2, 4)))

    def test_dict_roundtrip(self):
        scaler = StandardScaler().fit(np.random.default_rng(1).normal(size=(20, 3)))
        clone = StandardScaler.from_dict(scaler.to_dict())
        x = np.random.default_rng(2).normal(size=(4, 3))
        assert np.allclose(scaler.transform(x), clone.transform(x))

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            float,
            (30, 3),
            elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        )
    )
    def test_transform_is_affine_invertible(self, x):
        scaler = StandardScaler().fit(x)
        z = scaler.transform(x)
        back = z * scaler.scale_ + scaler.mean_
        assert np.allclose(back, x, rtol=1e-8, atol=1e-6)


class TestLossMetrics:
    def test_mse_zero_for_perfect_prediction(self):
        x = np.array([[1.0], [2.0]])
        assert mse(x, x) == 0.0

    def test_mse_gradient_direction(self):
        pred = np.array([[2.0]])
        target = np.array([[1.0]])
        assert mse_gradient(pred, target)[0, 0] > 0

    def test_mape_percent_units(self):
        assert mape(np.array([1.1]), np.array([1.0])) == pytest.approx(10.0)

    def test_mape_zero_target_rejected(self):
        with pytest.raises(ModelError):
            mape(np.array([1.0]), np.array([0.0]))

    def test_mae(self):
        assert mean_absolute_error(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == 1.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            mse(np.ones(3), np.ones(4))


class TestVIF:
    def test_independent_features_have_low_vif(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 4))
        vifs = variance_inflation_factors(x)
        assert np.all(vifs < 1.1)

    def test_collinear_features_have_high_vif(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=500)
        x = np.column_stack([a, a + rng.normal(scale=0.01, size=500)])
        vifs = variance_inflation_factors(x)
        assert np.all(vifs > 100)

    def test_single_feature_is_unity(self):
        assert variance_inflation_factors(np.ones((10, 1)) * 2).tolist() == [1.0]

    def test_mean_vif(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 3))
        assert mean_vif(x) == pytest.approx(
            float(np.mean(variance_inflation_factors(x)))
        )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ModelError):
            variance_inflation_factors(np.ones((2, 2)))
