"""Tests for dataset acquisition, cross-validation, selection, regression.

These use small benchmark subsets / reduced thread sweeps to stay fast;
the full 19-benchmark pipeline runs in the benchmarks.
"""

import numpy as np
import pytest

from repro import config
from repro.errors import ModelError
from repro.hardware.cluster import Cluster
from repro.modeling.crossval import kfold_indices, kfold_mape, leave_one_out_mape
from repro.modeling.dataset import (
    FEATURE_COUNTERS,
    build_dataset,
    measure_counter_rates,
    sweep_operating_points,
)
from repro.modeling.regression import RegressionEnergyModel
from repro.modeling.selection import select_counters
from repro.modeling.training import TrainingConfig, train_network
from repro.workloads import registry


@pytest.fixture(scope="module")
def small_dataset():
    return build_dataset(
        ("EP", "Mcb", "Lulesh", "CG", "BT", "XSBench"), thread_counts=(16, 24)
    )


class TestSweep:
    def test_sweep_covers_both_axes(self):
        points = sweep_operating_points()
        cfs = {p[0] for p in points}
        ucfs = {p[1] for p in points}
        assert cfs == set(config.CORE_FREQUENCIES_GHZ)
        assert ucfs == set(config.UNCORE_FREQUENCIES_GHZ)

    def test_calibration_point_appears_once(self):
        points = sweep_operating_points()
        cal = (config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ)
        assert points.count(cal) == 1

    def test_sweep_size(self):
        assert len(sweep_operating_points()) == 14 + 18 - 1


class TestDataset:
    def test_fleet_strategy_builds_bit_identical_dataset(self):
        loop = build_dataset(("EP", "Mcb"), thread_counts=(24,))
        fleet = build_dataset(("EP", "Mcb"), thread_counts=(24,), fleet=True)
        assert fleet.features.tolist() == loop.features.tolist()
        assert fleet.targets.tolist() == loop.targets.tolist()
        assert fleet.times.tolist() == loop.times.tolist()
        assert fleet.groups.tolist() == loop.groups.tolist()

    def test_feature_layout(self, small_dataset):
        assert small_dataset.features.shape[1] == len(FEATURE_COUNTERS) + 2
        assert small_dataset.feature_names[-2:] == ("CF", "UCF")

    def test_sample_count(self, small_dataset):
        assert small_dataset.features.shape[0] == 6 * 2 * 31

    def test_calibration_target_is_unity(self, small_dataset):
        cal_mask = np.all(
            small_dataset.features[:, -2:] == [2.0, 1.5], axis=1
        )
        assert np.allclose(small_dataset.targets[cal_mask], 1.0)

    def test_counter_rates_frequency_independent(self):
        """Rates derive from application characteristics only (Sec. IV-B)."""
        app = registry.build("EP")
        cluster = Cluster(2)
        rates = measure_counter_rates(app, cluster, threads=24)
        assert all(v >= 0 for v in rates.values())
        assert rates["PAPI_LD_INS"] > 0

    def test_split_by_benchmark(self, small_dataset):
        train, test = small_dataset.split({"Mcb"})
        assert set(test.groups) == {"Mcb"}
        assert "Mcb" not in set(train.groups)

    def test_subset_unknown_benchmark_rejected(self, small_dataset):
        with pytest.raises(ModelError):
            small_dataset.subset({"nope"})

    def test_memory_bound_apps_have_higher_memory_rates(self, small_dataset):
        ld = small_dataset.feature_names.index("LD_INS")
        stl = small_dataset.feature_names.index("RES_STL")
        mcb = small_dataset.counter_rates[("Mcb", 24)]
        ep = small_dataset.counter_rates[("EP", 24)]
        assert mcb[stl] > ep[stl]


class TestCrossval:
    def test_kfold_partitions(self):
        splits = kfold_indices(20, 4, seed=1)
        assert len(splits) == 4
        all_test = np.concatenate([t for _, t in splits])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in splits:
            assert not set(train) & set(test)

    def test_kfold_bad_k_rejected(self):
        with pytest.raises(ModelError):
            kfold_indices(5, 1)
        with pytest.raises(ModelError):
            kfold_indices(5, 6)

    def test_loocv_returns_every_benchmark(self, small_dataset):
        def fit_predict(tx, ty, ex):
            return RegressionEnergyModel().fit(tx, ty).predict(ex)

        res = leave_one_out_mape(small_dataset, fit_predict)
        assert set(res) == set(small_dataset.benchmarks)
        assert all(v >= 0 for v in res.values())

    def test_nn_generalises_to_unseen_benchmark(self, small_dataset):
        """Held-out Lulesh is predicted within reasonable MAPE."""
        train, test = small_dataset.split({"Lulesh"})
        model = train_network(
            train.features, train.targets, config=TrainingConfig(epochs=8)
        )
        pred = model.predict(test.features)
        err = float(np.mean(np.abs((pred - test.targets) / test.targets))) * 100
        assert err < 15.0

    def test_kfold_mape_runs(self, small_dataset):
        def fit_predict(tx, ty, ex):
            return RegressionEnergyModel().fit(tx, ty).predict(ex)

        score = kfold_mape(
            small_dataset.features, small_dataset.targets, fit_predict, k=5
        )
        assert 0 < score < 50


class TestRegressionModel:
    def test_fits_linear_data_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = 2.0 + x @ np.array([1.0, -2.0, 0.5])
        model = RegressionEnergyModel().fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-8)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelError):
            RegressionEnergyModel().predict(np.ones((1, 3)))


class TestSelection:
    def test_selects_informative_counters(self, small_dataset):
        # Use the full preset set as candidates for a real selection run.
        ds = small_dataset
        freqs = ds.features[:, -2:]
        rates = ds.features[:, :-2]
        sel = select_counters(
            rates, list(ds.feature_names[:-2]), freqs, ds.targets
        )
        assert 1 <= len(sel.counters) <= 7
        assert sel.mean_vif < 10.0
        assert sel.adjusted_r2 > 0.3

    def test_misaligned_names_rejected(self):
        with pytest.raises(ModelError):
            select_counters(
                np.ones((10, 3)), ["a", "b"], np.ones((10, 2)), np.ones(10)
            )
