"""Tests for the otf2 parser, measure-rapl, sacct formatting and CLIs."""

import pytest

from repro.errors import TraceError
from repro.execution.simulator import ExecutionSimulator
from repro.execution.slurm import SlurmAccounting
from repro.hardware.node import ComputeNode
from repro.scorep.hdeem_plugin import HdeemMetricPlugin
from repro.scorep.otf2 import write_trace
from repro.scorep.papi_plugin import PapiMetricPlugin
from repro.scorep.trace import TraceCollector
from repro.tools import cli
from repro.tools.measure_rapl import measure_rapl
from repro.tools.otf2_parser import parse_trace
from repro.tools.sacct import format_sacct_output
from repro.workloads import registry


def make_trace(app_name="Lulesh"):
    app = registry.build(app_name)
    collector = TraceCollector(
        app.name,
        metric_plugins=(
            HdeemMetricPlugin(),
            PapiMetricPlugin(("LD_INS", "SR_INS", "RES_STL", "BR_NTK")),
        ),
    )
    sim = ExecutionSimulator(ComputeNode(0))
    run = sim.run(app, listeners=(collector,), collect_counters=True)
    return collector.trace(), run, app


class TestOtf2Parser:
    def test_reports_whole_run_energy(self):
        trace, run, app = make_trace()
        report = parse_trace(trace)
        assert report.total_energy_j == pytest.approx(run.node_energy_j, rel=0.02)

    def test_phase_instances_counted(self):
        trace, run, app = make_trace()
        report = parse_trace(trace)
        assert report.num_phase_instances == app.phase_iterations

    def test_phase_papi_values_present(self):
        trace, _, _ = make_trace()
        report = parse_trace(trace)
        assert report.mean_papi("LD_INS") > 0
        assert report.mean_papi("papi::RES_STL") > 0

    def test_missing_counter_rejected(self):
        trace, _, _ = make_trace()
        with pytest.raises(TraceError):
            parse_trace(trace).mean_papi("DP_OPS")

    def test_parse_from_file(self, tmp_path):
        trace, run, _ = make_trace("EP")
        path = write_trace(trace, tmp_path / "ep.jsonl")
        report = parse_trace(path)
        assert report.app_name == "EP"
        assert report.total_energy_j > 0


class TestMeasureRapl:
    def test_measures_cpu_energy(self):
        node = ComputeNode(0)
        with measure_rapl(node) as m:
            ExecutionSimulator(node).run(registry.build("EP"))
        assert m.cpu_energy_j > 0
        assert m.elapsed_s > 0
        assert 50 < m.mean_cpu_power_w < 300

    def test_zero_when_nothing_runs(self):
        node = ComputeNode(0)
        with measure_rapl(node) as m:
            pass
        assert m.cpu_energy_j == pytest.approx(0.0, abs=1e-3)


class TestSacctFormatting:
    def test_renders_fixed_width_table(self):
        acct = SlurmAccounting()
        run = ExecutionSimulator(ComputeNode(0)).run(registry.build("EP"))
        acct.submit(run)
        out = format_sacct_output(acct)
        lines = out.splitlines()
        assert "JobID" in lines[0]
        assert len(lines) == 3


class TestClis:
    def test_dyn_detect_cli(self, capsys, tmp_path):
        out_file = tmp_path / "cfg.json"
        assert cli.main_dyn_detect(["Lulesh", "-o", str(out_file)]) == 0
        captured = capsys.readouterr().out
        assert "IntegrateStressForElems" in captured
        assert out_file.exists()

    def test_sacct_cli(self, capsys):
        assert cli.main_sacct(["EP"]) == 0
        assert "ConsumedEnergy" in capsys.readouterr().out

    def test_measure_rapl_cli(self, capsys):
        assert cli.main_measure_rapl(["EP", "--cf", "2.0", "--ucf", "1.5"]) == 0
        assert "CPU energy" in capsys.readouterr().out

    def test_otf2_parser_cli(self, capsys, tmp_path):
        trace, _, _ = make_trace("EP")
        path = write_trace(trace, tmp_path / "t.jsonl")
        assert cli.main_otf2_parser([str(path)]) == 0
        assert "total energy" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli.main_sacct(["NotABenchmark"])
