#!/usr/bin/env python3
"""CI smoke for the serving layer: a real server, end to end.

Starts ``repro-serve`` as a subprocess on an ephemeral port, fires a
concurrent batch of tuning requests at it, and asserts the three
serving-layer contracts:

1. **Coalescing engaged** — the ``/metrics`` coalescing counter is
   positive (the batch really was answered from shared sweeps, not
   served one by one).
2. **Bit-equality** — every response ``result`` equals the offline
   ``repro.api.tune`` answer for the same request, byte for byte once
   JSON-encoded.
3. **Graceful drain** — SIGTERM makes the server drain and exit with
   code 130 (the documented contract, shared with ``repro-campaign``).

With ``--workers N`` the server runs its warm process pool and the
smoke additionally asserts the ``/metrics`` ``worker_pool`` gauges
report the requested width (a pooled server needs a concurrent-writer
``--store``, e.g. a ``.sqlite`` path — CI passes one).

Usage (CI runs it from the repo root)::

    python scripts/serving_smoke.py
    python scripts/serving_smoke.py --workers 2 --store smoke.sqlite
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402
from repro.serve.schema import WIRE_VERSION  # noqa: E402

BENCHMARK = "EP"
STRIDE = 2
OBJECTIVES = ("energy", "edp", "ed2p")


async def http(port: int, method: str, path: str, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = b"" if body is None else json.dumps(body).encode("utf-8")
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
        f"Content-Length: {len(data)}\r\n\r\n"
    ).encode("ascii") + data
    writer.write(request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(payload)


async def exercise(port: int, workers: int = 1) -> None:
    payloads = [
        {
            "version": WIRE_VERSION,
            "benchmark": BENCHMARK,
            "stride": STRIDE,
            "objective": objective,
        }
        for objective in OBJECTIVES
    ]
    responses = await asyncio.gather(
        *(http(port, "POST", "/v1/tune", p) for p in payloads)
    )
    for payload, (status, envelope) in zip(payloads, responses):
        assert status == 200, (status, envelope)
        offline = api.tune(
            api.TuningRequest(
                BENCHMARK, stride=STRIDE, objective=payload["objective"]
            )
        )
        served = json.dumps(envelope["result"], sort_keys=True)
        expected = json.dumps(offline.payload(), sort_keys=True)
        assert served == expected, (
            f"served result for {payload['objective']} differs from "
            f"offline repro.api.tune:\n  served:  {served}\n"
            f"  offline: {expected}"
        )
    print(f"bit-equality: {len(payloads)} responses match offline tune()")

    status, metrics = await http(port, "GET", "/metrics")
    assert status == 200
    assert metrics["coalesced"] > 0, f"no coalescing happened: {metrics}"
    print(
        f"coalescing: {metrics['coalesced']} request(s) coalesced across "
        f"{metrics['groups_fired']} group(s)"
    )

    pool = metrics["worker_pool"]
    if workers > 1:
        assert pool["workers"] == workers, (
            f"pool did not come up at the requested width: {pool}"
        )
        assert "fallback" not in pool, pool
        assert pool["groups_executed"] > 0, pool
        print(
            f"worker pool: {pool['workers']} workers, "
            f"{pool['groups_executed']} group(s) executed across "
            f"{len(pool['groups_per_worker'])} process(es)"
        )
    else:
        assert pool["workers"] == 1, pool

    status, health = await http(port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok", health


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="run the server's warm process pool at this width")
    parser.add_argument("--store", default=None,
                        help="result-store path handed to the server "
                             "(pooled smoke needs a concurrent backend)")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO / "src"), env.get("PYTHONPATH", "")])
    )
    command = [
        sys.executable,
        "-m",
        "repro.serve.server",
        "--port",
        "0",
        "--max-wait-ms",
        "25",
        "--workers",
        str(args.workers),
    ]
    if args.store is not None:
        command += ["--store", args.store]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = process.stdout.readline().strip()
        assert banner.startswith("serving on http://"), (
            banner or process.stderr.read()
        )
        port = int(banner.rsplit(":", 1)[1])
        print(banner)

        asyncio.run(exercise(port, workers=args.workers))

        process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60
        while process.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        code = process.poll()
        assert code == 130, (
            f"expected drain exit code 130, got {code}: "
            f"{process.stderr.read()}"
        )
        print("graceful drain: SIGTERM -> exit 130")
        print("serving smoke passed")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    sys.exit(main())
