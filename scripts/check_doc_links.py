#!/usr/bin/env python3
"""Fail on dead intra-repo references in the documentation.

Scans ``README.md`` and ``docs/*.md`` for

* markdown links ``[text](target)`` with relative targets — the target
  file must exist (resolved against the containing document);
* inline-code path references like ``src/repro/campaign/engine.py`` or
  ``benchmarks/_common.py`` — the path must exist at the repo root;
* inline-code dotted module references like ``repro.modeling.dataset``
  or ``repro.util.rng.rng_for`` — the module must resolve under
  ``src/``, and a trailing attribute (function/class) must exist on it.

Exits non-zero listing every dead reference.  Run from anywhere:
``python scripts/check_doc_links.py``.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

#: Inline-code tokens treated as repo paths when they start with these.
PATH_PREFIXES = (
    "src/", "docs/", "benchmarks/", "examples/", "tests/", "scripts/",
    ".github/",
)

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")
DOTTED = re.compile(r"^repro(\.\w+)+$")


def module_file(dotted: str) -> Path | None:
    """The file backing ``repro.x.y`` under src/, or ``None``."""
    rel = Path(*dotted.split("."))
    for candidate in (
        SRC_ROOT / rel.with_suffix(".py"),
        SRC_ROOT / rel / "__init__.py",
    ):
        if candidate.exists():
            return candidate
    return None


def check_dotted(token: str) -> str | None:
    """Validate a ``repro.*`` reference; returns an error or ``None``.

    The longest resolvable prefix is treated as the module; remaining
    components must be a chain of attributes on it (class, function,
    method, constant).
    """
    if module_file(token) is not None:
        return None
    parts = token.split(".")
    for split in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:split])
        if module_file(prefix) is None:
            continue
        sys.path.insert(0, str(SRC_ROOT))
        try:
            obj = importlib.import_module(prefix)
        finally:
            sys.path.pop(0)
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                return f"{type(obj).__name__} {prefix} has no attribute {attr!r}"
            obj = getattr(obj, attr)
            prefix = f"{prefix}.{attr}"
        return None
    return "module does not resolve under src/"


def check_document(doc: Path) -> list[str]:
    errors: list[str] = []
    text = doc.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MD_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if path and not (doc.parent / path).exists():
                errors.append(f"{doc.name}:{lineno}: dead link: {target}")
        for match in INLINE_CODE.finditer(line):
            token = match.group(1).strip()
            if token.startswith(PATH_PREFIXES):
                path = token.split("#", 1)[0].split(":", 1)[0]
                if "*" in path:
                    if not list(REPO_ROOT.glob(path)):
                        errors.append(
                            f"{doc.name}:{lineno}: glob matches nothing: {token}"
                        )
                elif not (REPO_ROOT / path).exists():
                    errors.append(f"{doc.name}:{lineno}: dead path: {token}")
            elif DOTTED.match(token):
                problem = check_dotted(token)
                if problem is not None:
                    errors.append(
                        f"{doc.name}:{lineno}: dead module ref {token}: {problem}"
                    )
    return errors


def main() -> int:
    documents = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [d for d in documents if not d.exists()]
    errors = [f"missing document: {d}" for d in missing]
    for doc in documents:
        if doc.exists():
            errors.extend(check_document(doc))
    if errors:
        print(f"{len(errors)} dead reference(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"checked {len(documents)} documents: all intra-repo references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
