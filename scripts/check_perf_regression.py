#!/usr/bin/env python3
"""Fail CI when a benchmark report regresses against its baseline.

Compares the JSON report of a benchmark run (``bench_sim_throughput.py
--json`` or ``bench_tuning_time.py --json``) against the committed
baseline under ``benchmarks/baselines/`` and exits non-zero when any
gated metric drops by more than ``--max-drop`` (default 30%).

Gated metrics are *ratios* (fast-path speedup over the reference
implementation measured in the same process), so they are comparable
across machines: a CI runner half as fast as the baseline machine still
reports the same speedup, while a 2x slowdown injected into the fast
path halves the ratio and trips the gate.  Correctness flags in the
report (``selections_identical``) are gated too.

Usage::

    python scripts/check_perf_regression.py current.json \
        benchmarks/baselines/sim-throughput.json [--max-drop 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Dotted paths of the higher-is-better ratio metrics per report kind.
#: loocv_mape deliberately gates no ratio: its batched time depends on
#: how warm the model store is, so the ratio is not machine-comparable.
GATED_METRICS: dict[str, tuple[str, ...]] = {
    "sim_throughput": ("aggregate.speedup",),
    "tuning_time": ("model_evaluation.speedup",),
    "loocv_mape": (),
    "table6_savings": ("aggregate.speedup",),
    "grid_sweep": ("aggregate.speedup",),
    "store_scale": (
        "backends.sqlite.recall_speedup",
        "backends.sqlite.cold_open_speedup",
        "backends.segment.recall_speedup",
        "backends.segment.cold_open_speedup",
    ),
    "serving_throughput": ("aggregate.speedup",),
    # serving_scaling gates core-normalised parallel efficiency, not the
    # raw multi-worker speedup: a 1-core runner cannot reproduce a
    # wall-clock multiple, but efficiency (speedup / usable cores) is
    # machine-comparable the same way the other ratios are.
    "serving_scaling": ("aggregate.efficiency",),
    "paper_regen": ("aggregate.speedup", "aggregate.pooled_speedup"),
}

#: Dotted paths of boolean flags that must be true, per report kind.
REQUIRED_FLAGS: dict[str, tuple[str, ...]] = {
    "sim_throughput": (),
    "tuning_time": ("model_evaluation.selections_identical",),
    "loocv_mape": ("mape_identical",),
    "table6_savings": ("aggregate.engines_identical",),
    "grid_sweep": ("aggregate.engines_identical",),
    "store_scale": ("payloads_identical",),
    "serving_throughput": (
        "aggregate.responses_identical",
        "aggregate.coalescing_engaged",
    ),
    "serving_scaling": ("aggregate.responses_identical",),
    "paper_regen": (
        "aggregate.artifacts_identical",
        "aggregate.pooled_identical",
    ),
}


def lookup(report: dict, dotted: str):
    value = report
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            raise SystemExit(
                f"metric {dotted!r} missing from report "
                f"(found up to {part!r}); was the report produced by an "
                "older benchmark schema?"
            )
        value = value[part]
    return value


def check(current: dict, baseline: dict, max_drop: float) -> list[str]:
    """All regression messages (empty when the gate passes)."""
    kind = current.get("benchmark")
    if kind != baseline.get("benchmark"):
        raise SystemExit(
            f"report kind mismatch: current is {kind!r}, "
            f"baseline is {baseline.get('benchmark')!r}"
        )
    if kind not in GATED_METRICS:
        raise SystemExit(f"no gated metrics known for report kind {kind!r}")
    failures = []
    for dotted in GATED_METRICS[kind]:
        now = float(lookup(current, dotted))
        then = float(lookup(baseline, dotted))
        floor = then * (1.0 - max_drop)
        status = "OK  " if now >= floor else "FAIL"
        print(
            f"{status} {dotted}: {now:.2f} vs baseline {then:.2f} "
            f"(floor {floor:.2f})"
        )
        if now < floor:
            failures.append(
                f"{dotted} dropped {(1 - now / then) * 100:.0f}% "
                f"({then:.2f} -> {now:.2f}, allowed {max_drop * 100:.0f}%)"
            )
    for dotted in REQUIRED_FLAGS[kind]:
        if not lookup(current, dotted):
            print(f"FAIL {dotted}: expected true")
            failures.append(f"{dotted} is not true")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh benchmark JSON")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop of a gated ratio (default 0.30)",
    )
    args = parser.parse_args(argv)
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(current, baseline, args.max_drop)
    if failures:
        print(f"\nperf gate FAILED against {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nperf gate passed against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
