"""Job records: what the batch system knows about one run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import JobError
from repro.execution.simulator import OperatingPoint, RunResult


@dataclass(frozen=True)
class JobStep:
    """One job step (``srun`` invocation) within a job."""

    name: str
    elapsed_s: float
    consumed_energy_j: float  # node energy, as HDEEM/SLURM account it


@dataclass
class JobRecord:
    """Post-mortem accounting data for one job (what ``sacct`` serves)."""

    job_id: int
    job_name: str
    node_id: int
    operating_point: OperatingPoint
    elapsed_s: float
    consumed_energy_j: float          #: node ("job") energy
    cpu_energy_j: float               #: RAPL package+DRAM energy
    steps: list[JobStep] = field(default_factory=list)

    @classmethod
    def from_run(
        cls, job_id: int, run: RunResult, *, job_name: str | None = None
    ) -> "JobRecord":
        """Build the accounting record for a completed run."""
        if run.time_s <= 0:
            raise JobError("cannot account a job with zero elapsed time")
        return cls(
            job_id=job_id,
            job_name=job_name or run.app_name,
            node_id=run.node_id,
            operating_point=run.operating_point,
            elapsed_s=run.time_s,
            consumed_energy_j=run.node_energy_j,
            cpu_energy_j=run.cpu_energy_j,
            steps=[
                JobStep(
                    name="batch",
                    elapsed_s=run.time_s,
                    consumed_energy_j=run.node_energy_j,
                )
            ],
        )
