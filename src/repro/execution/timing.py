"""Region run-time model (roofline with partial compute/memory overlap).

For a region with compute work ``W_c`` (cycles) and memory work ``W_m``
(bytes), executed with ``T`` threads at core frequency ``f_c`` and uncore
frequency ``f_u``::

    t_c = W_c / (f_c * S(T))          compute time
    t_m = W_m / B(f_u, T)             memory time
    t   = o * max(t_c, t_m) + (1 - o) * (t_c + t_m)

``o`` is the region's compute/memory overlap.  The model yields the
paper's qualitative behaviour: compute-bound regions can lower UFS until
``t_m`` emerges from under ``t_c`` (interior UCF optimum); memory-bound
regions can lower CF until ``t_c`` emerges from under ``t_m`` (interior
CF optimum); and both suffer when either knob goes too low.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import config
from repro.execution.speedup import memory_bandwidth_gbs, thread_speedup
from repro.workloads.characteristics import WorkloadCharacteristics


@dataclass(frozen=True)
class RegionTiming:
    """Ground-truth execution profile of one region instance."""

    time_s: float
    compute_time_s: float
    memory_time_s: float
    core_activity: float
    uncore_activity: float
    membw_gbs: float
    threads: int
    core_freq_ghz: float
    uncore_freq_ghz: float

    @property
    def memory_bound(self) -> bool:
        return self.memory_time_s > self.compute_time_s


def region_timing(
    chars: WorkloadCharacteristics,
    *,
    threads: int,
    core_freq_ghz: float,
    uncore_freq_ghz: float,
) -> RegionTiming:
    """Evaluate the timing model for one region instance.

    The model is a pure function of frozen inputs and the simulator
    re-evaluates it once per region *instance* (phase iterations times
    regions per run), so results are memoised; callers receive a shared
    frozen :class:`RegionTiming`.
    """
    return _region_timing_cached(chars, threads, core_freq_ghz, uncore_freq_ghz)


@lru_cache(maxsize=32768)
def _region_timing_cached(
    chars: WorkloadCharacteristics,
    threads: int,
    core_freq_ghz: float,
    uncore_freq_ghz: float,
) -> RegionTiming:
    speedup = thread_speedup(threads, chars.parallel_fraction, chars.thread_overhead)
    t_c = chars.compute_cycles / (core_freq_ghz * 1e9 * speedup)
    bandwidth = memory_bandwidth_gbs(uncore_freq_ghz, threads)
    t_m = chars.memory_bytes / (bandwidth * 1e9)
    o = chars.overlap
    time_s = o * max(t_c, t_m) + (1.0 - o) * (t_c + t_m)
    # Cores are fully active while computing and partially active (clock
    # running, pipelines stalled) for the remainder of the region.
    busy_frac = min(1.0, t_c / time_s) if time_s > 0 else 0.0
    core_activity = busy_frac + config.STALLED_CORE_ACTIVITY * (1.0 - busy_frac)
    achieved_gbs = chars.memory_bytes / time_s / 1e9 if time_s > 0 else 0.0
    # Uncore activity = achieved traffic relative to the node's peak.
    uncore_activity = min(1.0, achieved_gbs / config.PEAK_MEMBW_GBS)
    return RegionTiming(
        time_s=time_s,
        compute_time_s=t_c,
        memory_time_s=t_m,
        core_activity=core_activity,
        uncore_activity=uncore_activity,
        membw_gbs=achieved_gbs,
        threads=threads,
        core_freq_ghz=core_freq_ghz,
        uncore_freq_ghz=uncore_freq_ghz,
    )
