"""Vectorized phase-replay fast path for the execution simulator.

An *uncontrolled* run — no RRL/PCP controller, no listeners — is fully
determined once the operating point is fixed: frequencies never change
mid-run, the instrumentation filter is static, and the region tree is
walked the same way every phase iteration.  Instead of recursing through
the tree ``phase_iterations`` times, this module compiles the phase
subtree **once** per run into flat schedules —

* per-region base durations, power-component rates and probe overheads,
* the ordered sequence of *charge slots* (body and probe charges in
  traversal order) with their subtree spans,

— then replays all ``phase_iterations x instances`` in bulk: the keyed
lognormal time-noise factors are drawn through the batched RNG layer
(cached BLAKE2b digest prefixes, one reusable bit generator), the node's
meters advance through the bulk RAPL/HDEEM deposit APIs, and the
:class:`~repro.execution.simulator.RegionInstance` rows are materialised
lazily on first access.

The output is **bit-identical** to the recursive engine, which remains
the generic path for controlled/observed runs.  Identity holds because
every floating-point expression replays the recursive path's operation
order exactly: elementwise numpy arithmetic performs the same IEEE-754
operations per element, sequential ``+=`` accumulations map to
``np.cumsum``/``np.add.accumulate`` (strict left folds), and the noise
streams come from the same keyed generators (see
:mod:`repro.util.rng`).  ``tests/execution/test_replay_equivalence.py``
locks the equivalence down across applications, operating points and
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.counters.generation import MeasurementContext
from repro.execution.simulator import probe_overhead_s
from repro.execution.timing import RegionTiming, region_timing
from repro.util.rng import StreamPrefix, batched_lognormal
from repro.workloads.application import Application
from repro.workloads.region import Region


@dataclass
class _Slot:
    """One region of the flattened phase subtree (pre-order)."""

    region: Region
    children: tuple[int, ...]
    has_work: bool
    probed: bool                  #: probe overhead applies to this region
    timing: RegionTiming | None
    base_time_s: float            #: noise-free body duration
    node_w: float                 #: body power components ...
    package_w: float
    dram_w: float
    cpu_fraction: float           #: CPU share of the body's node power
    probe_s: float                #: per-instance instrumentation overhead
    work_index: int               #: row in the work-region arrays, -1
    charge_start: int             #: subtree's span in the charge sequence
    charge_end: int


@dataclass
class _Schedule:
    """The compiled per-iteration execution plan of one phase subtree."""

    slots: tuple[_Slot, ...]
    post_order: tuple[int, ...]
    charges: tuple[tuple[int, bool], ...]   #: (slot index, is_probe)
    base_times: np.ndarray                  #: (W,) work-region durations
    charge_node_w: np.ndarray               #: (C,) per charge slot
    charge_package_w: np.ndarray
    charge_dram_w: np.ndarray
    probe_per_iteration: np.ndarray         #: probe overheads, charge order
    num_work: int


def _compile(
    app: Application,
    node,
    threads: int,
    core_freq_ghz: float,
    uncore_freq_ghz: float,
    instrumented: bool,
    instrumentation,
) -> _Schedule:
    """Flatten the phase subtree into the replay schedule.

    Timings and power breakdowns are evaluated once per *region* here
    (both memoised underneath), instead of once per region *instance*
    as the recursive engine does.
    """
    slots: list[_Slot | None] = []
    charges: list[tuple[int, bool]] = []
    work_count = 0
    probe_breakdown = None

    def visit(region: Region) -> int:
        nonlocal work_count, probe_breakdown
        index = len(slots)
        slots.append(None)
        charge_start = len(charges)
        probed = instrumented and (
            instrumentation is None or instrumentation.is_instrumented(region)
        )
        timing = None
        base_time = node_w = package_w = dram_w = cpu_fraction = 0.0
        work_index = -1
        if region.has_work:
            timing = region_timing(
                region.characteristics,
                threads=threads,
                core_freq_ghz=core_freq_ghz,
                uncore_freq_ghz=uncore_freq_ghz,
            )
            breakdown = node.power_model.power(
                core_freq_ghz=core_freq_ghz,
                uncore_freq_ghz=uncore_freq_ghz,
                active_threads=threads,
                core_activity=timing.core_activity,
                uncore_activity=timing.uncore_activity,
                membw_gbs=timing.membw_gbs,
            )
            base_time = timing.time_s
            node_w = breakdown.node_w
            package_w = breakdown.rapl_package_w
            dram_w = breakdown.rapl_dram_w
            cpu_fraction = breakdown.cpu_w / breakdown.node_w
            work_index = work_count
            work_count += 1
            charges.append((index, False))
        probe_s = 0.0
        if probed:
            if probe_breakdown is None:
                probe_breakdown = node.power_model.power(
                    core_freq_ghz=core_freq_ghz,
                    uncore_freq_ghz=uncore_freq_ghz,
                    active_threads=threads,
                    core_activity=1.0,
                    uncore_activity=0.1,
                    membw_gbs=0.0,
                )
            probe_s = probe_overhead_s(region)
            charges.append((index, True))
        children = tuple(visit(child) for child in region.children)
        slots[index] = _Slot(
            region=region,
            children=children,
            has_work=region.has_work,
            probed=probed,
            timing=timing,
            base_time_s=base_time,
            node_w=node_w,
            package_w=package_w,
            dram_w=dram_w,
            cpu_fraction=cpu_fraction,
            probe_s=probe_s,
            work_index=work_index,
            charge_start=charge_start,
            charge_end=len(charges),
        )
        return index

    visit(app.phase)
    compiled = tuple(slots)  # type: ignore[arg-type]

    post_order: list[int] = []

    def order(index: int) -> None:
        for child in compiled[index].children:
            order(child)
        post_order.append(index)

    order(0)

    charge_node_w = np.empty(len(charges))
    charge_package_w = np.empty(len(charges))
    charge_dram_w = np.empty(len(charges))
    for c, (index, is_probe) in enumerate(charges):
        if is_probe:
            charge_node_w[c] = probe_breakdown.node_w
            charge_package_w[c] = probe_breakdown.rapl_package_w
            charge_dram_w[c] = probe_breakdown.rapl_dram_w
        else:
            slot = compiled[index]
            charge_node_w[c] = slot.node_w
            charge_package_w[c] = slot.package_w
            charge_dram_w[c] = slot.dram_w
    base_times = np.array(
        [s.base_time_s for s in compiled if s.has_work], dtype=float
    )
    probe_per_iteration = np.array(
        [compiled[index].probe_s for index, is_probe in charges if is_probe],
        dtype=float,
    )
    return _Schedule(
        slots=compiled,
        post_order=tuple(post_order),
        charges=tuple(charges),
        base_times=base_times,
        charge_node_w=charge_node_w,
        charge_package_w=charge_package_w,
        charge_dram_w=charge_dram_w,
        probe_per_iteration=probe_per_iteration,
        num_work=work_count,
    )


@dataclass
class _ReplayState:
    """Intermediates shared between the run replay, the lazy instance
    materialisation and the counter synthesis."""

    schedule: _Schedule
    iterations: int
    durations_work: np.ndarray   #: (W, I) noisy body durations
    timeline: np.ndarray         #: clock after each charge, leading start

    def body_times(self) -> list:
        """Per slot: (I,) body elapsed time (duration plus probe)."""
        times: list = [None] * len(self.schedule.slots)
        zeros = np.zeros(self.iterations)
        for k, slot in enumerate(self.schedule.slots):
            time = None
            if slot.has_work:
                time = self.durations_work[slot.work_index]
            if slot.probed:
                time = (
                    time + slot.probe_s
                    if time is not None
                    else np.full(self.iterations, slot.probe_s)
                )
            times[k] = time if time is not None else zeros
        return times

    def region_times(self) -> tuple[np.ndarray, np.ndarray]:
        """(enter, inclusive duration) matrices of shape (I, K)."""
        num_charges = len(self.schedule.charges)
        offsets = np.arange(self.iterations) * num_charges
        enter_index = np.array([s.charge_start for s in self.schedule.slots])
        exit_index = np.array([s.charge_end for s in self.schedule.slots])
        enter = self.timeline[offsets[:, None] + enter_index[None, :]]
        total = self.timeline[offsets[:, None] + exit_index[None, :]] - enter
        return enter, total


def _replay(sim, app: Application, schedule: _Schedule, run_key: tuple, result):
    """Execute the compiled schedule in bulk, filling ``result``."""
    from repro.execution.simulator import TIME_NOISE_SIGMA, InstanceLog

    node = sim.node
    slots = schedule.slots
    iterations = app.phase_iterations
    num_charges = len(schedule.charges)

    start_time = node.now_s
    start_cpu_j = node.rapl.read_cpu_energy_joules()

    # -- keyed time noise, batched over (work region x iteration) ----------
    if schedule.num_work:
        seeds = np.empty((schedule.num_work, iterations), dtype=np.uint64)
        for slot in slots:
            if slot.has_work:
                prefix = StreamPrefix(
                    "time", node.node_id, run_key, slot.region.name, seed=sim.seed
                )
                seeds[slot.work_index] = prefix.seeds_for_iterations(iterations)
        noise = batched_lognormal(seeds.reshape(-1), TIME_NOISE_SIGMA)
        durations_work = schedule.base_times[:, None] * noise.reshape(
            schedule.num_work, iterations
        )
    else:
        durations_work = np.empty((0, iterations))

    # -- the charge sequence (iteration-major, traversal order) ------------
    charge_matrix = np.empty((iterations, num_charges))
    for c, (index, is_probe) in enumerate(schedule.charges):
        slot = slots[index]
        if is_probe:
            charge_matrix[:, c] = slot.probe_s
        else:
            charge_matrix[:, c] = durations_work[slot.work_index]
    flat_durations = charge_matrix.reshape(-1)
    flat_node_w = np.tile(schedule.charge_node_w, iterations)

    # Simulated clock after each charge; cumsum is a strict left fold, so
    # every value matches the recursive engine's repeated ``+=``.
    timeline = np.cumsum(np.concatenate(([start_time], flat_durations)))

    # -- meters: one bulk advance instead of one call per charge -----------
    node.advance_many(
        flat_durations,
        flat_node_w,
        np.tile(schedule.charge_package_w, iterations),
        np.tile(schedule.charge_dram_w, iterations),
    )

    if num_charges:
        flat_joules = flat_node_w * flat_durations
        result.node_energy_j = float(np.add.accumulate(flat_joules)[-1])
    if schedule.probe_per_iteration.size:
        result.instrumentation_time_s = float(
            np.add.accumulate(
                np.tile(schedule.probe_per_iteration, iterations)
            )[-1]
        )

    result.time_s = node.now_s - start_time
    result.cpu_energy_j = node.rapl.read_cpu_energy_joules() - start_cpu_j

    state = _ReplayState(
        schedule=schedule,
        iterations=iterations,
        durations_work=durations_work,
        timeline=timeline,
    )

    # -- lazy row materialisation ------------------------------------------
    # Everything per-instance (entry times, inclusive energies, CPU
    # shares) is needed only when the rows are inspected, so the whole
    # derivation lives in the deferred producer; sweep-style runs that
    # read aggregate fields never pay for it.
    point = result.operating_point
    result.instances = InstanceLog.deferred(
        lambda: materialise_instances(state, point)
    )
    return state


def materialise_instances(state: _ReplayState, point) -> list:
    """Derive every :class:`RegionInstance` row of one replayed run.

    Shared by the uncontrolled replay and the grid-sweep engine
    (:mod:`repro.execution.sweep_replay`), which builds one
    :class:`_ReplayState` per grid configuration on demand.
    """
    from repro.execution.simulator import RegionInstance

    schedule = state.schedule
    slots = schedule.slots
    num_slots = len(slots)
    iterations = state.iterations
    durations_work = state.durations_work
    enter, total_time = state.region_times()
    body_time = state.body_times()

    zeros = np.zeros(iterations)
    body_energy: list = [None] * num_slots
    for k, slot in enumerate(slots):
        energy = None
        if slot.has_work:
            energy = slot.node_w * durations_work[slot.work_index]
        if slot.probed:
            probe_joules = (
                schedule.charge_node_w[
                    slot.charge_start + (1 if slot.has_work else 0)
                ]
                * slot.probe_s
            )
            energy = (
                energy + probe_joules
                if energy is not None
                else np.full(iterations, probe_joules)
            )
        body_energy[k] = energy if energy is not None else zeros

    # Inclusive energies: children accumulate in child order, own
    # body first — the recursive engine's exact expression tree.
    inclusive: list = [None] * num_slots
    for k in range(num_slots - 1, -1, -1):
        children_energy = None
        for child in slots[k].children:
            children_energy = (
                inclusive[child]
                if children_energy is None
                else children_energy + inclusive[child]
            )
        if children_energy is None:
            children_energy = 0.0
        inclusive[k] = body_energy[k] + children_energy

    cpu_energy: list = [None] * num_slots
    for k, slot in enumerate(slots):
        if slot.has_work:
            cpu_energy[k] = np.where(
                body_time[k] > 0, body_energy[k] * slot.cpu_fraction, 0.0
            )
        else:
            cpu_energy[k] = zeros

    rows = []
    append = rows.append
    for i in range(iterations):
        for k in schedule.post_order:
            slot = slots[k]
            append(
                RegionInstance(
                    region_name=slot.region.name,
                    iteration=i,
                    start_s=float(enter[i, k]),
                    time_s=float(total_time[i, k]),
                    node_energy_j=float(inclusive[k][i]),
                    cpu_energy_j=float(cpu_energy[k][i]),
                    operating_point=point,
                    timing=slot.timing,
                )
            )
    return rows


def replay_run(
    sim,
    app: Application,
    *,
    threads: int,
    instrumented: bool,
    instrumentation,
    run_key: tuple,
):
    """Run ``app`` through the fast path; returns the filled RunResult."""
    from repro.execution.simulator import OperatingPoint, RunResult

    node = sim.node
    core_freq_ghz = node.core_freq_ghz
    uncore_freq_ghz = node.uncore_freq_ghz
    result = RunResult(
        app_name=app.name,
        node_id=node.node_id,
        operating_point=OperatingPoint(
            core_freq_ghz=core_freq_ghz,
            uncore_freq_ghz=uncore_freq_ghz,
            threads=threads,
        ),
        engine="replay",
    )
    schedule = _compile(
        app, node, threads, core_freq_ghz, uncore_freq_ghz,
        instrumented, instrumentation,
    )
    _replay(sim, app, schedule, run_key, result)
    return result


@dataclass(frozen=True)
class PhaseCounterRun:
    """A fast-path instrumented run plus its phase counter totals.

    Field-for-field equivalent to running the generic engine with a
    phase-counter collector listener (``collect_counters=True``) and
    summing the phase region's inclusive metrics.
    """

    result: object                #: the RunResult of the instrumented run
    totals: dict[str, float]      #: summed phase counter totals
    phase_time_s: float           #: accumulated phase time over the run


def replay_phase_counters(
    sim,
    app: Application,
    *,
    threads: int,
    counters: tuple[str, ...],
    run_key: tuple,
) -> PhaseCounterRun:
    """Instrumented fast-path run with vectorized counter synthesis.

    Replays the run (instrumented, unfiltered — the configuration the
    campaign engine's ``counters`` mode uses), then derives every work
    region's 56 preset values for all iterations in one batch and folds
    them up the tree in the recursive engine's merge order.
    """
    from repro.execution.simulator import OperatingPoint, RunResult

    node = sim.node
    core_freq_ghz = node.core_freq_ghz
    uncore_freq_ghz = node.uncore_freq_ghz
    point = OperatingPoint(
        core_freq_ghz=core_freq_ghz,
        uncore_freq_ghz=uncore_freq_ghz,
        threads=threads,
    )
    result = RunResult(
        app_name=app.name,
        node_id=node.node_id,
        operating_point=point,
        engine="replay",
    )
    schedule = _compile(
        app, node, threads, core_freq_ghz, uncore_freq_ghz, True, None
    )
    state = _replay(sim, app, schedule, run_key, result)

    slots = schedule.slots
    iterations = state.iterations
    body_time = state.body_times()
    generator = sim._counter_generator
    names: tuple[str, ...] = ()
    own_matrix: list = [None] * len(slots)
    for k, slot in enumerate(slots):
        if not slot.has_work:
            continue
        ctx = MeasurementContext(
            elapsed_s=body_time[k],
            core_freq_ghz=point.core_freq_ghz,
            threads=threads,
        )
        sampled = generator.sample_batch(
            slot.region.characteristics,
            ctx,
            key_prefix=(node.node_id, run_key, slot.region.name),
        )
        if not names:
            names = tuple(sampled)
        own_matrix[k] = np.column_stack(list(sampled.values()))

    # Inclusive counter fold: children in order, own last — exactly the
    # dict-merge order of the recursive engine.  Regions whose subtree
    # holds no work contribute nothing (empty dict merge).
    inclusive: list = [None] * len(slots)
    for k in range(len(slots) - 1, -1, -1):
        acc = None
        for child in slots[k].children:
            if inclusive[child] is None:
                continue
            acc = inclusive[child] if acc is None else acc + inclusive[child]
        if own_matrix[k] is not None:
            acc = own_matrix[k] if acc is None else acc + own_matrix[k]
        inclusive[k] = acc

    phase_matrix = inclusive[0]
    column = {name: j for j, name in enumerate(names)}
    totals = {}
    for counter in counters:
        j = column.get(counter)
        if phase_matrix is None or j is None:
            totals[counter] = 0.0
        else:
            totals[counter] = float(np.add.accumulate(phase_matrix[:, j])[-1])
    _, total_time = state.region_times()
    phase_time_s = float(np.add.accumulate(total_time[:, 0])[-1])
    return PhaseCounterRun(result=result, totals=totals, phase_time_s=phase_time_s)
