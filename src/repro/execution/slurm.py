"""SLURM-style job accounting database (the ``sacct`` backend).

The paper measures job energy and time with ``sacct --format=...``
(Section V-D).  :class:`SlurmAccounting` stores completed
:class:`~repro.execution.job.JobRecord` objects and serves the same
field-based queries; the CLI front-end lives in
:mod:`repro.tools.sacct`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import JobError
from repro.execution.job import JobRecord
from repro.execution.simulator import RunResult

#: Supported --format fields -> extractor.
_FIELDS: dict[str, Callable[[JobRecord], object]] = {
    "JobID": lambda j: j.job_id,
    "JobName": lambda j: j.job_name,
    "NodeList": lambda j: f"node{j.node_id:04d}",
    "Elapsed": lambda j: j.elapsed_s,
    "ConsumedEnergy": lambda j: j.consumed_energy_j,
    "ConsumedEnergyRaw": lambda j: j.consumed_energy_j,
}


class SlurmAccounting:
    """In-memory job accounting store with ``sacct``-style queries."""

    def __init__(self) -> None:
        self._jobs: dict[int, JobRecord] = {}
        self._next_id = 1000

    def submit(self, run: RunResult, *, job_name: str | None = None) -> JobRecord:
        """Account a completed run and return its job record."""
        record = JobRecord.from_run(self._next_id, run, job_name=job_name)
        self._jobs[record.job_id] = record
        self._next_id += 1
        return record

    def job(self, job_id: int) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job id: {job_id}") from None

    def jobs(self) -> tuple[JobRecord, ...]:
        return tuple(self._jobs.values())

    @staticmethod
    def format_fields() -> tuple[str, ...]:
        return tuple(_FIELDS)

    def sacct(self, *, job_id: int | None = None, fmt: str = "JobID,JobName,Elapsed,ConsumedEnergy") -> list[dict[str, object]]:
        """Query like ``sacct --format=<fmt> [-j <job_id>]``."""
        fields = [f.strip() for f in fmt.split(",") if f.strip()]
        unknown = [f for f in fields if f not in _FIELDS]
        if unknown:
            raise JobError(f"unknown sacct fields: {unknown}; "
                           f"supported: {sorted(_FIELDS)}")
        selected = (
            [self.job(job_id)] if job_id is not None else list(self._jobs.values())
        )
        return [{f: _FIELDS[f](j) for f in fields} for j in selected]
