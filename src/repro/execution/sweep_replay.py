"""Config-axis batched sweep replay: a whole frequency grid in one pass.

The paper's Figures 6/7 heatmaps, the Table V exhaustive static search
and the trade-off study all measure *static* grids: one uncontrolled run
per (core-frequency, uncore-frequency[, threads]) configuration, each on
a fresh node.  After the per-run fast path (:mod:`repro.execution.replay`)
the grid itself remained a Python loop — fresh node, recompiled
schedule, one replay per cell.  This module adds a **configuration
axis** to the replay kernels and executes the entire sweep in one pass:

* the phase subtree is walked **once** into a config-independent
  structure (slot topology, charge order, probe overheads); only the
  per-cell timing/power numbers are evaluated per configuration, against
  one shared :class:`~repro.hardware.power.PowerModel` whose breakdown
  cache stays warm across the grid (the loop rebuilt it per cell);
* the keyed lognormal time noise is drawn as one 2-D batch over
  (configuration x work region x iteration) through
  :func:`repro.util.rng.batched_lognormal`, with per-configuration run
  keys, so every cell consumes exactly the stream the one-run-at-a-time
  loop would;
* charge timelines, node-energy folds and the RAPL tick/residual
  arithmetic run as row-wise numpy folds over the config axis — each
  row replays the exact IEEE-754 operation sequence of one
  :meth:`~repro.hardware.node.ComputeNode.advance_many` call on a fresh
  node, so per-cell results **and** meter end states are bit-identical
  to the historical loop;
* :class:`~repro.execution.simulator.RegionInstance` rows materialise
  lazily per cell through the shared
  :func:`repro.execution.replay.materialise_instances` producer.

Every cell of the sweep is bit-identical to::

    node = ComputeNode(node_id, seed=node_seed, topology=topology)
    node.set_frequencies(point.core_freq_ghz, point.uncore_freq_ghz)
    ExecutionSimulator(node, seed=seed).run(
        app, threads=point.threads, run_key=run_keys[i],
    )

which ``tests/execution/test_sweep_replay_equivalence.py`` locks down —
``RunResult`` fields, region instances and the node's meter/MSR end
state (:func:`meter_end_state`) — across benchmarks, thread counts and
seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import config
from repro.errors import FrequencyError, WorkloadError
from repro.execution.replay import (
    _ReplayState,
    _Schedule,
    _Slot,
    materialise_instances,
)
from repro.execution.timing import RegionTiming, region_timing
from repro.hardware.frequency import quantize_frequency
from repro.hardware.msr import ghz_of_ratio, ratio_of_ghz
from repro.hardware.power import NodeVariability, PowerModel
from repro.hardware.rapl import RAPL_ENERGY_UNIT_J
from repro.hardware.topology import NodeTopology
from repro.util.rng import StreamPrefix, batched_lognormal
from repro.workloads.application import Application
from repro.workloads.region import Region

_COUNTER_MASK = (1 << 32) - 1


@dataclass(frozen=True)
class MeterEndState:
    """Observable node state after one grid cell's run on a fresh node.

    Mirrors what the per-config loop leaves behind: the simulated
    clocks, the programmed frequencies and the RAPL accumulators' raw
    counters plus sub-tick residuals (per domain, per socket).
    :func:`meter_end_state` extracts the same view from a real
    :class:`~repro.hardware.node.ComputeNode` for comparison.
    """

    now_s: float
    hdeem_now_s: float
    core_freq_ghz: float
    uncore_freq_ghz: float
    rapl_package: tuple[tuple[int, float], ...]  #: (raw, residual) / socket
    rapl_dram: tuple[tuple[int, float], ...]


def meter_end_state(node) -> MeterEndState:
    """The :class:`MeterEndState` of a real compute node."""
    state = node.rapl_state()
    return MeterEndState(
        now_s=node.now_s,
        hdeem_now_s=node.hdeem.now_s,
        core_freq_ghz=node.core_freq_ghz,
        uncore_freq_ghz=node.uncore_freq_ghz,
        rapl_package=state["package"],
        rapl_dram=state["dram"],
    )


@dataclass
class SweepReplay:
    """Per-configuration results of one grid sweep.

    ``results[i]`` corresponds to ``points[i]`` and compares equal to
    the :class:`~repro.execution.simulator.RunResult` of the equivalent
    fresh-node run; ``end_states[i]`` is the meter/MSR state that run
    would leave on its node.
    """

    points: tuple
    results: tuple
    end_states: tuple[MeterEndState, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]


@dataclass
class _Structure:
    """The config-independent skeleton of the phase subtree."""

    regions: tuple[Region, ...]            #: per slot, pre-order
    children: tuple[tuple[int, ...], ...]
    has_work: tuple[bool, ...]
    probed: tuple[bool, ...]
    probe_s: tuple[float, ...]             #: per slot (0.0 when unprobed)
    work_index: tuple[int, ...]            #: row in work arrays, -1
    charge_start: tuple[int, ...]
    charge_end: tuple[int, ...]
    charges: tuple[tuple[int, bool], ...]  #: (slot index, is_probe)
    post_order: tuple[int, ...]
    work_slots: tuple[int, ...]            #: slot index per work row
    num_work: int
    any_probed: bool

    @property
    def probe_per_iteration(self) -> np.ndarray:
        """Probe overheads in charge order — config-independent."""
        return np.array(
            [self.probe_s[k] for k, is_probe in self.charges if is_probe],
            dtype=float,
        )


def _compile_structure(
    app: Application, instrumented: bool, instrumentation
) -> _Structure:
    """One walk of the phase subtree, mirroring ``replay._compile``'s
    traversal and charge order exactly — minus everything that depends
    on the operating point."""
    from repro.execution.simulator import probe_overhead_s

    regions: list[Region] = []
    children: list[tuple[int, ...]] = []
    has_work: list[bool] = []
    probed_flags: list[bool] = []
    probe_s: list[float] = []
    work_index: list[int] = []
    charge_start: list[int] = []
    charge_end: list[int] = []
    charges: list[tuple[int, bool]] = []
    work_slots: list[int] = []

    def visit(region: Region) -> int:
        index = len(regions)
        regions.append(region)
        children.append(())
        has_work.append(region.has_work)
        probed = instrumented and (
            instrumentation is None or instrumentation.is_instrumented(region)
        )
        probed_flags.append(probed)
        charge_start.append(len(charges))
        charge_end.append(0)  # filled after the subtree walk
        if region.has_work:
            work_index.append(len(work_slots))
            work_slots.append(index)
            charges.append((index, False))
        else:
            work_index.append(-1)
        if probed:
            probe_s.append(probe_overhead_s(region))
            charges.append((index, True))
        else:
            probe_s.append(0.0)
        children[index] = tuple(visit(child) for child in region.children)
        charge_end[index] = len(charges)
        return index

    visit(app.phase)

    post_order: list[int] = []

    def order(index: int) -> None:
        for child in children[index]:
            order(child)
        post_order.append(index)

    order(0)
    return _Structure(
        regions=tuple(regions),
        children=tuple(children),
        has_work=tuple(has_work),
        probed=tuple(probed_flags),
        probe_s=tuple(probe_s),
        work_index=tuple(work_index),
        charge_start=tuple(charge_start),
        charge_end=tuple(charge_end),
        charges=tuple(charges),
        post_order=tuple(post_order),
        work_slots=tuple(work_slots),
        num_work=len(work_slots),
        any_probed=any(probed_flags),
    )


def _effective_frequency(freq_ghz: float, lo: float, hi: float, domain: str) -> float:
    """The frequency a fresh node would report after programming
    ``freq_ghz``: quantized to the 100 MHz ratio grid and decoded back,
    exactly the DVFS/UFS controller round trip."""
    q = quantize_frequency(freq_ghz)
    if not lo <= q <= hi:
        raise FrequencyError(
            f"{domain} frequency {freq_ghz} GHz outside supported range "
            f"[{lo}, {hi}]"
        )
    return ghz_of_ratio(ratio_of_ghz(q))


@dataclass
class _ConfigEval:
    """Per-configuration numbers of the compiled schedule."""

    point: object                    #: effective OperatingPoint
    timings: list                    #: RegionTiming per work row
    base_times: np.ndarray           #: (W,)
    node_w: np.ndarray               #: (W,) body power components
    package_w: np.ndarray
    dram_w: np.ndarray
    cpu_fraction: np.ndarray         #: (W,)
    probe_node_w: float
    probe_package_w: float
    probe_dram_w: float


def _evaluate_config(
    structure: _Structure, power_model: PowerModel, point
) -> _ConfigEval:
    """Timing and power of every work region at one operating point.

    ``region_timing`` is memoised and the power model's breakdown cache
    is shared across the whole sweep, so repeated sweeps (and the probe
    breakdown within one) are dictionary hits.
    """
    w = structure.num_work
    timings: list[RegionTiming] = []
    base_times = np.empty(w)
    node_w = np.empty(w)
    package_w = np.empty(w)
    dram_w = np.empty(w)
    cpu_fraction = np.empty(w)
    for row, slot in enumerate(structure.work_slots):
        timing = region_timing(
            structure.regions[slot].characteristics,
            threads=point.threads,
            core_freq_ghz=point.core_freq_ghz,
            uncore_freq_ghz=point.uncore_freq_ghz,
        )
        breakdown = power_model.power(
            core_freq_ghz=point.core_freq_ghz,
            uncore_freq_ghz=point.uncore_freq_ghz,
            active_threads=point.threads,
            core_activity=timing.core_activity,
            uncore_activity=timing.uncore_activity,
            membw_gbs=timing.membw_gbs,
        )
        timings.append(timing)
        base_times[row] = timing.time_s
        node_w[row] = breakdown.node_w
        package_w[row] = breakdown.rapl_package_w
        dram_w[row] = breakdown.rapl_dram_w
        cpu_fraction[row] = breakdown.cpu_w / breakdown.node_w
    probe_node_w = probe_package_w = probe_dram_w = 0.0
    if structure.any_probed:
        breakdown = power_model.power(
            core_freq_ghz=point.core_freq_ghz,
            uncore_freq_ghz=point.uncore_freq_ghz,
            active_threads=point.threads,
            core_activity=1.0,
            uncore_activity=0.1,
            membw_gbs=0.0,
        )
        probe_node_w = breakdown.node_w
        probe_package_w = breakdown.rapl_package_w
        probe_dram_w = breakdown.rapl_dram_w
    return _ConfigEval(
        point=point,
        timings=timings,
        base_times=base_times,
        node_w=node_w,
        package_w=package_w,
        dram_w=dram_w,
        cpu_fraction=cpu_fraction,
        probe_node_w=probe_node_w,
        probe_package_w=probe_package_w,
        probe_dram_w=probe_dram_w,
    )


def _config_schedule(structure: _Structure, evaluated: _ConfigEval) -> _Schedule:
    """A per-configuration ``replay._Schedule`` for lazy instance rows."""
    slots = []
    for k, region in enumerate(structure.regions):
        row = structure.work_index[k]
        slots.append(
            _Slot(
                region=region,
                children=structure.children[k],
                has_work=structure.has_work[k],
                probed=structure.probed[k],
                timing=evaluated.timings[row] if row >= 0 else None,
                base_time_s=evaluated.base_times[row] if row >= 0 else 0.0,
                node_w=evaluated.node_w[row] if row >= 0 else 0.0,
                package_w=evaluated.package_w[row] if row >= 0 else 0.0,
                dram_w=evaluated.dram_w[row] if row >= 0 else 0.0,
                cpu_fraction=evaluated.cpu_fraction[row] if row >= 0 else 0.0,
                probe_s=structure.probe_s[k],
                work_index=row,
                charge_start=structure.charge_start[k],
                charge_end=structure.charge_end[k],
            )
        )
    return _Schedule(
        slots=tuple(slots),
        post_order=structure.post_order,
        charges=structure.charges,
        base_times=evaluated.base_times,
        charge_node_w=_charge_row(structure, evaluated.node_w, evaluated.probe_node_w),
        charge_package_w=_charge_row(
            structure, evaluated.package_w, evaluated.probe_package_w
        ),
        charge_dram_w=_charge_row(structure, evaluated.dram_w, evaluated.probe_dram_w),
        probe_per_iteration=structure.probe_per_iteration,
        num_work=structure.num_work,
    )


def _charge_row(
    structure: _Structure, work_values: np.ndarray, probe_value: float
) -> np.ndarray:
    """One configuration's per-charge power components, in charge order."""
    out = np.empty(len(structure.charges))
    for c, (slot, is_probe) in enumerate(structure.charges):
        out[c] = probe_value if is_probe else work_values[structure.work_index[slot]]
    return out


def _rapl_fold(joules: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Tick counts and final residuals of depositing each row's energy
    sequence into a fresh RAPL accumulator.

    Replays :meth:`~repro.hardware.rapl.RaplAccumulator.deposit_many`'s
    float arithmetic per row, vectorized across the config axis: the
    per-segment ``int(total / unit)`` truncation and residual update are
    elementwise IEEE-754 operations, so each row matches the scalar fold
    to the bit.  Zero-energy segments are exact no-ops in that
    arithmetic (the residual is always below one unit), matching
    ``advance_many``'s explicit zero-duration filtering.
    """
    unit = RAPL_ENERGY_UNIT_J
    n, segments = joules.shape
    residual = np.zeros(n)
    ticks = np.zeros(n, dtype=np.int64)
    columns = np.ascontiguousarray(joules.T)
    for s in range(segments):
        total = residual + columns[s]
        t = np.floor(total / unit)
        residual = total - t * unit
        ticks += t.astype(np.int64)
    return ticks, residual


def sweep_run(
    app: Application,
    points: Sequence,
    *,
    run_keys: Sequence[tuple],
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
    topology: NodeTopology | None = None,
    variability: NodeVariability | None = None,
    instrumented: bool = False,
    instrumentation=None,
) -> SweepReplay:
    """Replay every static configuration of a grid sweep in one pass.

    Parameters
    ----------
    points:
        The grid cells as
        :class:`~repro.execution.simulator.OperatingPoint` values
        (thread counts may differ per cell).
    run_keys:
        One noise-stream label per point, mixed into the keyed RNG
        exactly as the equivalent :meth:`ExecutionSimulator.run` call
        would.
    node_id, seed, node_seed, topology, variability:
        The fresh-node recipe every cell runs on: ``node_seed`` (the
        cluster seed) and ``node_id`` determine the node's variability
        factors unless ``variability`` overrides them; ``seed`` feeds
        the simulator's noise streams.

    Returns a :class:`SweepReplay` whose per-cell results are
    bit-identical to the one-config-at-a-time loop.
    """
    from repro.execution.simulator import (
        TIME_NOISE_SIGMA,
        InstanceLog,
        OperatingPoint,
        RunResult,
    )

    points = list(points)
    run_keys = list(run_keys)
    if len(points) != len(run_keys):
        raise WorkloadError(
            f"sweep points and run keys disagree: {len(points)} points, "
            f"{len(run_keys)} run keys"
        )
    if not points:
        return SweepReplay(points=(), results=(), end_states=())
    if instrumentation is not None:
        instrumented = True

    topo = topology or NodeTopology.default()
    num_sockets = topo.num_sockets
    node_seed = seed if node_seed is None else node_seed
    power_model = PowerModel(
        variability or NodeVariability.sample(node_id, seed=node_seed),
        num_sockets=topo.num_sockets,
        num_cores=topo.num_cores,
    )

    structure = _compile_structure(app, instrumented, instrumentation)
    num_configs = len(points)
    iterations = app.phase_iterations
    num_work = structure.num_work
    num_charges = len(structure.charges)

    # -- per-configuration schedule numbers (compile once, price per cell)
    evaluated: list[_ConfigEval] = []
    for point in points:
        threads = point.threads
        if not app.model.supports_thread_tuning:
            threads = app.default_threads
        if not 1 <= threads <= topo.num_cores:
            raise WorkloadError(f"invalid thread count: {threads}")
        effective = OperatingPoint(
            core_freq_ghz=_effective_frequency(
                point.core_freq_ghz,
                config.CORE_FREQ_MIN_GHZ,
                config.CORE_FREQ_MAX_GHZ,
                "core",
            ),
            uncore_freq_ghz=_effective_frequency(
                point.uncore_freq_ghz,
                config.UNCORE_FREQ_MIN_GHZ,
                config.UNCORE_FREQ_MAX_GHZ,
                "uncore",
            ),
            threads=threads,
        )
        evaluated.append(_evaluate_config(structure, power_model, effective))

    # -- keyed time noise: one batch over (config x work region x iteration)
    if num_work:
        seeds = np.empty((num_configs, num_work, iterations), dtype=np.uint64)
        for g, run_key in enumerate(run_keys):
            rows = seeds[g]
            for row, slot in enumerate(structure.work_slots):
                prefix = StreamPrefix(
                    "time",
                    node_id,
                    run_key,
                    structure.regions[slot].name,
                    seed=seed,
                )
                prefix.fill_iteration_seeds(rows[row])
        noise = batched_lognormal(seeds.reshape(-1), TIME_NOISE_SIGMA).reshape(
            num_configs, num_work, iterations
        )
        base_times = np.array([e.base_times for e in evaluated])
        durations_work = base_times[:, :, None] * noise  # (G, W, I)
    else:
        durations_work = np.empty((num_configs, 0, iterations))

    # -- the charge sequences, config-major (each row iteration-major) ----
    charge_node_w = np.array(
        [_charge_row(structure, e.node_w, e.probe_node_w) for e in evaluated]
    )
    charge_package_w = np.array(
        [_charge_row(structure, e.package_w, e.probe_package_w) for e in evaluated]
    )
    charge_dram_w = np.array(
        [_charge_row(structure, e.dram_w, e.probe_dram_w) for e in evaluated]
    )
    charge_matrix = np.empty((num_configs, iterations, num_charges))
    for c, (slot, is_probe) in enumerate(structure.charges):
        if is_probe:
            charge_matrix[:, :, c] = structure.probe_s[slot]
        else:
            charge_matrix[:, :, c] = durations_work[:, structure.work_index[slot], :]
    flat_durations = charge_matrix.reshape(num_configs, iterations * num_charges)
    flat_node_w = np.tile(charge_node_w, (1, iterations))

    # Per-row strict left folds: each row is the exact charge sequence the
    # per-config loop runs, so cumsum/accumulate rows match it to the bit.
    timeline = np.cumsum(
        np.concatenate(
            (np.zeros((num_configs, 1)), flat_durations), axis=1
        ),
        axis=1,
    )
    time_s = timeline[:, -1]
    if num_charges:
        node_energy = np.add.accumulate(flat_node_w * flat_durations, axis=1)[:, -1]
    else:
        node_energy = np.zeros(num_configs)

    probe_vector = structure.probe_per_iteration
    instrumentation_time_s = (
        float(np.add.accumulate(np.tile(probe_vector, iterations))[-1])
        if probe_vector.size
        else 0.0
    )

    # -- RAPL end state + CPU energy, replayed across the config axis ----
    package_j = np.tile(charge_package_w, (1, iterations)) * flat_durations / num_sockets
    dram_j = np.tile(charge_dram_w, (1, iterations)) * flat_durations / num_sockets
    package_ticks, package_residual = _rapl_fold(package_j)
    dram_ticks, dram_residual = _rapl_fold(dram_j)
    # The reader path: raw counters start at zero on a fresh node, each
    # socket receives the identical deposit sequence, and the per-domain
    # node totals sum socket by socket before package+DRAM combine.
    unit = RAPL_ENERGY_UNIT_J
    package_raw = package_ticks.astype(np.uint64) & np.uint64(_COUNTER_MASK)
    dram_raw = dram_ticks.astype(np.uint64) & np.uint64(_COUNTER_MASK)
    package_socket_j = package_raw.astype(np.float64) * unit
    dram_socket_j = dram_raw.astype(np.float64) * unit
    package_node_j = np.zeros(num_configs)
    dram_node_j = np.zeros(num_configs)
    for _ in range(num_sockets):
        package_node_j = package_node_j + package_socket_j
        dram_node_j = dram_node_j + dram_socket_j
    cpu_energy = package_node_j + dram_node_j

    results = []
    end_states = []
    for g in range(num_configs):
        eval_g = evaluated[g]
        result = RunResult(
            app_name=app.name,
            node_id=node_id,
            operating_point=eval_g.point,
            time_s=float(time_s[g]),
            node_energy_j=float(node_energy[g]) if num_charges else 0.0,
            cpu_energy_j=float(cpu_energy[g]),
            instrumentation_time_s=instrumentation_time_s,
            engine="sweep",
        )
        result.instances = InstanceLog.deferred(
            _instance_producer(
                structure, eval_g, durations_work[g], timeline[g], iterations
            )
        )
        results.append(result)
        raw_package = int(package_raw[g])
        raw_dram = int(dram_raw[g])
        end_states.append(
            MeterEndState(
                now_s=float(time_s[g]),
                hdeem_now_s=float(time_s[g]),
                core_freq_ghz=eval_g.point.core_freq_ghz,
                uncore_freq_ghz=eval_g.point.uncore_freq_ghz,
                rapl_package=tuple(
                    (raw_package, float(package_residual[g]))
                    for _ in range(num_sockets)
                ),
                rapl_dram=tuple(
                    (raw_dram, float(dram_residual[g]))
                    for _ in range(num_sockets)
                ),
            )
        )
    return SweepReplay(
        points=tuple(points),
        results=tuple(results),
        end_states=tuple(end_states),
    )


def _instance_producer(
    structure: _Structure,
    evaluated: _ConfigEval,
    durations_work: np.ndarray,
    timeline: np.ndarray,
    iterations: int,
):
    """Deferred per-cell row producer over the shared materialiser."""

    def produce() -> list:
        schedule = _config_schedule(structure, evaluated)
        state = _ReplayState(
            schedule=schedule,
            iterations=iterations,
            durations_work=durations_work,
            timeline=timeline,
        )
        return materialise_instances(state, evaluated.point)

    return produce
