"""Thread scaling and memory-bandwidth models.

Two scaling laws drive everything the tuning plugin observes when it
varies OpenMP threads and the uncore frequency:

* :func:`thread_speedup` — Amdahl's law with a linear serialization
  penalty per extra thread, giving interior thread optima for regions
  with synchronization overhead (the paper finds 16 threads optimal for
  Amg2013 and 20 for Mcbenchmark);
* :func:`memory_bandwidth_gbs` — achievable DRAM bandwidth, concave and
  saturating in the uncore frequency (raising UFS beyond the knee buys
  little bandwidth but cubic power — the source of interior UCF optima
  for memory-bound codes) and shared among threads.
"""

from __future__ import annotations

from repro import config
from repro.util.validation import check_fraction, check_positive


def thread_speedup(
    threads: int,
    parallel_fraction: float,
    thread_overhead: float,
) -> float:
    """Speedup of the compute portion with ``threads`` OpenMP threads.

    ``S(T) = 1 / ((1 - p) + p/T + sigma (T - 1))`` — Amdahl plus a
    serialization term that grows with the thread count (barriers, NUMA
    traffic, lock contention).
    """
    if threads <= 0:
        raise ValueError(f"threads must be positive, got {threads}")
    check_fraction("parallel_fraction", parallel_fraction)
    check_positive("thread_overhead", thread_overhead, strict=False)
    p = parallel_fraction
    denom = (1.0 - p) + p / threads + thread_overhead * (threads - 1)
    return 1.0 / denom


def uncore_bandwidth_shape(uncore_freq_ghz: float) -> float:
    """Fraction of peak bandwidth available at ``uncore_freq_ghz``.

    Saturating rational shape ``(1+k) x / (x + k)`` with
    ``x = f_u / f_max``: near-linear at low UFS, flat near the top.
    """
    check_positive("uncore_freq_ghz", uncore_freq_ghz)
    x = uncore_freq_ghz / config.UNCORE_FREQ_MAX_GHZ
    k = config.MEMBW_KNEE
    return (1.0 + k) * x / (x + k)


def thread_bandwidth_share(threads: int) -> float:
    """Fraction of peak bandwidth reachable with ``threads`` requesters.

    Normalised so a fully-populated node (all cores) reaches 1.0.
    """
    if threads <= 0:
        raise ValueError(f"threads must be positive, got {threads}")
    h = config.MEMBW_THREAD_HALF
    c = config.CORES_PER_NODE
    return (threads * (c + h)) / (c * (threads + h))


def memory_bandwidth_gbs(uncore_freq_ghz: float, threads: int) -> float:
    """Achievable DRAM bandwidth (GB/s) at the given operating point."""
    return (
        config.PEAK_MEMBW_GBS
        * uncore_bandwidth_shape(uncore_freq_ghz)
        * thread_bandwidth_share(threads)
    )
