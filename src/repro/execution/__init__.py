"""Execution simulation: timing, thread scaling, the simulator, jobs.

This package turns (application, operating point, node) into elapsed
time, meter readings and counter values — the role the physical testbed
plays in the paper.
"""

from repro.execution.speedup import thread_speedup, memory_bandwidth_gbs
from repro.execution.timing import RegionTiming, region_timing
from repro.execution.simulator import (
    ExecutionSimulator,
    OperatingPoint,
    RegionInstance,
    RunResult,
    ScheduleCompiler,
)
from repro.execution.controlled_replay import ControlSchedule, ScheduleCache
from repro.execution.sweep_replay import MeterEndState, SweepReplay, meter_end_state, sweep_run
from repro.execution.job import JobRecord, JobStep
from repro.execution.slurm import SlurmAccounting

__all__ = [
    "thread_speedup",
    "memory_bandwidth_gbs",
    "RegionTiming",
    "region_timing",
    "ExecutionSimulator",
    "OperatingPoint",
    "RegionInstance",
    "RunResult",
    "ScheduleCompiler",
    "ControlSchedule",
    "ScheduleCache",
    "MeterEndState",
    "SweepReplay",
    "meter_end_state",
    "sweep_run",
    "JobRecord",
    "JobStep",
    "SlurmAccounting",
]
