"""Fleet-scale replay: batch the application x node x controller axes.

PRs 2/4/5 vectorized every *within-run* axis — phases, compiled switch
schedules, the CF x UCF config grid — but a multi-app campaign still
executes runs one at a time through a Python loop: fresh node, compile,
draw noise, price, repeat.  This module batches that outer loop.  A
*fleet* is any mix of replay requests — different applications,
different (virtual) nodes, different controllers or none, instrumented
or not — and the kernel prices all of them in one pass:

**Phase 1 — per-member compilation.**  Uncontrolled members reuse the
PR-5 structural walk (:func:`~repro.execution.sweep_replay._compile_structure`
+ :func:`~repro.execution.sweep_replay._evaluate_config`), deduplicated
across members sharing an application build and node recipe.
Controller-driven members compile their switch schedule exactly like
the per-run engine (:func:`~repro.execution.controlled_replay.compile_schedule_by_walk`
via the controller's ``compile_schedule`` protocol) against a real
:class:`~repro.hardware.node.ComputeNode`, so RRL statistics and
MSR/DVFS side effects are byte-for-byte those of the per-run path.

**Phase 2 — one fleet-wide noise draw.**  Every member's keyed
(work region x iteration) seed matrix is flattened and concatenated,
one :func:`~repro.util.rng.batched_lognormal` call covers the whole
fleet, and the draws are sliced back per member.  Keyed streams are
drawn per seed independently, so the batch boundary cannot change any
member's noise.

**Phase 3/4 — zero-padded batch pricing.**  Each member's flattened
charge sequence becomes one row of a shared ``(members, max_charges)``
matrix, short rows padded with zeros.  Row-wise ``cumsum`` /
``np.add.accumulate`` / RAPL tick folds are strict left folds per row,
and zero-duration charges are exact no-ops in every one of those folds
(``x + 0.0 == x``; a zero-energy RAPL deposit never advances the tick
counter), so padding cannot perturb any member's numbers — the same
argument, one axis up, as PR 5's config-axis batching.

**Phase 5 — per-member materialisation.**  Each member yields the
exact ``RunResult`` (lazy instance log included) and meter/MSR
:class:`~repro.execution.sweep_replay.MeterEndState` its per-run
engine would produce on a fresh node.

The contract is **bit-identical per member**: permuting the fleet,
splitting it, or batching unrelated members together never changes any
member's payload (property-tested in
``tests/execution/test_fleet_replay_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import config
from repro.errors import WorkloadError
from repro.execution.controlled_replay import (
    control_noise_seeds,
    flatten_control_schedule,
    materialise_control_instances,
)
from repro.execution.sweep_replay import (
    _COUNTER_MASK,
    MeterEndState,
    _charge_row,
    _compile_structure,
    _effective_frequency,
    _evaluate_config,
    _instance_producer,
    _rapl_fold,
    meter_end_state,
)
from repro.hardware.node import ComputeNode
from repro.hardware.power import NodeVariability, PowerModel
from repro.hardware.rapl import RAPL_ENERGY_UNIT_J
from repro.hardware.topology import NodeTopology
from repro.util.rng import StreamPrefix, batched_lognormal


@dataclass
class FleetMember:
    """One replay request: an application run on a fresh virtual node.

    Every member describes the same experiment the per-run engines
    execute: build ``ComputeNode(node_id, seed=node_seed, topology=...,
    variability=...)``, optionally program ``point``'s frequencies,
    then ``ExecutionSimulator(node, seed=seed).run(app, threads=...,
    controller=..., instrumented=..., instrumentation=...,
    run_key=run_key)``.  ``point=None`` leaves the node at its default
    frequencies (the ``reset_to_default()`` start every analysis layer
    uses).  ``controller`` is a per-member instance — its statistics
    mutate exactly as in the per-run engines.
    """

    app: object
    run_key: tuple
    node_id: int = 0
    seed: int = config.DEFAULT_SEED
    node_seed: int | None = None
    topology: NodeTopology | None = None
    variability: NodeVariability | None = None
    point: object | None = None           #: OperatingPoint to program, or None
    threads: int | None = None
    controller: object | None = None
    instrumented: bool = False
    instrumentation: object | None = None


@dataclass
class FleetReplay:
    """Per-member results of one fleet pass, in member order.

    ``results[i]`` compares equal to the
    :class:`~repro.execution.simulator.RunResult` of member ``i``'s
    per-run execution; ``end_states[i]`` is the meter/MSR state that
    run would leave on its node.
    """

    members: tuple = ()
    results: tuple = ()
    end_states: tuple[MeterEndState, ...] = ()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]


@dataclass
class _MemberPlan:
    """One member's compiled, pre-noise state."""

    member: FleetMember
    kind: str                         #: "uncontrolled" | "controlled" | "fallback"
    threads: int = 0
    num_sockets: int = 0
    iterations: int = 0
    seeds: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.uint64))
    # uncontrolled
    structure: object = None
    evaluated: object = None
    # controlled
    schedule: object = None
    entry_point: object = None
    final_core_ghz: float = 0.0
    final_uncore_ghz: float = 0.0
    # fallback (executed eagerly through the per-run engines)
    result: object = None
    end_state: MeterEndState | None = None
    # post-noise flattened charge sequences
    flat_durations: np.ndarray | None = None
    flat_node_w: np.ndarray | None = None
    flat_package_w: np.ndarray | None = None
    flat_dram_w: np.ndarray | None = None
    flat: object = None               #: FlatControlSchedule (controlled only)


def _resolve_threads(member: FleetMember, topo: NodeTopology) -> int:
    """The per-run engines' thread resolution, member-local."""
    app = member.app
    threads = member.threads
    if threads is None and member.point is not None:
        threads = member.point.threads
    threads = threads or app.default_threads
    if not app.model.supports_thread_tuning:
        threads = app.default_threads
    if not 1 <= threads <= topo.num_cores:
        raise WorkloadError(f"invalid thread count: {threads}")
    return threads


def _member_seeds(
    structure, iterations: int, node_id: int, run_key: tuple, seed: int
) -> np.ndarray:
    """The (work region x iteration) seed matrix of one structural run."""
    seeds = np.empty((structure.num_work, iterations), dtype=np.uint64)
    for row, slot in enumerate(structure.work_slots):
        prefix = StreamPrefix(
            "time", node_id, run_key, structure.regions[slot].name, seed=seed
        )
        prefix.fill_iteration_seeds(seeds[row])
    return seeds


def _plan_member(member: FleetMember, structures: dict, models: dict) -> _MemberPlan:
    """Compile one member: structure walk or controller schedule."""
    from repro.execution.simulator import ExecutionSimulator, OperatingPoint

    app = member.app
    instrumented = member.instrumented or member.instrumentation is not None
    topo = member.topology or NodeTopology.default()
    node_seed = member.seed if member.node_seed is None else member.node_seed
    threads = _resolve_threads(member, topo)

    controller = member.controller
    if controller is not None:
        # Controller-driven member: the schedule walk needs a live node
        # (MSRs, DVFS/UFS logs, controller statistics all mutate exactly
        # as in the per-run engine).
        node = ComputeNode(
            member.node_id,
            seed=node_seed,
            topology=member.topology,
            variability=member.variability,
        )
        if member.point is not None:
            node.set_frequencies(
                member.point.core_freq_ghz, member.point.uncore_freq_ghz
            )
        entry_point = OperatingPoint(
            core_freq_ghz=node.core_freq_ghz,
            uncore_freq_ghz=node.uncore_freq_ghz,
            threads=threads,
        )
        compile_schedule = getattr(controller, "compile_schedule", None)
        schedule = None
        if compile_schedule is not None:
            schedule = compile_schedule(
                app,
                node,
                threads=threads,
                instrumented=instrumented,
                instrumentation=member.instrumentation,
            )
        if schedule is None:
            # The controller declined (or predates the protocol): run
            # this member through the per-run engines on the very node
            # we built — the walk left it untouched on decline.
            result = ExecutionSimulator(node, seed=member.seed).run(
                app,
                threads=member.threads
                if member.threads is not None
                else (member.point.threads if member.point is not None else None),
                controller=controller,
                instrumented=member.instrumented,
                instrumentation=member.instrumentation,
                run_key=member.run_key,
            )
            return _MemberPlan(
                member=member,
                kind="fallback",
                result=result,
                end_state=meter_end_state(node),
            )
        plan = _MemberPlan(
            member=member,
            kind="controlled",
            threads=threads,
            num_sockets=topo.num_sockets,
            iterations=schedule.iterations,
            schedule=schedule,
            entry_point=entry_point,
            final_core_ghz=node.core_freq_ghz,
            final_uncore_ghz=node.uncore_freq_ghz,
        )
        if schedule.num_work:
            plan.seeds = control_noise_seeds(
                schedule, member.node_id, member.run_key, member.seed
            )
        else:
            plan.seeds = np.empty((0, schedule.iterations), dtype=np.uint64)
        return plan

    # Uncontrolled member: pure structural pricing, no node required.
    filter_key = (
        None
        if member.instrumentation is None
        else frozenset(member.instrumentation.filtered)
    )
    skey = (id(app), instrumented, filter_key)
    structure = structures.get(skey)
    if structure is None:
        structure = _compile_structure(app, instrumented, member.instrumentation)
        structures[skey] = structure

    mkey = (member.node_id, node_seed, topo, member.variability)
    power_model = models.get(mkey)
    if power_model is None:
        power_model = PowerModel(
            member.variability or NodeVariability.sample(member.node_id, seed=node_seed),
            num_sockets=topo.num_sockets,
            num_cores=topo.num_cores,
        )
        models[mkey] = power_model

    if member.point is not None:
        core_ghz, uncore_ghz = member.point.core_freq_ghz, member.point.uncore_freq_ghz
    else:
        core_ghz = config.DEFAULT_CORE_FREQ_GHZ
        uncore_ghz = config.DEFAULT_UNCORE_FREQ_GHZ
    effective = OperatingPoint(
        core_freq_ghz=_effective_frequency(
            core_ghz, config.CORE_FREQ_MIN_GHZ, config.CORE_FREQ_MAX_GHZ, "core"
        ),
        uncore_freq_ghz=_effective_frequency(
            uncore_ghz, config.UNCORE_FREQ_MIN_GHZ, config.UNCORE_FREQ_MAX_GHZ, "uncore"
        ),
        threads=threads,
    )
    evaluated = _evaluate_config(structure, power_model, effective)
    iterations = app.phase_iterations
    plan = _MemberPlan(
        member=member,
        kind="uncontrolled",
        threads=threads,
        num_sockets=topo.num_sockets,
        iterations=iterations,
        structure=structure,
        evaluated=evaluated,
    )
    if structure.num_work:
        plan.seeds = _member_seeds(
            structure, iterations, member.node_id, member.run_key, member.seed
        )
    else:
        plan.seeds = np.empty((0, iterations), dtype=np.uint64)
    return plan


def _flatten_member(plan: _MemberPlan, noise: np.ndarray) -> np.ndarray | None:
    """Flatten one member's charge sequence; returns its noisy body
    durations (uncontrolled members) for instance materialisation."""
    if plan.kind == "controlled":
        flat = flatten_control_schedule(plan.schedule, noise)
        plan.flat = flat
        plan.flat_durations = flat.durations
        plan.flat_node_w = flat.node_w
        plan.flat_package_w = flat.package_w
        plan.flat_dram_w = flat.dram_w
        return None

    structure, evaluated = plan.structure, plan.evaluated
    iterations = plan.iterations
    num_charges = len(structure.charges)
    durations_work = evaluated.base_times[:, None] * noise
    charge_matrix = np.empty((iterations, num_charges))
    for c, (slot, is_probe) in enumerate(structure.charges):
        if is_probe:
            charge_matrix[:, c] = structure.probe_s[slot]
        else:
            charge_matrix[:, c] = durations_work[structure.work_index[slot], :]
    plan.flat_durations = charge_matrix.reshape(iterations * num_charges)
    plan.flat_node_w = np.tile(
        _charge_row(structure, evaluated.node_w, evaluated.probe_node_w), iterations
    )
    plan.flat_package_w = np.tile(
        _charge_row(structure, evaluated.package_w, evaluated.probe_package_w),
        iterations,
    )
    plan.flat_dram_w = np.tile(
        _charge_row(structure, evaluated.dram_w, evaluated.probe_dram_w), iterations
    )
    return durations_work


def fleet_run(members) -> FleetReplay:
    """Price every fleet member in one batched pass.

    Returns a :class:`FleetReplay` whose per-member results and end
    states are bit-identical to running each member individually
    through :class:`~repro.execution.simulator.ExecutionSimulator` on a
    fresh node.
    """
    from repro.execution.simulator import TIME_NOISE_SIGMA, InstanceLog, RunResult

    members = list(members)
    if not members:
        return FleetReplay()

    structures: dict = {}
    models: dict = {}
    plans = [_plan_member(m, structures, models) for m in members]
    priced = [p for p in plans if p.kind != "fallback"]

    # -- one keyed-noise draw spanning the whole fleet ---------------------
    # Each member's (work x iteration) seed matrix flattens row-major —
    # the exact order its per-run engine would reshape — and per-seed
    # independence makes the fleet-wide batch sliceable without drift.
    sizes = [p.seeds.size for p in priced]
    if any(sizes):
        all_seeds = np.concatenate([p.seeds.reshape(-1) for p in priced])
        all_noise = batched_lognormal(all_seeds, TIME_NOISE_SIGMA)
    else:
        all_noise = np.empty(0)
    offsets = np.concatenate(([0], np.cumsum(sizes)))

    durations_work_by_plan: list = []
    for i, plan in enumerate(priced):
        noise = all_noise[offsets[i]:offsets[i + 1]].reshape(plan.seeds.shape)
        durations_work_by_plan.append(_flatten_member(plan, noise))

    # -- zero-padded batch pricing -----------------------------------------
    num = len(priced)
    width = max((p.flat_durations.size for p in priced), default=0)
    durations = np.zeros((num, width))
    node_w = np.zeros((num, width))
    package_w = np.zeros((num, width))
    dram_w = np.zeros((num, width))
    for i, plan in enumerate(priced):
        n = plan.flat_durations.size
        durations[i, :n] = plan.flat_durations
        node_w[i, :n] = plan.flat_node_w
        package_w[i, :n] = plan.flat_package_w
        dram_w[i, :n] = plan.flat_dram_w

    # Row-wise strict left folds: each row is the exact charge sequence
    # the member's per-run engine prices, and trailing zero charges are
    # exact no-ops in every fold below.
    timeline = np.cumsum(
        np.concatenate((np.zeros((num, 1)), durations), axis=1), axis=1
    )
    time_s = timeline[:, -1]
    if width:
        node_energy = np.add.accumulate(node_w * durations, axis=1)[:, -1]
    else:
        node_energy = np.zeros(num)

    # RAPL end state + CPU energy (fresh accumulators; each socket sees
    # the identical per-charge deposit, node totals sum socket by socket).
    sockets_col = np.array([p.num_sockets for p in priced], dtype=float).reshape(-1, 1)
    package_j = package_w * durations / sockets_col
    dram_j = dram_w * durations / sockets_col
    package_ticks, package_residual = _rapl_fold(package_j)
    dram_ticks, dram_residual = _rapl_fold(dram_j)
    unit = RAPL_ENERGY_UNIT_J
    package_raw = package_ticks.astype(np.uint64) & np.uint64(_COUNTER_MASK)
    dram_raw = dram_ticks.astype(np.uint64) & np.uint64(_COUNTER_MASK)
    package_socket_j = package_raw.astype(np.float64) * unit
    dram_socket_j = dram_raw.astype(np.float64) * unit
    package_node_j = np.zeros(num)
    dram_node_j = np.zeros(num)
    socket_counts = np.array([p.num_sockets for p in priced])
    for s in range(int(socket_counts.max(initial=0))):
        live = socket_counts > s
        package_node_j[live] = package_node_j[live] + package_socket_j[live]
        dram_node_j[live] = dram_node_j[live] + dram_socket_j[live]
    cpu_energy = package_node_j + dram_node_j

    # -- per-member materialisation ----------------------------------------
    results_by_plan: dict[int, tuple] = {}
    for i, plan in enumerate(priced):
        member = plan.member
        raw_package = int(package_raw[i])
        raw_dram = int(dram_raw[i])
        rapl_package = tuple(
            (raw_package, float(package_residual[i])) for _ in range(plan.num_sockets)
        )
        rapl_dram = tuple(
            (raw_dram, float(dram_residual[i])) for _ in range(plan.num_sockets)
        )
        row = timeline[i]
        if plan.kind == "controlled":
            result = RunResult(
                app_name=member.app.name,
                node_id=member.node_id,
                operating_point=plan.entry_point,
                engine="fleet",
            )
            if plan.flat.durations.size:
                result.node_energy_j = float(
                    np.add.accumulate(plan.flat.node_w * plan.flat.durations)[-1]
                )
            if plan.flat.switches.size:
                result.switching_time_s = float(
                    np.add.accumulate(plan.flat.switches)[-1]
                )
            if plan.flat.probes.size:
                result.instrumentation_time_s = float(
                    np.add.accumulate(plan.flat.probes)[-1]
                )
            result.time_s = float(time_s[i])
            result.cpu_energy_j = float(cpu_energy[i])
            schedule, flat = plan.schedule, plan.flat
            result.instances = InstanceLog.deferred(
                lambda schedule=schedule, row=row, flat=flat: (
                    materialise_control_instances(schedule, row, flat)
                )
            )
            end_state = MeterEndState(
                now_s=float(time_s[i]),
                hdeem_now_s=float(time_s[i]),
                core_freq_ghz=plan.final_core_ghz,
                uncore_freq_ghz=plan.final_uncore_ghz,
                rapl_package=rapl_package,
                rapl_dram=rapl_dram,
            )
        else:
            structure, evaluated = plan.structure, plan.evaluated
            num_charges = len(structure.charges)
            probe_vector = structure.probe_per_iteration
            instrumentation_time_s = (
                float(np.add.accumulate(np.tile(probe_vector, plan.iterations))[-1])
                if probe_vector.size
                else 0.0
            )
            result = RunResult(
                app_name=member.app.name,
                node_id=member.node_id,
                operating_point=evaluated.point,
                time_s=float(time_s[i]),
                node_energy_j=float(node_energy[i]) if num_charges else 0.0,
                cpu_energy_j=float(cpu_energy[i]),
                instrumentation_time_s=instrumentation_time_s,
                engine="fleet",
            )
            result.instances = InstanceLog.deferred(
                _instance_producer(
                    structure,
                    evaluated,
                    durations_work_by_plan[i],
                    row,
                    plan.iterations,
                )
            )
            end_state = MeterEndState(
                now_s=float(time_s[i]),
                hdeem_now_s=float(time_s[i]),
                core_freq_ghz=evaluated.point.core_freq_ghz,
                uncore_freq_ghz=evaluated.point.uncore_freq_ghz,
                rapl_package=rapl_package,
                rapl_dram=rapl_dram,
            )
        results_by_plan[id(plan)] = (result, end_state)

    results = []
    end_states = []
    for plan in plans:
        if plan.kind == "fallback":
            results.append(plan.result)
            end_states.append(plan.end_state)
        else:
            result, end_state = results_by_plan[id(plan)]
            results.append(result)
            end_states.append(end_state)
    return FleetReplay(
        members=tuple(members), results=tuple(results), end_states=tuple(end_states)
    )
