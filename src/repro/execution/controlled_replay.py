"""Vectorized replay fast path for *controller-driven* (RRL) runs.

The paper's headline numbers come from controlled production runs: the
READEX RRL switches core/uncore frequency and thread count at region
enters.  Such a run is still fully determined before any time passes —
the RRL's decisions depend only on region names and the current hardware
state, never on durations or noise — so the run splits into two phases:

**Phase 1 — schedule compilation** (:func:`compile_schedule_by_walk`).
The region trace is walked symbolically against the controller: the real
``on_region_enter``/``on_region_exit`` hooks run against the live node's
frequency subsystem (MSRs, DVFS/UFS transition logs), but no simulated
time passes and no meter is charged.  The walk records, per iteration,
the ordered *charge sequence* — switch latencies, region bodies, probe
overheads, each with its operating point and power breakdown — i.e. the
switch schedule plus everything needed to price it.  Because controller
decisions are iteration-independent, the walk reaches a fixed point
after at most two iterations in practice: once an iteration starts from
the same (frequencies, pending transitions, controller state) as its
predecessor, its pattern — and every later iteration's — is already
known, and the controller's statistics are extrapolated instead of
re-walked.

**Phase 2 — segmented replay** (:func:`replay_controlled_run`).  The
trace is segmented by compiled pattern (*segments partition the
iterations*) and replayed with the PR-2 bulk kernels: keyed lognormal
noise through the batched RNG layer, meters through
:meth:`~repro.hardware.node.ComputeNode.advance_many`, energies through
strict-left-fold accumulations, instances materialised lazily.

The output is **bit-identical** to the recursive engine with the same
controller attached: same ``RunResult``, same
:class:`~repro.readex.rrl.RRLStatistics`, same keyed RNG streams, same
observable node state afterwards.  Controllers opt in through the
``compile_schedule`` protocol (see
:class:`~repro.execution.simulator.ScheduleCompiler`); the RRL and the
static-tuning controller implement it, foreign controllers keep the
recursive path.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import config
from repro.execution.timing import RegionTiming, region_timing
from repro.util.rng import StreamPrefix, batched_lognormal
from repro.workloads.application import Application
from repro.workloads.region import Region

#: Charge kinds, in the only order they can appear at one region enter.
SWITCH, BODY, PROBE = 0, 1, 2


@dataclass(frozen=True)
class _Charge:
    """One meter charge of the per-iteration sequence."""

    kind: int
    slot: int
    duration_s: float             #: fixed for SWITCH/PROBE, 0.0 for BODY
    node_w: float
    package_w: float
    dram_w: float


@dataclass
class _Slot:
    """One region of the flattened phase subtree (pre-order), under the
    operating point the walk observed for this pattern."""

    region: Region
    children: tuple[int, ...]
    has_work: bool
    probed: bool
    timing: RegionTiming | None
    base_time_s: float
    node_w: float                 #: body power
    cpu_fraction: float
    probe_s: float
    probe_node_w: float
    work_index: int               #: row in the work-region arrays, -1
    point: object                 #: OperatingPoint of the body
    charge_start: int             #: span in this pattern's charge sequence
    charge_end: int


@dataclass
class _Pattern:
    """The compiled charge plan of one distinct iteration shape."""

    slots: tuple[_Slot, ...]
    charges: tuple[_Charge, ...]
    fixed_durations: np.ndarray   #: (C,) switch/probe durations, 0 for bodies
    body_rows: np.ndarray         #: (C,) work-region row per charge, -1 fixed
    node_w: np.ndarray            #: (C,) power components per charge
    package_w: np.ndarray
    dram_w: np.ndarray
    switch_latencies: np.ndarray  #: SWITCH-charge durations, in order
    probe_overheads: np.ndarray   #: PROBE-charge durations, in order
    base_times: np.ndarray        #: (W,) body durations at this pattern's ops

    @property
    def num_switches(self) -> int:
        return int(self.switch_latencies.size)


@dataclass
class ControlSchedule:
    """Compiled switch schedule of one controlled run.

    ``spans`` segments the iteration axis: ``(pattern index, first
    iteration, count)`` triples in order, jointly covering every
    iteration exactly once.
    """

    patterns: list[_Pattern]
    spans: list[tuple[int, int, int]]
    post_order: tuple[int, ...]
    iterations: int
    num_work: int

    @property
    def region_enters(self) -> int:
        """Region enters over the whole run (every slot, every iteration)."""
        return sum(
            len(self.patterns[p].slots) * count for p, _start, count in self.spans
        )

    @property
    def switch_charges(self) -> int:
        """Hardware switch charges over the whole run."""
        return sum(
            self.patterns[p].num_switches * count for p, _start, count in self.spans
        )


class ScheduleCache:
    """Equality-keyed cache of compiled control schedules.

    A compiled schedule is a pure function of (application, controller
    configuration and state, node physics, entry hardware state,
    instrumentation) — everything *except* the run key, whose noise is
    applied at replay time.  Production sweeps repeat the same
    configuration many times (Table 6 averages five runs per variant),
    so caching the compile amortises the symbolic walk to once per
    configuration.  Applications are compared by value (registry builds
    return fresh but equal trees every call); entries are evicted FIFO
    beyond ``maxsize``.
    """

    def __init__(self, maxsize: int = 32):
        self._maxsize = maxsize
        self._entries: list[tuple[object, tuple, object]] = []

    def get(self, app, key: tuple):
        for cached_app, cached_key, value in self._entries:
            if cached_key == key and cached_app == app:
                return value
        return None

    def put(self, app, key: tuple, value) -> None:
        self._entries.append((app, key, value))
        if len(self._entries) > self._maxsize:
            del self._entries[0]


#: Per-owner caches, evicted when the owner is garbage-collected.
_OWNER_CACHES: dict[int, ScheduleCache] = {}


def schedule_cache_for(owner) -> ScheduleCache:
    """The schedule cache tied to ``owner``'s lifetime (e.g. a tuning
    model): shared by every controller built over the same object,
    released with it — without mutating or pickling along with it."""
    ident = id(owner)
    cache = _OWNER_CACHES.get(ident)
    if cache is None:
        cache = _OWNER_CACHES[ident] = ScheduleCache()
        weakref.finalize(owner, _OWNER_CACHES.pop, ident, None)
    return cache


class ScheduleCachePool:
    """Bounded pool of schedule caches keyed by *value* (for owners that
    are value objects, like a static operating point).  Oldest
    configurations are dropped beyond ``maxsize``."""

    def __init__(self, maxsize: int = 64):
        self._maxsize = maxsize
        self._caches: dict[object, ScheduleCache] = {}

    def for_value(self, value) -> ScheduleCache:
        cache = self._caches.get(value)
        if cache is None:
            if len(self._caches) >= self._maxsize:
                self._caches.pop(next(iter(self._caches)))
            cache = self._caches[value] = ScheduleCache()
        return cache


@dataclass
class CompiledControl:
    """One cached compile: the schedule plus everything a controller
    needs to reach its (and the node's) end-of-run state on reuse."""

    schedule: ControlSchedule
    controller_state: object      #: the controller's final internal state
    stats: object | None          #: opaque per-run statistics delta
    final_core_ghz: float
    final_uncore_ghz: float


def compile_or_reuse(
    cache: ScheduleCache, app, node, key: tuple, build
) -> CompiledControl:
    """Serve a compiled control from ``cache`` or build and store it.

    ``build()`` walks the live node (leaving it at the run's final
    frequencies with drained logs); a cache hit fast-forwards the node
    to that same state instead.
    """
    compiled = cache.get(app, key)
    if compiled is None:
        compiled = build()
        cache.put(app, key, compiled)
    else:
        fast_forward_node(
            node, compiled.final_core_ghz, compiled.final_uncore_ghz
        )
    return compiled


def fast_forward_node(node, core_freq_ghz: float, uncore_freq_ghz: float) -> None:
    """Bring ``node``'s frequency subsystem to a cached walk's end state.

    Equivalent to re-walking the run: the recursive engine leaves the
    node at its final frequencies with drained transition logs, so a
    cache hit programs those frequencies through the regular controllers
    (identical MSR contents) and clears the logs.
    """
    node.set_frequencies(core_freq_ghz, uncore_freq_ghz)
    node.dvfs.log.clear()
    node.ufs.log.clear()


def schedule_cache_key(
    node, *, threads: int, instrumented: bool, instrumentation
) -> tuple:
    """The run-invariant part of a schedule cache key.

    Captures everything of the *environment* a compiled schedule bakes
    in: node physics (topology plus the power model's variability
    factors — the constructor accepts an explicit ``variability``
    override, so id/seed alone would not pin the physics), entry
    frequencies, pending transition-log state (only emptiness matters —
    the charged latency is per-domain, not per-transition) and the
    instrumentation configuration.  Controller state is the caller's to
    append.
    """
    filter_key = (
        None
        if instrumentation is None
        else frozenset(instrumentation.filtered)
    )
    return (
        threads,
        instrumented,
        filter_key,
        node.node_id,
        node.seed,
        repr(node.topology),
        node.power_model.variability,
        node.core_freq_ghz,
        node.uncore_freq_ghz,
        node.dvfs.log.count > 0,
        node.ufs.log.count > 0,
    )


def compile_schedule_by_walk(
    controller,
    app: Application,
    node,
    *,
    threads: int,
    instrumented: bool,
    instrumentation,
    state_key: Callable[[], object],
    snapshot_stats: Callable[[], object] | None = None,
    extrapolate_stats: Callable[[object, object, int], None] | None = None,
) -> ControlSchedule:
    """Walk the region trace once against ``controller`` and compile it.

    The controller's real enter/exit hooks run against ``node``'s
    frequency subsystem, so MSR programming, quantization and transition
    logging are exactly the recursive engine's; only meters and the
    clock stay untouched.  After the walk the node is at its end-of-run
    frequencies with cleared transition logs — the state recursion would
    leave behind.

    ``state_key`` fingerprints the controller's internal state; once an
    iteration begins from the same (frequencies, pending transitions,
    state-key) as its predecessor, the remaining iterations reuse the
    last pattern and ``extrapolate_stats(before, after, copies)`` is
    asked to scale that pattern's statistics delta instead of walking.
    Controllers whose decisions depend on the iteration *index* must not
    use this compiler.
    """
    iterations = app.phase_iterations
    patterns: list[_Pattern] = []
    spans: list[tuple[int, int, int]] = []
    prev_key = None
    last_before = last_after = None
    walked = 0
    while walked < iterations:
        key = (
            node.core_freq_ghz,
            node.uncore_freq_ghz,
            node.dvfs.log.count,
            node.ufs.log.count,
            state_key(),
        )
        if prev_key is not None and key == prev_key:
            remaining = iterations - walked
            index, start, count = spans[-1]
            spans[-1] = (index, start, count + remaining)
            if extrapolate_stats is not None:
                extrapolate_stats(last_before, last_after, remaining)
            break
        last_before = snapshot_stats() if snapshot_stats is not None else None
        pattern = _walk_iteration(
            controller, app, node, threads, walked, instrumented, instrumentation
        )
        last_after = snapshot_stats() if snapshot_stats is not None else None
        patterns.append(pattern)
        spans.append((len(patterns) - 1, walked, 1))
        prev_key = key
        walked += 1

    post_order: list[int] = []
    slots = patterns[0].slots

    def order(index: int) -> None:
        for child in slots[index].children:
            order(child)
        post_order.append(index)

    order(0)
    return ControlSchedule(
        patterns=patterns,
        spans=spans,
        post_order=tuple(post_order),
        iterations=iterations,
        num_work=sum(1 for s in slots if s.has_work),
    )


def _walk_iteration(
    controller,
    app: Application,
    node,
    threads: int,
    iteration: int,
    instrumented: bool,
    instrumentation,
) -> _Pattern:
    """One symbolic pre-order walk, mirroring ``_exec_region`` minus the
    meters: controller hooks fire for real, switching latencies are read
    off the live transition logs, timings/powers are evaluated at the
    frequencies the node holds at that moment."""
    from repro.execution.simulator import (
        OperatingPoint,
        pending_switch_latency_s,
        probe_overhead_s,
    )

    slots: list[_Slot | None] = []
    charges: list[_Charge] = []
    work_count = 0

    def drain_switches(slot_index: int, frame_threads: int) -> None:
        dvfs_n = node.dvfs.log.count
        ufs_n = node.ufs.log.count
        node.dvfs.log.clear()
        node.ufs.log.clear()
        latency = pending_switch_latency_s(dvfs_n, ufs_n)
        if latency > 0:
            breakdown = node.compute_power(
                active_threads=frame_threads,
                core_activity=config.STALLED_CORE_ACTIVITY,
                uncore_activity=0.0,
                membw_gbs=0.0,
            )
            charges.append(
                _Charge(
                    kind=SWITCH,
                    slot=slot_index,
                    duration_s=latency,
                    node_w=breakdown.node_w,
                    package_w=breakdown.rapl_package_w,
                    dram_w=breakdown.rapl_dram_w,
                )
            )

    def visit(region: Region, frame_threads: int) -> int:
        nonlocal work_count
        index = len(slots)
        slots.append(None)
        new_threads = controller.on_region_enter(region, iteration, node)
        if new_threads:
            frame_threads = new_threads
        drain_switches(index, frame_threads)
        charge_start = len(charges)
        core_ghz = node.core_freq_ghz
        uncore_ghz = node.uncore_freq_ghz
        probed = instrumented and (
            instrumentation is None or instrumentation.is_instrumented(region)
        )
        timing = None
        base_time = node_w = cpu_fraction = 0.0
        work_index = -1
        if region.has_work:
            timing = region_timing(
                region.characteristics,
                threads=frame_threads,
                core_freq_ghz=core_ghz,
                uncore_freq_ghz=uncore_ghz,
            )
            breakdown = node.compute_power(
                active_threads=frame_threads,
                core_activity=timing.core_activity,
                uncore_activity=timing.uncore_activity,
                membw_gbs=timing.membw_gbs,
            )
            base_time = timing.time_s
            node_w = breakdown.node_w
            cpu_fraction = breakdown.cpu_w / breakdown.node_w
            work_index = work_count
            work_count += 1
            charges.append(
                _Charge(
                    kind=BODY,
                    slot=index,
                    duration_s=0.0,
                    node_w=breakdown.node_w,
                    package_w=breakdown.rapl_package_w,
                    dram_w=breakdown.rapl_dram_w,
                )
            )
        probe_s = probe_node_w = 0.0
        if probed:
            breakdown = node.compute_power(
                active_threads=frame_threads,
                core_activity=1.0,
                uncore_activity=0.1,
                membw_gbs=0.0,
            )
            probe_s = probe_overhead_s(region)
            probe_node_w = breakdown.node_w
            charges.append(
                _Charge(
                    kind=PROBE,
                    slot=index,
                    duration_s=probe_s,
                    node_w=breakdown.node_w,
                    package_w=breakdown.rapl_package_w,
                    dram_w=breakdown.rapl_dram_w,
                )
            )
        point = OperatingPoint(
            core_freq_ghz=core_ghz,
            uncore_freq_ghz=uncore_ghz,
            threads=frame_threads,
        )
        children = tuple(visit(child, frame_threads) for child in region.children)
        charge_end = len(charges)
        controller.on_region_exit(region, iteration, node)
        drain_switches(index, frame_threads)
        slots[index] = _Slot(
            region=region,
            children=children,
            has_work=region.has_work,
            probed=probed,
            timing=timing,
            base_time_s=base_time,
            node_w=node_w,
            cpu_fraction=cpu_fraction,
            probe_s=probe_s,
            probe_node_w=probe_node_w,
            work_index=work_index,
            point=point,
            charge_start=charge_start,
            charge_end=charge_end,
        )
        return index

    visit(app.phase, threads)
    compiled = tuple(slots)  # type: ignore[arg-type]

    num_charges = len(charges)
    fixed_durations = np.zeros(num_charges)
    body_rows = np.full(num_charges, -1, dtype=np.intp)
    node_w = np.empty(num_charges)
    package_w = np.empty(num_charges)
    dram_w = np.empty(num_charges)
    for c, charge in enumerate(charges):
        node_w[c] = charge.node_w
        package_w[c] = charge.package_w
        dram_w[c] = charge.dram_w
        if charge.kind == BODY:
            body_rows[c] = compiled[charge.slot].work_index
        else:
            fixed_durations[c] = charge.duration_s
    return _Pattern(
        slots=compiled,
        charges=tuple(charges),
        fixed_durations=fixed_durations,
        body_rows=body_rows,
        node_w=node_w,
        package_w=package_w,
        dram_w=dram_w,
        switch_latencies=np.array(
            [c.duration_s for c in charges if c.kind == SWITCH], dtype=float
        ),
        probe_overheads=np.array(
            [c.duration_s for c in charges if c.kind == PROBE], dtype=float
        ),
        base_times=np.array(
            [s.base_time_s for s in compiled if s.has_work], dtype=float
        ),
    )


@dataclass
class FlatControlSchedule:
    """One run's compiled charges, flattened to run-long sequences.

    The pricing view of a :class:`ControlSchedule` under one noise
    matrix: every span's charge plan tiled over its iterations and
    concatenated in execution order.  Shared by the per-run controlled
    replay and the fleet kernel (:mod:`repro.execution.fleet_replay`),
    which prices many members' flat sequences side by side.
    """

    durations: np.ndarray         #: (L,) every charge duration, in order
    node_w: np.ndarray            #: (L,) power components per charge
    package_w: np.ndarray
    dram_w: np.ndarray
    switches: np.ndarray          #: SWITCH-charge durations, in order
    probes: np.ndarray            #: PROBE-charge durations, in order
    span_offsets: tuple[int, ...]
    span_durations: tuple         #: per span: (W, count) noisy bodies | None


def flatten_control_schedule(
    schedule: ControlSchedule, noise: np.ndarray
) -> FlatControlSchedule:
    """Flatten every segment's charges into one run-long sequence.

    ``noise`` is the run's global (work region x iteration) lognormal
    matrix; spans slice it by iteration range, so the flattened body
    durations consume exactly the keyed streams the recursive engine
    would draw one at a time.
    """
    flat_parts: list[np.ndarray] = []
    power_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    switch_parts: list[np.ndarray] = []
    probe_parts: list[np.ndarray] = []
    span_offsets: list[int] = []
    span_durations: list[np.ndarray | None] = []
    offset = 0
    for index, start, count in schedule.spans:
        pattern = schedule.patterns[index]
        num_charges = len(pattern.charges)
        matrix = np.tile(pattern.fixed_durations, (count, 1))
        durations_work = None
        if schedule.num_work:
            durations_work = pattern.base_times[:, None] * noise[:, start:start + count]
            body = pattern.body_rows >= 0
            matrix[:, body] = durations_work[pattern.body_rows[body]].T
        flat_parts.append(matrix.reshape(-1))
        power_parts.append(
            (
                np.tile(pattern.node_w, count),
                np.tile(pattern.package_w, count),
                np.tile(pattern.dram_w, count),
            )
        )
        switch_parts.append(np.tile(pattern.switch_latencies, count))
        probe_parts.append(np.tile(pattern.probe_overheads, count))
        span_offsets.append(offset)
        span_durations.append(durations_work)
        offset += count * num_charges
    return FlatControlSchedule(
        durations=np.concatenate(flat_parts),
        node_w=np.concatenate([p[0] for p in power_parts]),
        package_w=np.concatenate([p[1] for p in power_parts]),
        dram_w=np.concatenate([p[2] for p in power_parts]),
        switches=np.concatenate(switch_parts),
        probes=np.concatenate(probe_parts),
        span_offsets=tuple(span_offsets),
        span_durations=tuple(span_durations),
    )


def control_noise_seeds(schedule: ControlSchedule, node_id, run_key, seed):
    """The (work region x iteration) seed matrix of one controlled run."""
    seeds = np.empty((schedule.num_work, schedule.iterations), dtype=np.uint64)
    for slot in schedule.patterns[0].slots:
        if slot.has_work:
            prefix = StreamPrefix(
                "time", node_id, run_key, slot.region.name, seed=seed
            )
            seeds[slot.work_index] = prefix.seeds_for_iterations(
                schedule.iterations
            )
    return seeds


def materialise_control_instances(
    schedule: ControlSchedule,
    timeline: np.ndarray,
    flat: FlatControlSchedule,
) -> list:
    """Derive every :class:`RegionInstance` row of one controlled run.

    ``timeline`` is the simulated clock after each flattened charge
    (with a leading entry time); only positions within the run's real
    charge count are read, so a row sliced out of a padded fleet matrix
    works exactly like the per-run vector.
    """
    from repro.execution.simulator import RegionInstance

    rows: list = []
    append = rows.append
    for (index, start, count), span_offset, durations_work in zip(
        schedule.spans, flat.span_offsets, flat.span_durations
    ):
        pattern = schedule.patterns[index]
        slots = pattern.slots
        num_slots = len(slots)
        num_charges = len(pattern.charges)
        offsets = span_offset + np.arange(count) * num_charges
        enter_index = np.array([s.charge_start for s in slots])
        exit_index = np.array([s.charge_end for s in slots])
        enter = timeline[offsets[:, None] + enter_index[None, :]]
        total_time = timeline[offsets[:, None] + exit_index[None, :]] - enter

        zeros = np.zeros(count)
        body_time: list = [None] * num_slots
        body_energy: list = [None] * num_slots
        for k, slot in enumerate(slots):
            time = energy = None
            if slot.has_work:
                time = durations_work[slot.work_index]
                energy = slot.node_w * time
            if slot.probed:
                probe_joules = slot.probe_node_w * slot.probe_s
                time = (
                    time + slot.probe_s
                    if time is not None
                    else np.full(count, slot.probe_s)
                )
                energy = (
                    energy + probe_joules
                    if energy is not None
                    else np.full(count, probe_joules)
                )
            body_time[k] = time if time is not None else zeros
            body_energy[k] = energy if energy is not None else zeros

        # Inclusive energies: children accumulate in child order, own
        # body first — the recursive engine's exact expression tree.
        # Switch charges never enter instance energies (the recursion
        # accounts them to the run only).
        inclusive: list = [None] * num_slots
        for k in range(num_slots - 1, -1, -1):
            children_energy = None
            for child in slots[k].children:
                children_energy = (
                    inclusive[child]
                    if children_energy is None
                    else children_energy + inclusive[child]
                )
            if children_energy is None:
                children_energy = 0.0
            inclusive[k] = body_energy[k] + children_energy

        cpu_energy: list = [None] * num_slots
        for k, slot in enumerate(slots):
            if slot.has_work:
                cpu_energy[k] = np.where(
                    body_time[k] > 0, body_energy[k] * slot.cpu_fraction, 0.0
                )
            else:
                cpu_energy[k] = zeros

        for i in range(count):
            iteration = start + i
            for k in schedule.post_order:
                slot = slots[k]
                append(
                    RegionInstance(
                        region_name=slot.region.name,
                        iteration=iteration,
                        start_s=float(enter[i, k]),
                        time_s=float(total_time[i, k]),
                        node_energy_j=float(inclusive[k][i]),
                        cpu_energy_j=float(cpu_energy[k][i]),
                        operating_point=slot.point,
                        timing=slot.timing,
                    )
                )
    return rows


def replay_controlled_run(
    sim,
    app: Application,
    controller,
    *,
    threads: int,
    instrumented: bool,
    instrumentation,
    run_key: tuple,
):
    """Compile the controller's switch schedule and replay it in bulk.

    Returns the filled ``RunResult`` (``engine="replay"``), or ``None``
    when the controller's ``compile_schedule`` declines — in which case
    neither the controller nor the node has been touched and the caller
    falls back to the recursive engine.
    """
    from repro.execution.simulator import (
        TIME_NOISE_SIGMA,
        InstanceLog,
        OperatingPoint,
        RunResult,
    )

    node = sim.node
    entry_point = OperatingPoint(
        core_freq_ghz=node.core_freq_ghz,
        uncore_freq_ghz=node.uncore_freq_ghz,
        threads=threads,
    )
    schedule = controller.compile_schedule(
        app,
        node,
        threads=threads,
        instrumented=instrumented,
        instrumentation=instrumentation,
    )
    if schedule is None:
        return None
    result = RunResult(
        app_name=app.name,
        node_id=node.node_id,
        operating_point=entry_point,
        engine="replay",
    )

    iterations = schedule.iterations
    start_time = node.now_s
    start_cpu_j = node.rapl.read_cpu_energy_joules()

    # -- keyed time noise, batched over (work region x iteration) ----------
    # The streams are keyed by region name and iteration only — never by
    # operating point — so one global matrix serves every segment.
    if schedule.num_work:
        seeds = control_noise_seeds(schedule, node.node_id, run_key, sim.seed)
        noise = batched_lognormal(seeds.reshape(-1), TIME_NOISE_SIGMA).reshape(
            schedule.num_work, iterations
        )
    else:
        noise = np.empty((0, iterations))

    flat = flatten_control_schedule(schedule, noise)

    # Simulated clock after each charge; cumsum is a strict left fold, so
    # every value matches the recursive engine's repeated ``+=``.
    timeline = np.cumsum(np.concatenate(([start_time], flat.durations)))

    node.advance_many(flat.durations, flat.node_w, flat.package_w, flat.dram_w)

    if flat.durations.size:
        flat_joules = flat.node_w * flat.durations
        result.node_energy_j = float(np.add.accumulate(flat_joules)[-1])
    if flat.switches.size:
        result.switching_time_s = float(np.add.accumulate(flat.switches)[-1])
    if flat.probes.size:
        result.instrumentation_time_s = float(np.add.accumulate(flat.probes)[-1])

    result.time_s = node.now_s - start_time
    result.cpu_energy_j = node.rapl.read_cpu_energy_joules() - start_cpu_j

    result.instances = InstanceLog.deferred(
        lambda: materialise_control_instances(schedule, timeline, flat)
    )
    return result
