"""The execution simulator: runs applications on simulated nodes.

This is the stand-in for "actually running the benchmark on Taurus".
Given an :class:`~repro.workloads.application.Application`, an operating
point and a :class:`~repro.hardware.node.ComputeNode`, the simulator

* walks the region tree once per phase iteration,
* lets an optional *controller* (the RRL, or a PCP under PTF) switch
  frequencies/threads at region boundaries — charging the hardware
  transition latencies,
* charges Score-P probe overhead when the run is instrumented,
* advances the node's meters (RAPL, HDEEM) with the ground-truth power,
* reports per-region-instance timings and energies.

Controllers and listeners observe the run exactly like their real
counterparts: through region enter/exit callbacks.

Two execution engines produce the same results:

* the **generic recursive engine** in this module — region-by-region
  tree walking with callbacks, required whenever listeners observe
  events or a controller cannot pre-declare its switching behaviour;
* the **vectorized replay engine** — for uncontrolled runs
  (:mod:`repro.execution.replay`) the region schedule is compiled once
  and all ``phase_iterations x instances`` replay in bulk; controlled
  runs whose controller implements the :class:`ScheduleCompiler`
  protocol (the RRL and the static controller do) compile their switch
  schedule the same way and replay segment-by-segment
  (:mod:`repro.execution.controlled_replay`).  Both paths are
  bit-identical to the recursion and an order of magnitude faster.

:meth:`ExecutionSimulator.run` dispatches automatically; the
``fast_path`` parameter overrides the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro import config
from repro.counters.generation import CounterGenerator, MeasurementContext
from repro.errors import WorkloadError
from repro.execution.timing import RegionTiming, region_timing
from repro.hardware.node import ComputeNode
from repro.util.rng import rng_for
from repro.workloads.application import Application
from repro.workloads.region import Region

#: Multiplicative run-to-run execution-time noise.
TIME_NOISE_SIGMA = 0.0025


def probe_overhead_s(region: "Region") -> float:
    """Instrumentation overhead of one region call: enter+exit probes
    plus the unfilterable internal events (OpenMP/MPI wrappers).

    Shared by every engine (recursive, uncontrolled replay, controlled
    replay) so the probe model cannot drift between them.
    """
    events = 2 + region.internal_events
    return events * region.calls_per_phase * config.SCOREP_PROBE_OVERHEAD_S


def pending_switch_latency_s(dvfs_transitions: int, ufs_transitions: int) -> float:
    """Hardware latency charged for pending frequency transitions.

    One DVFS and one UFS latency at most per check, however many
    cores/sockets switched — shared by the recursive engine and the
    controlled-replay schedule compiler.
    """
    latency = 0.0
    if dvfs_transitions:
        latency += config.DVFS_TRANSITION_LATENCY_S
    if ufs_transitions:
        latency += config.UFS_TRANSITION_LATENCY_S
    return latency


@dataclass(frozen=True)
class OperatingPoint:
    """One hardware configuration (the tuning parameter tuple)."""

    core_freq_ghz: float = config.DEFAULT_CORE_FREQ_GHZ
    uncore_freq_ghz: float = config.DEFAULT_UNCORE_FREQ_GHZ
    threads: int = config.DEFAULT_OPENMP_THREADS

    def __str__(self) -> str:
        return (
            f"{self.threads}T {self.core_freq_ghz:.1f}|"
            f"{self.uncore_freq_ghz:.1f} GHz (CF|UCF)"
        )


class RunController(Protocol):
    """Hook interface for runtime tuning (implemented by the RRL)."""

    def on_region_enter(self, region: Region, iteration: int, node: ComputeNode) -> int:
        """Called before a region body runs; returns the new thread count
        to use for the region (or the current one)."""

    def on_region_exit(self, region: Region, iteration: int, node: ComputeNode) -> None:
        """Called after a region body finishes."""


class ScheduleCompiler(Protocol):
    """Opt-in protocol for controllers whose switching is compilable.

    A controller implementing ``compile_schedule`` promises that its
    decisions depend only on region names and the hardware state it
    observes — never on simulated time, noise or the iteration index —
    so the run's switch schedule can be compiled up front and replayed
    through the vectorized fast path
    (:mod:`repro.execution.controlled_replay`).  Returning ``None``
    declines the fast path for this run; the implementation must leave
    the controller and node untouched in that case, and the simulator
    falls back to the recursive engine.
    """

    def compile_schedule(
        self, app, node: ComputeNode, *, threads: int, instrumented: bool,
        instrumentation,
    ):
        """Compile the run's switch schedule, or return ``None``."""


class RunListener(Protocol):
    """Observation interface (implemented by Score-P trace/profile layers)."""

    def on_enter(self, region: Region, iteration: int, time_s: float) -> None: ...

    def on_exit(
        self,
        region: Region,
        iteration: int,
        time_s: float,
        metrics: dict[str, float],
    ) -> None: ...


@dataclass(frozen=True)
class RegionInstance:
    """Ground truth for one executed region instance."""

    region_name: str
    iteration: int
    start_s: float
    time_s: float
    node_energy_j: float
    cpu_energy_j: float
    operating_point: OperatingPoint
    timing: RegionTiming | None


class InstanceLog:
    """Append-only sequence of :class:`RegionInstance` rows.

    Behaves like a list (iteration, indexing, equality against lists)
    with two performance features on top:

    * rows can be *deferred*: the replay fast path registers a producer
      callback and the rows materialise only when first accessed, so
      runs whose instances are never inspected (energy sweeps, static
      searches) skip building them entirely;
    * per-region lookups are served from a name index built on first
      use and maintained across :meth:`append`, turning the previous
      full-scan-per-call access pattern into a dict hit.
    """

    __slots__ = ("_items", "_producer", "_index")

    def __init__(self, items=None):
        self._items: list[RegionInstance] = list(items) if items is not None else []
        self._producer = None
        self._index: dict[str, list[RegionInstance]] | None = None

    @classmethod
    def deferred(cls, producer) -> "InstanceLog":
        """A log whose rows come from ``producer()`` on first access."""
        log = cls()
        log._producer = producer
        return log

    def _materialise(self) -> None:
        if self._producer is not None:
            items = self._producer()
            self._producer = None  # only after success, so a failed
            self._items = items    # producer run can be retried
            self._index = None

    def append(self, instance: RegionInstance) -> None:
        self._materialise()
        self._items.append(instance)
        if self._index is not None:
            self._index.setdefault(instance.region_name, []).append(instance)

    def by_region(self, name: str) -> list[RegionInstance]:
        """All rows of one region, in execution order."""
        self._materialise()
        if self._index is None:
            index: dict[str, list[RegionInstance]] = {}
            for instance in self._items:
                index.setdefault(instance.region_name, []).append(instance)
            self._index = index
        return list(self._index.get(name, ()))

    def __len__(self) -> int:
        self._materialise()
        return len(self._items)

    def __iter__(self):
        self._materialise()
        return iter(self._items)

    def __getitem__(self, item):
        self._materialise()
        return self._items[item]

    def __eq__(self, other) -> bool:
        if isinstance(other, InstanceLog):
            other._materialise()
            other = other._items
        if isinstance(other, (list, tuple)):
            self._materialise()
            return self._items == list(other)
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        if self._producer is not None:
            return "InstanceLog(<deferred>)"
        return f"InstanceLog({len(self._items)} instances)"

    def __reduce__(self):
        self._materialise()
        return (InstanceLog, (self._items,))


@dataclass
class RunResult:
    """Outcome of one application run on one node.

    ``engine`` records which execution path produced the result
    (``"generic"`` recursion or the vectorized ``"replay"`` fast path);
    it is excluded from equality because the two paths are bit-identical.
    """

    app_name: str
    node_id: int
    operating_point: OperatingPoint
    time_s: float = 0.0
    node_energy_j: float = 0.0
    cpu_energy_j: float = 0.0
    switching_time_s: float = 0.0
    instrumentation_time_s: float = 0.0
    instances: InstanceLog = field(default_factory=InstanceLog)
    engine: str = field(default="generic", compare=False)

    def region_instances(self, name: str) -> list[RegionInstance]:
        return self.instances.by_region(name)

    def region_time_s(self, name: str) -> float:
        return sum(i.time_s for i in self.region_instances(name))

    def region_energy_j(self, name: str) -> float:
        return sum(i.node_energy_j for i in self.region_instances(name))

    @property
    def mean_power_w(self) -> float:
        return self.node_energy_j / self.time_s if self.time_s > 0 else 0.0


class ExecutionSimulator:
    """Runs applications on a node, producing ground-truth results."""

    def __init__(self, node: ComputeNode, *, seed: int = config.DEFAULT_SEED):
        self.node = node
        self.seed = seed
        self._counter_generator = CounterGenerator(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        app: Application,
        *,
        threads: int | None = None,
        controller: RunController | None = None,
        instrumented: bool = False,
        instrumentation=None,
        listeners: tuple[RunListener, ...] = (),
        collect_counters: bool = False,
        run_key: tuple = (),
        fast_path: bool | None = None,
    ) -> RunResult:
        """Execute ``app`` once on this simulator's node.

        Parameters
        ----------
        threads:
            OpenMP thread count; defaults to the application default.
            MPI-only codes always run with their fixed configuration.
        controller:
            Optional runtime tuner called at region boundaries (RRL).
        instrumented:
            Whether Score-P probes are compiled in (adds overhead).
        listeners:
            Trace/profile observers; they imply ``instrumented``.
        instrumentation:
            Optional object with an ``is_instrumented(region) -> bool``
            method (see :mod:`repro.scorep.instrumentation`); when given,
            probe overhead and listener events apply only to regions it
            reports as instrumented.  Implies ``instrumented=True``.
        collect_counters:
            Whether to derive PAPI counter values for listener metrics.
        run_key:
            Label mixed into the noise streams so repeated runs differ
            reproducibly.
        fast_path:
            Engine selection.  ``None`` (default) picks automatically:
            runs without listeners replay through a vectorized fast
            path — uncontrolled runs via :mod:`repro.execution.replay`,
            controlled runs whose controller implements
            :class:`ScheduleCompiler` via
            :mod:`repro.execution.controlled_replay` — both
            bit-identical to the recursive engine.  Observed runs and
            foreign controllers use the generic recursion.  ``False``
            forces the generic engine, ``True`` demands the fast path
            and raises if the run is not eligible.
        """
        if listeners or instrumentation is not None:
            instrumented = True
        threads = threads if threads is not None else app.default_threads
        if not app.model.supports_thread_tuning:
            threads = app.default_threads
        if not 1 <= threads <= self.node.topology.num_cores:
            raise WorkloadError(f"invalid thread count: {threads}")

        compiler = getattr(controller, "compile_schedule", None)
        eligible = not listeners and (controller is None or compiler is not None)
        if fast_path is None:
            attempt_fast = eligible
        elif fast_path and not eligible:
            raise WorkloadError(
                "fast_path requires a run without listeners whose controller "
                "(if any) implements the compile_schedule protocol"
            )
        else:
            attempt_fast = fast_path
        if attempt_fast:
            if controller is None:
                from repro.execution.replay import replay_run

                return replay_run(
                    self,
                    app,
                    threads=threads,
                    instrumented=instrumented,
                    instrumentation=instrumentation,
                    run_key=run_key,
                )
            from repro.execution.controlled_replay import replay_controlled_run

            result = replay_controlled_run(
                self,
                app,
                controller,
                threads=threads,
                instrumented=instrumented,
                instrumentation=instrumentation,
                run_key=run_key,
            )
            if result is not None:
                return result
            if fast_path:
                raise WorkloadError(
                    "controller declined to compile a switch schedule for "
                    "the demanded fast path"
                )
            # declined: fall through to the recursive engine

        result = RunResult(
            app_name=app.name,
            node_id=self.node.node_id,
            operating_point=self._current_point(threads),
        )
        start_time = self.node.now_s
        start_cpu_j = self.node.rapl.read_cpu_energy_joules()
        for iteration in range(app.phase_iterations):
            self._exec_region(
                app.phase,
                iteration,
                threads,
                controller,
                instrumented,
                instrumentation,
                listeners,
                collect_counters,
                run_key,
                result,
            )
        result.time_s = self.node.now_s - start_time
        result.cpu_energy_j = self.node.rapl.read_cpu_energy_joules() - start_cpu_j
        return result

    # ------------------------------------------------------------------
    def run_phase_counters(
        self,
        app: Application,
        *,
        threads: int | None = None,
        counters: tuple[str, ...],
        run_key: tuple = (),
    ):
        """Instrumented fast-path run returning phase counter totals.

        Fast-path equivalent of running with a listener that sums the
        phase region's inclusive counter metrics (the campaign engine's
        ``counters`` mode): the returned
        :class:`~repro.execution.replay.PhaseCounterRun` carries totals
        and accumulated phase time bit-identical to that listener path.
        """
        from repro.execution.replay import replay_phase_counters

        threads = threads if threads is not None else app.default_threads
        if not app.model.supports_thread_tuning:
            threads = app.default_threads
        if not 1 <= threads <= self.node.topology.num_cores:
            raise WorkloadError(f"invalid thread count: {threads}")
        return replay_phase_counters(
            self, app, threads=threads, counters=tuple(counters), run_key=run_key
        )

    # ------------------------------------------------------------------
    def sweep_run(
        self,
        app: Application,
        points,
        *,
        run_keys,
        instrumented: bool = False,
        instrumentation=None,
    ):
        """Replay a whole static configuration sweep in one pass.

        Every entry of ``points`` is measured as if on a **fresh** node
        with this simulator's node recipe (id, seed, topology, power
        variability) — the grid idiom of the heatmaps, the exhaustive
        static search and the trade-off study — and the per-cell
        results are bit-identical to looping
        ``ExecutionSimulator(fresh_node).run(...)`` per configuration.
        This simulator's own node is left untouched.  See
        :mod:`repro.execution.sweep_replay`.
        """
        from repro.execution.sweep_replay import sweep_run

        node = self.node
        return sweep_run(
            app,
            points,
            run_keys=run_keys,
            node_id=node.node_id,
            seed=self.seed,
            node_seed=node.seed,
            topology=node.topology,
            variability=node.power_model.variability,
            instrumented=instrumented,
            instrumentation=instrumentation,
        )

    # ------------------------------------------------------------------
    def _current_point(self, threads: int) -> OperatingPoint:
        return OperatingPoint(
            core_freq_ghz=self.node.core_freq_ghz,
            uncore_freq_ghz=self.node.uncore_freq_ghz,
            threads=threads,
        )

    def _charge(self, duration_s: float, breakdown, result: RunResult) -> float:
        """Advance node time/meters and account node energy; returns joules."""
        self.node.advance(duration_s, breakdown)
        joules = breakdown.node_w * duration_s
        result.node_energy_j += joules
        return joules

    def _charge_switching(self, result: RunResult, threads: int) -> None:
        """Charge hardware transition latency for any pending frequency
        changes logged since the last check."""
        dvfs_n = self.node.dvfs.log.count
        ufs_n = self.node.ufs.log.count
        self.node.dvfs.log.clear()
        self.node.ufs.log.clear()
        latency = pending_switch_latency_s(dvfs_n, ufs_n)
        if latency > 0:
            breakdown = self.node.compute_power(
                active_threads=threads,
                core_activity=config.STALLED_CORE_ACTIVITY,
                uncore_activity=0.0,
                membw_gbs=0.0,
            )
            self._charge(latency, breakdown, result)
            result.switching_time_s += latency

    def _probe_overhead_s(self, region: Region) -> float:
        return probe_overhead_s(region)

    def _exec_region(
        self,
        region: Region,
        iteration: int,
        threads: int,
        controller: RunController | None,
        instrumented: bool,
        instrumentation,
        listeners: tuple[RunListener, ...],
        collect_counters: bool,
        run_key: tuple,
        result: RunResult,
    ) -> tuple[float, dict[str, float]]:
        """Execute one region instance; returns its inclusive node energy
        (joules) and inclusive PAPI counter totals."""
        # The controller may reprogram frequencies / threads here.
        if controller is not None:
            new_threads = controller.on_region_enter(region, iteration, self.node)
            if new_threads:
                threads = new_threads
            self._charge_switching(result, threads)

        region_instrumented = instrumented and (
            instrumentation is None or instrumentation.is_instrumented(region)
        )
        enter_time = self.node.now_s
        if region_instrumented:
            for listener in listeners:
                listener.on_enter(region, iteration, enter_time)

        body_energy_j = 0.0
        body_time_s = 0.0
        timing: RegionTiming | None = None
        if region.has_work:
            timing = region_timing(
                region.characteristics,
                threads=threads,
                core_freq_ghz=self.node.core_freq_ghz,
                uncore_freq_ghz=self.node.uncore_freq_ghz,
            )
            rng = rng_for("time", self.node.node_id, run_key, region.name, iteration,
                          seed=self.seed)
            duration = timing.time_s * float(rng.lognormal(0.0, TIME_NOISE_SIGMA))
            breakdown = self.node.compute_power(
                active_threads=threads,
                core_activity=timing.core_activity,
                uncore_activity=timing.uncore_activity,
                membw_gbs=timing.membw_gbs,
            )
            body_energy_j = self._charge(duration, breakdown, result)
            body_time_s = duration

        if region_instrumented:
            overhead = self._probe_overhead_s(region)
            breakdown = self.node.compute_power(
                active_threads=threads,
                core_activity=1.0,
                uncore_activity=0.1,
                membw_gbs=0.0,
            )
            body_energy_j += self._charge(overhead, breakdown, result)
            body_time_s += overhead
            result.instrumentation_time_s += overhead

        point = self._current_point(threads)
        children_energy_j = 0.0
        children_counters: dict[str, float] = {}
        for child in region.children:
            child_energy, child_counters = self._exec_region(
                child, iteration, threads, controller, instrumented,
                instrumentation, listeners, collect_counters, run_key, result,
            )
            children_energy_j += child_energy
            for name, value in child_counters.items():
                children_counters[name] = children_counters.get(name, 0.0) + value

        exit_time = self.node.now_s
        total_time = exit_time - enter_time
        # Approximate CPU share of this region's node energy via the power
        # ratio of its own body (children account for themselves).
        cpu_energy_j = 0.0
        if region.has_work and body_time_s > 0:
            cpu_energy_j = body_energy_j * self._cpu_fraction(timing, threads)
        instance = RegionInstance(
            region_name=region.name,
            iteration=iteration,
            start_s=enter_time,
            time_s=total_time,
            node_energy_j=body_energy_j + children_energy_j,
            cpu_energy_j=cpu_energy_j,
            operating_point=point,
            timing=timing,
        )
        result.instances.append(instance)

        counters: dict[str, float] = dict(children_counters)
        if collect_counters and region.has_work and timing is not None:
            ctx = MeasurementContext(
                elapsed_s=body_time_s,
                core_freq_ghz=point.core_freq_ghz,
                threads=threads,
            )
            own = self._counter_generator.sample(
                region.characteristics,
                ctx,
                key=(self.node.node_id, run_key, region.name, iteration),
            )
            for name, value in own.items():
                counters[name] = counters.get(name, 0.0) + value
        metrics: dict[str, float] = {
            "time_s": total_time,
            "node_energy_j": instance.node_energy_j,
            **counters,
        }
        if region_instrumented:
            for listener in listeners:
                listener.on_exit(region, iteration, exit_time, metrics)

        if controller is not None:
            controller.on_region_exit(region, iteration, self.node)
            self._charge_switching(result, threads)
        return body_energy_j + children_energy_j, counters

    def _cpu_fraction(self, timing: RegionTiming, threads: int) -> float:
        """Fraction of node power attributable to the CPU+DRAM."""
        breakdown = self.node.compute_power(
            active_threads=threads,
            core_activity=timing.core_activity,
            uncore_activity=timing.uncore_activity,
            membw_gbs=timing.membw_gbs,
        )
        return breakdown.cpu_w / breakdown.node_w
