"""READEX Runtime Library (RRL): Runtime Application Tuning.

The RRL is attached to the production run as a
:class:`~repro.execution.simulator.RunController`: at each region enter
it looks the region up in the tuning model and — when the region belongs
to a scenario whose configuration differs from the current hardware state
— switches core/uncore frequency and thread count through the PCPs.  At
phase-region enter it applies the phase scenario (or the model default),
so untuned stretches run at a well-defined configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.simulator import OperatingPoint
from repro.hardware.node import ComputeNode
from repro.readex.pcp import CpuFreqPlugin, OpenMPTPlugin, UncoreFreqPlugin
from repro.readex.tuning_model import TuningModel
from repro.workloads.region import Region


@dataclass
class RRLStatistics:
    """Switching statistics of one RAT run."""

    region_enters: int = 0
    scenario_hits: int = 0
    frequency_switches: int = 0
    thread_switches: int = 0
    applied: dict[str, int] = field(default_factory=dict)


class RRL:
    """The runtime library; implements the RunController protocol."""

    def __init__(self, tuning_model: TuningModel):
        self.tuning_model = tuning_model
        self.stats = RRLStatistics()
        self._cpu_freq = CpuFreqPlugin()
        self._uncore_freq = UncoreFreqPlugin()
        self._openmp = OpenMPTPlugin()
        self._current_threads: int | None = None

    # -- RunController interface ------------------------------------------
    def on_region_enter(self, region: Region, iteration: int, node: ComputeNode) -> int:
        self.stats.region_enters += 1
        configuration = self.tuning_model.configuration_for(region.name)
        if configuration is None and region.name == self.tuning_model.phase_region:
            configuration = self.tuning_model.default
        if configuration is None:
            return self._current_threads or 0
        self.stats.scenario_hits += 1
        self._apply(configuration, node)
        self.stats.applied[region.name] = self.stats.applied.get(region.name, 0) + 1
        return self._current_threads or 0

    def on_region_exit(self, region: Region, iteration: int, node: ComputeNode) -> None:
        return None  # switching happens on enters only

    # ----------------------------------------------------------------------
    def _apply(self, configuration: OperatingPoint, node: ComputeNode) -> None:
        switched = False
        if node.core_freq_ghz != configuration.core_freq_ghz:
            self._cpu_freq.apply(node, configuration.core_freq_ghz)
            switched = True
        if node.uncore_freq_ghz != configuration.uncore_freq_ghz:
            self._uncore_freq.apply(node, configuration.uncore_freq_ghz)
            switched = True
        if switched:
            self.stats.frequency_switches += 1
        if self._current_threads != configuration.threads:
            self._openmp.apply(node, configuration.threads)
            self._current_threads = configuration.threads
            self.stats.thread_switches += 1


class StaticController:
    """Degenerate controller applying one configuration at run start.

    Used for the static-tuning baseline: equivalent to setting frequencies
    with ``x86_adapt`` before launching the (uninstrumented) job.
    """

    def __init__(self, configuration: OperatingPoint):
        self.configuration = configuration
        self._applied = False
        self._cpu_freq = CpuFreqPlugin()
        self._uncore_freq = UncoreFreqPlugin()

    def on_region_enter(self, region: Region, iteration: int, node: ComputeNode) -> int:
        if not self._applied:
            self._cpu_freq.apply(node, self.configuration.core_freq_ghz)
            self._uncore_freq.apply(node, self.configuration.uncore_freq_ghz)
            self._applied = True
        return self.configuration.threads

    def on_region_exit(self, region: Region, iteration: int, node: ComputeNode) -> None:
        return None
