"""READEX Runtime Library (RRL): Runtime Application Tuning.

The RRL is attached to the production run as a
:class:`~repro.execution.simulator.RunController`: at each region enter
it looks the region up in the tuning model and — when the region belongs
to a scenario whose configuration differs from the current hardware state
— switches core/uncore frequency and thread count through the PCPs.  At
phase-region enter it applies the phase scenario (or the model default),
so untuned stretches run at a well-defined configuration.

Because those decisions depend only on region names and the current
hardware state, both the RRL and the static-tuning controller implement
the ``compile_schedule`` protocol: the execution simulator compiles
their switch schedule once and replays controlled runs through the
vectorized fast path (:mod:`repro.execution.controlled_replay`),
bit-identical to the recursive engine — including every field of
:class:`RRLStatistics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.execution.controlled_replay import ScheduleCachePool
from repro.execution.simulator import OperatingPoint
from repro.hardware.node import ComputeNode
from repro.readex.pcp import CpuFreqPlugin, OpenMPTPlugin, UncoreFreqPlugin
from repro.readex.tuning_model import TuningModel
from repro.workloads.region import Region


@dataclass
class RRLStatistics:
    """Switching statistics of one RAT run."""

    region_enters: int = 0
    scenario_hits: int = 0
    frequency_switches: int = 0
    thread_switches: int = 0
    applied: dict[str, int] = field(default_factory=dict)


class RRL:
    """The runtime library; implements the RunController protocol."""

    def __init__(self, tuning_model: TuningModel):
        self.tuning_model = tuning_model
        self.stats = RRLStatistics()
        self._cpu_freq = CpuFreqPlugin()
        self._uncore_freq = UncoreFreqPlugin()
        self._openmp = OpenMPTPlugin()
        self._current_threads: int | None = None

    # -- RunController interface ------------------------------------------
    def on_region_enter(self, region: Region, iteration: int, node: ComputeNode) -> int:
        self.stats.region_enters += 1
        configuration = self.tuning_model.configuration_for(region.name)
        if configuration is None and region.name == self.tuning_model.phase_region:
            configuration = self.tuning_model.default
        if configuration is None:
            return self._current_threads or 0
        self.stats.scenario_hits += 1
        self._apply(configuration, node)
        self.stats.applied[region.name] = self.stats.applied.get(region.name, 0) + 1
        return self._current_threads or 0

    def on_region_exit(self, region: Region, iteration: int, node: ComputeNode) -> None:
        return None  # switching happens on enters only

    # -- ScheduleCompiler interface ----------------------------------------
    def compile_schedule(
        self, app, node: ComputeNode, *, threads: int, instrumented: bool,
        instrumentation,
    ):
        """Compile this run's switch schedule for the replay fast path.

        The scenario lookup is keyed by region name only, so the RRL's
        behaviour is iteration-independent and the generic trace walk
        applies; statistics of unwalked (extrapolated) iterations are
        scaled from the steady pattern's delta.

        Compiles are cached on the tuning model: repeated runs of the
        same configuration (the Table 6 sweep averages five per variant)
        pay for the symbolic walk once.  The walk runs against a fresh
        *probe* RRL seeded with this instance's runtime state, so on
        both hit and miss this controller absorbs exactly the statistics
        delta the recursive engine would have produced, and the node
        ends at the run's final frequencies with drained logs.
        """
        from repro.execution.controlled_replay import (
            CompiledControl,
            compile_or_reuse,
            compile_schedule_by_walk,
            schedule_cache_for,
            schedule_cache_key,
        )

        def build() -> CompiledControl:
            probe = RRL(self.tuning_model)
            probe._current_threads = self._current_threads
            schedule = compile_schedule_by_walk(
                probe, app, node,
                threads=threads,
                instrumented=instrumented,
                instrumentation=instrumentation,
                state_key=lambda: probe._current_threads,
                snapshot_stats=lambda: replace(
                    probe.stats, applied=dict(probe.stats.applied)
                ),
                extrapolate_stats=probe._extrapolate_stats,
            )
            return CompiledControl(
                schedule=schedule,
                controller_state=probe._current_threads,
                stats=probe.stats,
                final_core_ghz=node.core_freq_ghz,
                final_uncore_ghz=node.uncore_freq_ghz,
            )

        key = schedule_cache_key(
            node,
            threads=threads,
            instrumented=instrumented,
            instrumentation=instrumentation,
        ) + (self._current_threads,)
        compiled = compile_or_reuse(
            schedule_cache_for(self.tuning_model), app, node, key, build
        )
        self._absorb_stats(compiled.stats)
        self._current_threads = compiled.controller_state
        return compiled.schedule

    def _extrapolate_stats(
        self, before: RRLStatistics, after: RRLStatistics, copies: int
    ) -> None:
        """Add ``copies`` repetitions of the (before -> after) delta."""
        stats = self.stats
        stats.region_enters += (after.region_enters - before.region_enters) * copies
        stats.scenario_hits += (after.scenario_hits - before.scenario_hits) * copies
        stats.frequency_switches += (
            after.frequency_switches - before.frequency_switches
        ) * copies
        stats.thread_switches += (
            after.thread_switches - before.thread_switches
        ) * copies
        for name, count in after.applied.items():
            delta = count - before.applied.get(name, 0)
            if delta:
                stats.applied[name] = stats.applied.get(name, 0) + delta * copies

    def _absorb_stats(self, delta: RRLStatistics) -> None:
        """Accumulate one compiled run's statistics into this instance."""
        self._extrapolate_stats(RRLStatistics(), delta, 1)

    # ----------------------------------------------------------------------
    def _apply(self, configuration: OperatingPoint, node: ComputeNode) -> None:
        switched = False
        if node.core_freq_ghz != configuration.core_freq_ghz:
            self._cpu_freq.apply(node, configuration.core_freq_ghz)
            switched = True
        if node.uncore_freq_ghz != configuration.uncore_freq_ghz:
            self._uncore_freq.apply(node, configuration.uncore_freq_ghz)
            switched = True
        if switched:
            self.stats.frequency_switches += 1
        if self._current_threads != configuration.threads:
            self._openmp.apply(node, configuration.threads)
            self._current_threads = configuration.threads
            self.stats.thread_switches += 1


class StaticController:
    """Degenerate controller applying one configuration at run start.

    Used for the static-tuning baseline: equivalent to setting frequencies
    with ``x86_adapt`` before launching the (uninstrumented) job.
    """

    def __init__(self, configuration: OperatingPoint):
        self.configuration = configuration
        self._applied = False
        self._cpu_freq = CpuFreqPlugin()
        self._uncore_freq = UncoreFreqPlugin()

    def on_region_enter(self, region: Region, iteration: int, node: ComputeNode) -> int:
        if not self._applied:
            self._cpu_freq.apply(node, self.configuration.core_freq_ghz)
            self._uncore_freq.apply(node, self.configuration.uncore_freq_ghz)
            self._applied = True
        return self.configuration.threads

    def on_region_exit(self, region: Region, iteration: int, node: ComputeNode) -> None:
        return None

    # -- ScheduleCompiler interface ----------------------------------------
    def compile_schedule(
        self, app, node: ComputeNode, *, threads: int, instrumented: bool,
        instrumentation,
    ):
        """One apply at run start, iteration-independent afterwards.

        Compiles are cached per static configuration (a bounded pool —
        oldest configurations evicted), keyed like the RRL's on app,
        node physics, entry state and whether the one-shot apply
        already happened.
        """
        from repro.execution.controlled_replay import (
            CompiledControl,
            compile_or_reuse,
            compile_schedule_by_walk,
            schedule_cache_key,
        )

        def build() -> CompiledControl:
            probe = StaticController(self.configuration)
            probe._applied = self._applied
            schedule = compile_schedule_by_walk(
                probe, app, node,
                threads=threads,
                instrumented=instrumented,
                instrumentation=instrumentation,
                state_key=lambda: probe._applied,
            )
            return CompiledControl(
                schedule=schedule,
                controller_state=probe._applied,
                stats=None,
                final_core_ghz=node.core_freq_ghz,
                final_uncore_ghz=node.uncore_freq_ghz,
            )

        key = schedule_cache_key(
            node,
            threads=threads,
            instrumented=instrumented,
            instrumentation=instrumentation,
        ) + (self._applied,)
        compiled = compile_or_reuse(
            _STATIC_SCHEDULE_CACHES.for_value(self.configuration),
            app, node, key, build,
        )
        self._applied = compiled.controller_state
        return compiled.schedule


#: Compiled-schedule caches of the static controller, per configuration
#: (bounded; see ScheduleCachePool).
_STATIC_SCHEDULE_CACHES = ScheduleCachePool()
