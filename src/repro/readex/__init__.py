"""READEX components: design-time detection and run-time tuning.

* :mod:`repro.readex.dyn_detect` — ``readex-dyn-detect``: significant
  region identification (>100 ms mean execution time, Section III-A);
* :mod:`repro.readex.config_file` — the READEX configuration file the
  tuning plugin consumes;
* :mod:`repro.readex.scenario` / :mod:`repro.readex.tuning_model` — the
  System-Scenario tuning model (TMM) produced by PTF;
* :mod:`repro.readex.pcp` — Score-P Parameter Control Plugins
  (``cpu_freq``, ``uncore_freq``, ``OpenMPTP``);
* :mod:`repro.readex.rrl` — the READEX Runtime Library performing
  Runtime Application Tuning against the TMM.
"""

from repro.readex.dyn_detect import SignificantRegion, readex_dyn_detect
from repro.readex.config_file import ReadexConfig
from repro.readex.scenario import Scenario, classify_scenarios
from repro.readex.tuning_model import TuningModel
from repro.readex.pcp import CpuFreqPlugin, OpenMPTPlugin, UncoreFreqPlugin
from repro.readex.rrl import RRL, RRLStatistics, StaticController

__all__ = [
    "SignificantRegion",
    "readex_dyn_detect",
    "ReadexConfig",
    "Scenario",
    "classify_scenarios",
    "TuningModel",
    "CpuFreqPlugin",
    "UncoreFreqPlugin",
    "OpenMPTPlugin",
    "RRL",
    "RRLStatistics",
    "StaticController",
]
