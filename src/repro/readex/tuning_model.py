"""The tuning model (TMM) — PTF's output, the RRL's input.

Contains the scenarios (best configuration per region group) plus the
default configuration applied outside significant regions.  Serialised
as JSON; the RRL locates it through the ``SCOREP_RRL_TMM_PATH``
environment variable, which :meth:`TuningModel.load_from_env` honours.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import config
from repro.errors import TuningModelError
from repro.execution.simulator import OperatingPoint
from repro.readex.scenario import Scenario, classify_scenarios

#: Environment variable the RRL reads the TMM path from (Section V-D).
TMM_PATH_ENV = "SCOREP_RRL_TMM_PATH"


@dataclass
class TuningModel:
    """Best-found configurations for one application."""

    app_name: str
    phase_region: str
    scenarios: tuple[Scenario, ...]
    default: OperatingPoint = field(
        default_factory=lambda: OperatingPoint(
            core_freq_ghz=config.DEFAULT_CORE_FREQ_GHZ,
            uncore_freq_ghz=config.DEFAULT_UNCORE_FREQ_GHZ,
            threads=config.DEFAULT_OPENMP_THREADS,
        )
    )

    def __post_init__(self):
        self._by_region: dict[str, Scenario] = {}
        for scenario in self.scenarios:
            for region in scenario.regions:
                if region in self._by_region:
                    raise TuningModelError(
                        f"region {region!r} mapped to multiple scenarios"
                    )
                self._by_region[region] = scenario

    @classmethod
    def from_best_configs(
        cls,
        app_name: str,
        phase_region: str,
        best_configs: dict[str, OperatingPoint],
        *,
        default: OperatingPoint | None = None,
    ) -> "TuningModel":
        """Build the TMM by classifying regions into scenarios."""
        kwargs = {} if default is None else {"default": default}
        return cls(
            app_name=app_name,
            phase_region=phase_region,
            scenarios=classify_scenarios(best_configs),
            **kwargs,
        )

    # ------------------------------------------------------------------
    def scenario_for(self, region_name: str) -> Scenario | None:
        """Scenario lookup (the RRL's per-region-enter query)."""
        return self._by_region.get(region_name)

    def configuration_for(self, region_name: str) -> OperatingPoint | None:
        scenario = self.scenario_for(region_name)
        return scenario.configuration if scenario else None

    @property
    def tuned_regions(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_region))

    # -- serialisation ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "application": self.app_name,
                "phase_region": self.phase_region,
                "default": _encode_point(self.default),
                "scenarios": [
                    {
                        "id": s.scenario_id,
                        "configuration": _encode_point(s.configuration),
                        "regions": list(s.regions),
                    }
                    for s in self.scenarios
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "TuningModel":
        try:
            data = json.loads(text)
            scenarios = tuple(
                Scenario(
                    scenario_id=s["id"],
                    configuration=_decode_point(s["configuration"]),
                    regions=tuple(s["regions"]),
                )
                for s in data["scenarios"]
            )
            return cls(
                app_name=data["application"],
                phase_region=data["phase_region"],
                scenarios=scenarios,
                default=_decode_point(data["default"]),
            )
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise TuningModelError(f"malformed tuning model: {exc}") from None

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TuningModel":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    @classmethod
    def load_from_env(cls) -> "TuningModel":
        """Load the TMM referenced by ``SCOREP_RRL_TMM_PATH``."""
        path = os.environ.get(TMM_PATH_ENV)
        if not path:
            raise TuningModelError(f"{TMM_PATH_ENV} is not set")
        return cls.load(path)


def _encode_point(p: OperatingPoint) -> dict:
    return {
        "core_freq_ghz": p.core_freq_ghz,
        "uncore_freq_ghz": p.uncore_freq_ghz,
        "threads": p.threads,
    }


def _decode_point(d: dict) -> OperatingPoint:
    return OperatingPoint(
        core_freq_ghz=d["core_freq_ghz"],
        uncore_freq_ghz=d["uncore_freq_ghz"],
        threads=d["threads"],
    )
