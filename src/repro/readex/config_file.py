"""READEX configuration file.

Output of the pre-processing step (Section III-A): the list of
significant regions plus the tuning-parameter bounds (OpenMP thread lower
bound and step size) the plugin's first tuning step uses.  The real tool
emits XML; we serialise the same content as JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ReadexConfig:
    """The configuration consumed by the tuning plugin."""

    app_name: str
    phase_region: str
    phase_iterations: int
    significant_regions: tuple  # of SignificantRegion
    thread_lower_bound: int = 12
    thread_step: int = 4
    threshold_s: float = 0.1

    def __post_init__(self):
        if self.thread_lower_bound <= 0 or self.thread_step <= 0:
            raise WorkloadError("thread bounds must be positive")

    @property
    def significant_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.significant_regions)

    def to_json(self) -> str:
        from dataclasses import asdict

        payload = {
            "application": self.app_name,
            "phase_region": self.phase_region,
            "phase_iterations": self.phase_iterations,
            "threshold_s": self.threshold_s,
            "tuning_parameters": {
                "openmp_threads": {
                    "lower_bound": self.thread_lower_bound,
                    "step": self.thread_step,
                }
            },
            "significant_regions": [asdict(r) for r in self.significant_regions],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ReadexConfig":
        from repro.readex.dyn_detect import SignificantRegion

        data = json.loads(text)
        try:
            regions = tuple(
                SignificantRegion(**r) for r in data["significant_regions"]
            )
            return cls(
                app_name=data["application"],
                phase_region=data["phase_region"],
                phase_iterations=data["phase_iterations"],
                significant_regions=regions,
                thread_lower_bound=data["tuning_parameters"]["openmp_threads"][
                    "lower_bound"
                ],
                thread_step=data["tuning_parameters"]["openmp_threads"]["step"],
                threshold_s=data["threshold_s"],
            )
        except KeyError as exc:
            raise WorkloadError(f"malformed READEX config: missing {exc}") from None

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReadexConfig":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
