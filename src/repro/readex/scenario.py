"""System scenarios: grouping regions with equal best configurations.

The System-Scenario methodology [Gheorghita et al. 2009] avoids
dynamic-switching overhead by mapping regions that behave alike onto one
*scenario* holding the shared best configuration (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TuningModelError
from repro.execution.simulator import OperatingPoint


@dataclass(frozen=True)
class Scenario:
    """One scenario: a configuration and the regions mapped onto it."""

    scenario_id: int
    configuration: OperatingPoint
    regions: tuple[str, ...]

    def __post_init__(self):
        if not self.regions:
            raise TuningModelError("scenario must contain at least one region")


def classify_scenarios(
    best_configs: dict[str, OperatingPoint]
) -> tuple[Scenario, ...]:
    """Group regions by identical best configuration.

    This is the plugin's classifier: each region maps onto exactly one
    scenario; regions sharing a configuration share a scenario, so
    switching between them at runtime is free.
    """
    if not best_configs:
        raise TuningModelError("no best configurations to classify")
    groups: dict[OperatingPoint, list[str]] = {}
    for region, cfg in best_configs.items():
        groups.setdefault(cfg, []).append(region)
    scenarios = []
    for i, (cfg, regions) in enumerate(
        sorted(groups.items(), key=lambda kv: sorted(kv[1])[0])
    ):
        scenarios.append(
            Scenario(scenario_id=i, configuration=cfg, regions=tuple(sorted(regions)))
        )
    return tuple(scenarios)
