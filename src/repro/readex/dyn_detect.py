"""``readex-dyn-detect``: significant-region identification.

A region qualifies as *significant* if its mean execution time exceeds
100 ms (Section III-A): energy measurement has ~5 ms latency and
frequency switches have transition latencies, so only regions well above
those scales can be tuned meaningfully.

The tool consumes the call-tree profile of an instrumented run and
produces the configuration file the tuning plugin starts from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.errors import WorkloadError
from repro.readex.config_file import ReadexConfig
from repro.scorep.profile import CallTreeProfile
from repro.workloads.application import Application


@dataclass(frozen=True)
class SignificantRegion:
    """One detected significant region."""

    name: str
    kind: str
    mean_time_s: float
    visits: int


def readex_dyn_detect(
    app: Application,
    profile: CallTreeProfile,
    *,
    threshold_s: float = config.SIGNIFICANT_REGION_THRESHOLD_S,
    thread_lower_bound: int = 12,
    thread_step: int = 4,
) -> ReadexConfig:
    """Detect significant regions and emit the tuning configuration.

    Candidates are the phase region's direct children (the granularity
    the RRL can switch at); a candidate is significant when its mean
    inclusive time per visit exceeds ``threshold_s``.
    """
    if threshold_s <= 0:
        raise WorkloadError("significance threshold must be positive")
    phase_node = profile.node(app.phase.name)
    significant: list[SignificantRegion] = []
    for child in app.phase.children:
        try:
            node = profile.node(child.name)
        except Exception:
            continue  # filtered from the profile entirely
        if node.mean_time_s > threshold_s:
            significant.append(
                SignificantRegion(
                    name=child.name,
                    kind=child.kind.value,
                    mean_time_s=node.mean_time_s,
                    visits=node.visits,
                )
            )
    return ReadexConfig(
        app_name=app.name,
        phase_region=app.phase.name,
        phase_iterations=phase_node.visits,
        significant_regions=tuple(significant),
        thread_lower_bound=thread_lower_bound,
        thread_step=thread_step,
        threshold_s=threshold_s,
    )
