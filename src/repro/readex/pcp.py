"""Score-P Parameter Control Plugins (PCPs).

The three PCPs the paper uses (Section III): ``cpu_freq`` and
``uncore_freq`` change frequencies through the x86_adapt knobs;
``OpenMPTP`` changes the OpenMP thread count via ``omp_set_num_threads``.
Both PTF's experiments engine and the RRL drive the same plugins.
"""

from __future__ import annotations

from repro import config
from repro.errors import RRLError
from repro.hardware.msr import ratio_of_ghz
from repro.hardware.node import ComputeNode
from repro.hardware.x86_adapt import X86AdaptKnob


class CpuFreqPlugin:
    """``cpu_freq`` PCP: sets the core frequency of every core."""

    name = "cpu_freq_plugin"

    def apply(self, node: ComputeNode, value_ghz: float) -> None:
        ratio = ratio_of_ghz(value_ghz)
        for core in node.topology.all_core_ids():
            node.x86_adapt.set_setting(core, X86AdaptKnob.INTEL_TARGET_PSTATE, ratio)

    def current(self, node: ComputeNode) -> float:
        return node.core_freq_ghz


class UncoreFreqPlugin:
    """``uncore_freq`` PCP: sets the uncore frequency of every socket."""

    name = "uncore_freq_plugin"

    def apply(self, node: ComputeNode, value_ghz: float) -> None:
        ratio = ratio_of_ghz(value_ghz)
        for socket in node.topology.sockets:
            node.x86_adapt.set_setting(
                socket.socket_id, X86AdaptKnob.INTEL_UNCORE_RATIO, ratio
            )

    def current(self, node: ComputeNode) -> float:
        return node.uncore_freq_ghz


class OpenMPTPlugin:
    """``OpenMPTP`` PCP: requests an OpenMP thread count for the next
    parallel region (``omp_set_num_threads`` semantics)."""

    name = "openmp_plugin"

    def __init__(self, max_threads: int = config.CORES_PER_NODE):
        self._max_threads = max_threads
        self._requested = config.DEFAULT_OPENMP_THREADS

    def apply(self, node: ComputeNode, threads: int) -> int:
        if not 1 <= threads <= self._max_threads:
            raise RRLError(
                f"requested thread count {threads} outside [1, {self._max_threads}]"
            )
        self._requested = int(threads)
        return self._requested

    def current(self, node: ComputeNode) -> int:
        return self._requested
