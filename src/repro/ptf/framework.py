"""PTF orchestration: the full design-time analysis (DTA) pipeline.

Ties the stack together exactly in the order of Figure 1:

1. compiler instrumentation (Score-P),
2. run-time + compile-time filtering (``scorep-autofilter``),
3. phase annotation and ``readex-dyn-detect``,
4. the tuning plugin's steps (threads → model-predicted frequencies →
   neighborhood verification),
5. tuning-model generation for the RRL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.cluster import Cluster
from repro.modeling.training import TrainedModel
from repro.ptf.energy_plugin import EnergyTuningPlugin, PluginResult
from repro.ptf.plugin import TuningContext
from repro.readex.config_file import ReadexConfig
from repro.readex.dyn_detect import readex_dyn_detect
from repro.readex.tuning_model import TuningModel
from repro.scorep.filtering import apply_compile_time_filter, scorep_autofilter
from repro.scorep.instrumentation import Instrumentation
from repro.scorep.macros import annotate_phase
from repro.scorep.profile import ProfileCollector
from repro.workloads import registry
from repro.workloads.application import Application


@dataclass
class TuningOutcome:
    """Everything the DTA produces for one application."""

    app: Application
    instrumentation: Instrumentation
    readex_config: ReadexConfig
    plugin_result: PluginResult
    tuning_model: TuningModel


class PeriscopeTuningFramework:
    """Drives pre-processing and the tuning plugin for an application."""

    def __init__(
        self,
        cluster: Cluster,
        model: TrainedModel,
        *,
        node_id: int = 0,
        seed: int = config.DEFAULT_SEED,
        hill_climb_steps: int = 1,
    ):
        self.cluster = cluster
        self.model = model
        self.node_id = node_id
        self.seed = seed
        self.hill_climb_steps = hill_climb_steps

    # ------------------------------------------------------------------
    def preprocess(
        self, app: Application
    ) -> tuple[Instrumentation, ReadexConfig]:
        """Instrument, filter, annotate the phase and detect regions."""
        instrumentation = Instrumentation.compiler_default(app)
        # Run-time filtering: profile the fully instrumented build.
        profile = self._profile_run(app, instrumentation, key="rt-filter")
        filter_file = scorep_autofilter(profile, instrumentation)
        instrumentation = apply_compile_time_filter(instrumentation, filter_file)
        # Phase annotation, then the dyn-detect profiling run.
        annotate_phase(app)
        profile = self._profile_run(app, instrumentation, key="dyn-detect")
        readex_config = readex_dyn_detect(app, profile)
        return instrumentation, readex_config

    def tune(self, app_or_name: Application | str) -> TuningOutcome:
        """Run the complete DTA for one application."""
        app = (
            registry.build(app_or_name)
            if isinstance(app_or_name, str)
            else app_or_name
        )
        instrumentation, readex_config = self.preprocess(app)
        plugin = EnergyTuningPlugin(
            self.model, hill_climb_steps=self.hill_climb_steps
        )
        plugin.initialize(
            TuningContext(
                app=app,
                readex_config=readex_config,
                cluster=self.cluster,
                node_id=self.node_id,
            )
        )
        plugin.run_tuning_steps()
        result = plugin.result
        tuning_model = TuningModel.from_best_configs(
            app.name,
            app.phase.name,
            {**result.region_configurations, app.phase.name: result.phase_configuration},
        )
        return TuningOutcome(
            app=app,
            instrumentation=instrumentation,
            readex_config=readex_config,
            plugin_result=result,
            tuning_model=tuning_model,
        )

    # ------------------------------------------------------------------
    def _profile_run(self, app, instrumentation, *, key: str):
        node = self.cluster.fresh_node(self.node_id)
        node.set_frequencies(
            config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
        )
        collector = ProfileCollector(app.name)
        ExecutionSimulator(node, seed=self.seed).run(
            app,
            listeners=(collector,),
            instrumentation=instrumentation,
            run_key=(key,),
        )
        return collector.profile()
