"""Region-level model application (the paper's future work, Section VI).

The published plugin measures counter rates for the *phase* region and
predicts one global frequency pair, verifying a small neighborhood per
region.  The paper's outlook: "investigate the application of the model
based approach to individual significant regions.  By that regions with
a very different best configuration could be identified, e.g., IO
regions."

:class:`RegionModelTuner` implements that extension: counter rates are
measured per significant region (each region's counters normalised by
its own execution time), the network predicts a full frequency grid per
region, and regions whose predicted optimum lies far from the phase-wide
optimum are flagged as *outliers* that deserve their own verification
neighborhood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.counters.papi import preset
from repro.errors import TuningError
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.cluster import Cluster
from repro.modeling.batched import predict_energy_grid, validate_engine
from repro.modeling.dataset import FEATURE_COUNTERS
from repro.modeling.training import TrainedModel
from repro.workloads.application import Application

#: L1 distance (GHz, CF+UCF combined) beyond which a region's predicted
#: optimum counts as an outlier vs the phase optimum.
OUTLIER_DISTANCE_GHZ = 0.5


@dataclass(frozen=True)
class RegionPrediction:
    """Model output for one significant region."""

    region: str
    rates: np.ndarray
    best_frequencies: tuple[float, float]
    predicted_energy: float

    def distance_to(self, other: tuple[float, float]) -> float:
        return abs(self.best_frequencies[0] - other[0]) + abs(
            self.best_frequencies[1] - other[1]
        )


@dataclass
class RegionModelResult:
    """Per-region predictions plus outlier classification."""

    app_name: str
    phase_prediction: RegionPrediction
    region_predictions: dict[str, RegionPrediction]

    def outliers(
        self, threshold_ghz: float = OUTLIER_DISTANCE_GHZ
    ) -> tuple[str, ...]:
        """Regions whose predicted optimum differs strongly from the
        phase optimum — candidates for dedicated verification."""
        phase_best = self.phase_prediction.best_frequencies
        return tuple(
            name
            for name, pred in self.region_predictions.items()
            if pred.distance_to(phase_best) > threshold_ghz
        )


class RegionModelTuner:
    """Applies the energy model per significant region."""

    def __init__(
        self,
        model: TrainedModel,
        cluster: Cluster,
        *,
        node_id: int = 0,
        seed: int = config.DEFAULT_SEED,
        engine: str = "batched",
    ):
        self._model = model
        self._cluster = cluster
        self._node_id = node_id
        self._seed = seed
        self._engine = validate_engine(engine)

    # ------------------------------------------------------------------
    def measure_region_rates(
        self,
        app: Application,
        regions: tuple[str, ...],
        *,
        threads: int | None = None,
        runs: int = 3,
    ) -> dict[str, np.ndarray]:
        """Counter rates per region (counters / region time) at calibration."""
        canonical = [preset(c).name for c in FEATURE_COUNTERS]
        totals = {r: np.zeros(len(canonical)) for r in regions}
        times = {r: 0.0 for r in regions}
        wanted = set(regions) | {app.phase.name}

        class _Collect:
            def on_enter(self, region, iteration, time_s):
                pass

            def on_exit(self, region, iteration, time_s, metrics):
                if region.name in totals:
                    totals[region.name] += np.array(
                        [metrics.get(c, 0.0) for c in canonical]
                    )
                    times[region.name] += metrics["time_s"]

        for r in range(runs):
            node = self._cluster.fresh_node(self._node_id)
            node.set_frequencies(
                config.CALIBRATION_CORE_FREQ_GHZ,
                config.CALIBRATION_UNCORE_FREQ_GHZ,
            )
            ExecutionSimulator(node, seed=self._seed).run(
                app,
                threads=threads,
                listeners=(_Collect(),),
                collect_counters=True,
                run_key=("region-rates", r),
            )
        missing = [r for r in regions if times[r] <= 0]
        if missing:
            raise TuningError(f"regions never measured: {missing}")
        return {r: totals[r] / times[r] for r in regions}

    def predict_regions(
        self, rates: dict[str, np.ndarray]
    ) -> dict[str, RegionPrediction]:
        """Full-grid predictions for many regions in one engine call.

        Under the batched engine every (region, grid point) pair goes
        through the network in a single stacked forward pass — the
        pointwise engine evaluates one region's grid at a time, with
        bit-identical results.
        """
        if not rates:
            return {}
        names = tuple(rates)
        grid = predict_energy_grid(
            self._model,
            np.asarray([rates[name] for name in names]),
            labels=names,
            engine=self._engine,
        )
        best = grid.best()
        return {
            name: RegionPrediction(
                region=name,
                rates=rates[name],
                best_frequencies=best[name][0],
                predicted_energy=best[name][1],
            )
            for name in names
        }

    def predict_region(self, region: str, rates: np.ndarray) -> RegionPrediction:
        """Full-grid prediction for one region's rates."""
        return self.predict_regions({region: rates})[region]

    def tune(
        self,
        app: Application,
        regions: tuple[str, ...],
        *,
        threads: int | None = None,
    ) -> RegionModelResult:
        """Predict per-region optima and classify outliers."""
        if not regions:
            raise TuningError("no regions to tune")
        rates = self.measure_region_rates(app, regions, threads=threads)
        # One grid-shaped prediction covers every significant region.
        region_predictions = self.predict_regions(rates)
        # Phase rates = time-weighted view of the whole iteration; measure
        # through the phase record the plugin already uses.
        phase_rates = self.measure_region_rates(
            app, (app.phase.name,), threads=threads
        )[app.phase.name]
        phase_prediction = self.predict_region(app.phase.name, phase_rates)
        return RegionModelResult(
            app_name=app.name,
            phase_prediction=phase_prediction,
            region_predictions=region_predictions,
        )
