"""The paper's model-based energy tuning plugin (Sections III & IV).

Four-step workflow (Figure 1):

1. *Pre-processing* (outside the plugin): instrumentation, filtering,
   phase annotation, ``readex-dyn-detect`` — the plugin receives the
   resulting :class:`~repro.readex.config_file.ReadexConfig`.
2. *Tuning step 1 — OpenMP threads*: exhaustive search over the thread
   candidates; the energy-optimal count is determined for the phase
   region and for each significant region.
3. *Tuning step 2 — core/uncore frequency*: the phase region's PAPI
   counter rates are measured at the calibration point; the neural
   network predicts normalized energy for **all** CF x UCF combinations
   in one shot; the argmin becomes the *global* frequency pair.
4. *Verification + tuning-model generation*: the immediate neighborhood
   of the global pair (<= 9 configurations) is evaluated per phase
   iteration; each significant region picks its best; regions with equal
   configurations are grouped into scenarios and written to the TMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.counters.papi import preset
from repro.errors import TuningError
from repro.execution.simulator import OperatingPoint
from repro.modeling.batched import predict_energy_grid, validate_engine
from repro.modeling.dataset import FEATURE_COUNTERS, measure_counter_rates
from repro.modeling.training import TrainedModel
from repro.ptf.experiments import ExperimentsEngine, RegionMeasurement
from repro.ptf.objectives import Objective, get_objective
from repro.ptf.plugin import TuningContext, TuningPluginInterface
from repro.ptf.search import neighborhood


@dataclass
class PluginResult:
    """Everything the plugin learned about one application."""

    app_name: str
    phase_threads: int
    region_threads: dict[str, int]
    counter_rates: np.ndarray
    predicted_grid: dict[tuple[float, float], float]
    global_frequencies: tuple[float, float]
    phase_configuration: OperatingPoint
    region_configurations: dict[str, OperatingPoint]
    experiments_performed: int
    application_runs: int
    tuning_time_s: float

    @property
    def best_configs_for_tmm(self) -> dict[str, OperatingPoint]:
        configs = dict(self.region_configurations)
        configs["phase"] = self.phase_configuration
        return configs


class EnergyTuningPlugin(TuningPluginInterface):
    """The model-based DVFS/UFS/OpenMP tuning plugin.

    Parameters
    ----------
    model:
        The trained energy network (with its scaler).
    hill_climb_steps:
        1 reproduces the paper exactly (one neighborhood verification
        round).  Larger values enable the greedy-descent extension: when
        the measured optimum lies on the neighborhood rim, the search
        re-centers and verifies again, recovering from model argmin
        errors larger than one frequency step at a cost of at most 9
        extra experiments per round.
    engine:
        Model-evaluation engine for the step-2 grid prediction
        (``"batched"`` or ``"pointwise"``; bit-identical results).
    """

    def __init__(
        self,
        model: TrainedModel,
        *,
        hill_climb_steps: int = 1,
        engine: str = "batched",
    ):
        if hill_climb_steps < 1:
            raise TuningError("hill_climb_steps must be >= 1")
        self._hill_climb_steps = hill_climb_steps
        self._engine_name = validate_engine(engine)
        self._model = model
        self._context: TuningContext | None = None
        self._engine: ExperimentsEngine | None = None
        self._objective: Objective | None = None
        self._result: PluginResult | None = None

    # -- TuningPluginInterface --------------------------------------------
    def initialize(self, context: TuningContext) -> None:
        self._context = context
        self._engine = ExperimentsEngine(
            context.cluster, node_id=context.node_id
        )
        self._objective = get_objective(context.objective_name)

    def run_tuning_steps(self) -> None:
        ctx = self._require_context()
        phase_threads, region_threads = self._tune_openmp_threads()
        rates, grid, global_freqs = self._predict_frequencies(phase_threads)
        phase_cfg, region_cfgs = self._verify_neighborhood(
            global_freqs, phase_threads, region_threads
        )
        engine = self._engine
        self._result = PluginResult(
            app_name=ctx.app.name,
            phase_threads=phase_threads,
            region_threads=region_threads,
            counter_rates=rates,
            predicted_grid=grid,
            global_frequencies=global_freqs,
            phase_configuration=phase_cfg,
            region_configurations=region_cfgs,
            experiments_performed=engine.experiments_performed,
            application_runs=engine.application_runs,
            tuning_time_s=engine.tuning_time_s,
        )

    def get_optimum(self) -> dict[str, OperatingPoint]:
        return dict(self.result.region_configurations)

    @property
    def experiments_performed(self) -> int:
        return self._require_engine().experiments_performed

    @property
    def result(self) -> PluginResult:
        if self._result is None:
            raise TuningError("plugin has not run its tuning steps yet")
        return self._result

    # -- Step 1: exhaustive OpenMP threads ---------------------------------
    def _thread_candidates(self) -> tuple[int, ...]:
        ctx = self._require_context()
        cfg = ctx.readex_config
        lo, step = cfg.thread_lower_bound, cfg.thread_step
        hi = config.CORES_PER_NODE
        return tuple(range(lo, hi + 1, step))

    def _tune_openmp_threads(self) -> tuple[int, dict[str, int]]:
        ctx = self._require_context()
        significant = ctx.readex_config.significant_names
        if not ctx.app.model.supports_thread_tuning:
            t = ctx.app.default_threads
            return t, {name: t for name in significant}
        candidates = self._thread_candidates()
        points = [
            OperatingPoint(
                core_freq_ghz=config.CALIBRATION_CORE_FREQ_GHZ,
                uncore_freq_ghz=config.CALIBRATION_UNCORE_FREQ_GHZ,
                threads=t,
            )
            for t in candidates
        ]
        measured = self._require_engine().evaluate_configurations(
            ctx.app, points, run_key=("omp-step",)
        )
        phase_best = self._argmin_region(measured, ctx.app.phase.name)
        region_threads = {
            name: self._argmin_region(measured, name).threads
            for name in significant
        }
        return phase_best.threads, region_threads

    def _argmin_region(
        self,
        measured: dict[OperatingPoint, dict[str, RegionMeasurement]],
        region: str,
    ) -> OperatingPoint:
        objective = self._objective or get_objective("energy")
        best_point, best_value = None, float("inf")
        for point, regions in measured.items():
            m = regions.get(region)
            if m is None:
                continue
            value = objective(m.node_energy_j, m.time_s)
            if value < best_value:
                best_point, best_value = point, value
        if best_point is None:
            raise TuningError(f"region {region!r} never measured")
        return best_point

    # -- Step 2: model-predicted global CF/UCF ------------------------------
    def _predict_frequencies(
        self, phase_threads: int
    ) -> tuple[np.ndarray, dict[tuple[float, float], float], tuple[float, float]]:
        ctx = self._require_context()
        rates_map = measure_counter_rates(
            ctx.app,
            ctx.cluster,
            node_id=ctx.node_id,
            threads=phase_threads if ctx.app.model.supports_thread_tuning else None,
            counters=FEATURE_COUNTERS,
        )
        self._require_engine().application_runs += 1  # the analysis run
        rates = np.array([rates_map[preset(c).name] for c in FEATURE_COUNTERS])
        # All CF x UCF combinations in one grid-shaped prediction.
        prediction = predict_energy_grid(
            self._model, rates, labels=("phase",), engine=self._engine_name
        )
        grid = prediction.as_dict("phase")
        best = min(grid, key=grid.get)
        return rates, grid, best

    # -- Step 3: neighborhood verification ----------------------------------
    def _verify_neighborhood(
        self,
        global_freqs: tuple[float, float],
        phase_threads: int,
        region_threads: dict[str, int],
    ) -> tuple[OperatingPoint, dict[str, OperatingPoint]]:
        ctx = self._require_context()
        measured: dict[OperatingPoint, dict[str, RegionMeasurement]] = {}
        center = global_freqs
        for step in range(self._hill_climb_steps):
            fresh = [
                OperatingPoint(core_freq_ghz=cf, uncore_freq_ghz=ucf,
                               threads=phase_threads)
                for cf, ucf in neighborhood(*center)
                if OperatingPoint(cf, ucf, phase_threads) not in measured
            ]
            if fresh:
                measured.update(
                    self._require_engine().evaluate_configurations(
                        ctx.app, fresh, run_key=("verify-step", step)
                    )
                )
            best = self._argmin_region(measured, ctx.app.phase.name)
            if (best.core_freq_ghz, best.uncore_freq_ghz) == center:
                break
            center = (best.core_freq_ghz, best.uncore_freq_ghz)
        phase_best = self._argmin_region(measured, ctx.app.phase.name)
        region_configs: dict[str, OperatingPoint] = {}
        for name in ctx.readex_config.significant_names:
            best = self._argmin_region(measured, name)
            region_configs[name] = OperatingPoint(
                core_freq_ghz=best.core_freq_ghz,
                uncore_freq_ghz=best.uncore_freq_ghz,
                threads=region_threads.get(name, phase_threads),
            )
        return phase_best, region_configs

    # ------------------------------------------------------------------
    def _require_context(self) -> TuningContext:
        if self._context is None:
            raise TuningError("plugin not initialised")
        return self._context

    def _require_engine(self) -> ExperimentsEngine:
        if self._engine is None:
            raise TuningError("plugin not initialised")
        return self._engine
