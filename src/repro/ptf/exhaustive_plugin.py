"""Exhaustive per-region tuning baseline (Sourouri et al. [7]).

The comparison point of Section V-C: without significant-region
detection and without an energy model, finding the best configuration
for each of ``n`` regions over a ``k x l x m`` parameter space costs
``n * k * l * m * t`` seconds of tuning time (``t`` = one application
run), against ``(k + 1 + 9) * t`` for the model-based plugin — and only
``(k + 1 + 9)`` phase iterations when the main loop is progressive.

The estimator quantifies that comparison; :class:`ExhaustiveRegionTuner`
actually executes the exhaustive search on (optionally reduced) grids so
the quality of its optima can be compared, too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.errors import TuningError
from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.ptf.experiments import ExperimentsEngine
from repro.ptf.objectives import ENERGY, Objective
from repro.workloads.application import Application


@dataclass(frozen=True)
class TuningTimeEstimate:
    """Tuning-time comparison of Section V-C."""

    regions: int
    thread_values: int       # k
    core_freq_values: int    # l
    uncore_freq_values: int  # m
    single_run_time_s: float # t

    @property
    def exhaustive_runs(self) -> int:
        """Sourouri et al.: n * k * l * m application runs."""
        return (
            self.regions
            * self.thread_values
            * self.core_freq_values
            * self.uncore_freq_values
        )

    @property
    def exhaustive_time_s(self) -> float:
        return self.exhaustive_runs * self.single_run_time_s

    @property
    def model_based_experiments(self) -> int:
        """The plugin: k thread experiments + 1 analysis run + 9 neighbors."""
        return self.thread_values + 1 + 9

    @property
    def model_based_time_s(self) -> float:
        return self.model_based_experiments * self.single_run_time_s

    @property
    def speedup(self) -> float:
        return self.exhaustive_time_s / self.model_based_time_s


def estimate_tuning_time(
    app: Application,
    single_run_time_s: float,
    *,
    num_regions: int | None = None,
) -> TuningTimeEstimate:
    """Build the Section V-C estimate for ``app``."""
    if single_run_time_s <= 0:
        raise TuningError("run time must be positive")
    regions = (
        num_regions
        if num_regions is not None
        else sum(1 for r in app.regions if r.has_work)
    )
    return TuningTimeEstimate(
        regions=regions,
        thread_values=len(config.OPENMP_THREAD_CANDIDATES),
        core_freq_values=len(config.CORE_FREQUENCIES_GHZ),
        uncore_freq_values=len(config.UNCORE_FREQUENCIES_GHZ),
        single_run_time_s=single_run_time_s,
    )


class ExhaustiveRegionTuner:
    """Executes the exhaustive per-region search (on reducible grids)."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        node_id: int = 0,
        objective: Objective = ENERGY,
    ):
        self.cluster = cluster
        self.node_id = node_id
        self.objective = objective

    def tune(
        self,
        app: Application,
        *,
        stride: int = 1,
        thread_counts: tuple[int, ...] | None = None,
        regions: tuple[str, ...] | None = None,
    ) -> tuple[dict[str, OperatingPoint], ExperimentsEngine]:
        """Best configuration per region via exhaustive evaluation."""
        if thread_counts is None:
            thread_counts = (
                config.OPENMP_THREAD_CANDIDATES
                if app.model.supports_thread_tuning
                else (app.default_threads,)
            )
        if regions is None:
            regions = tuple(c.name for c in app.phase.children if c.has_work)
        engine = ExperimentsEngine(self.cluster, node_id=self.node_id)
        points = [
            OperatingPoint(cf, ucf, t)
            for t in thread_counts
            for cf in config.CORE_FREQUENCIES_GHZ[::stride]
            for ucf in config.UNCORE_FREQUENCIES_GHZ[::stride]
        ]
        measured = engine.evaluate_configurations(
            app, points, regions=regions, run_key=("exhaustive",)
        )
        best: dict[str, OperatingPoint] = {}
        for region in regions:
            best_point, best_value = None, float("inf")
            for point, ms in measured.items():
                m = ms.get(region)
                if m is None:
                    continue
                value = self.objective(m.node_energy_j, m.time_s)
                if value < best_value:
                    best_point, best_value = point, value
            if best_point is None:
                raise TuningError(f"region {region!r} never measured")
            best[region] = best_point
        return best, engine
