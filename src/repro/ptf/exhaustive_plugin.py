"""Exhaustive per-region tuning baseline (Sourouri et al. [7]).

The comparison point of Section V-C: without significant-region
detection and without an energy model, finding the best configuration
for each of ``n`` regions over a ``k x l x m`` parameter space costs
``n * k * l * m * t`` seconds of tuning time (``t`` = one application
run), against ``(k + 1 + 9) * t`` for the model-based plugin — and only
``(k + 1 + 9)`` phase iterations when the main loop is progressive.

The estimator quantifies that comparison; :class:`ExhaustiveRegionTuner`
actually executes the exhaustive search on (optionally reduced) grids so
the quality of its optima can be compared, too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.errors import TuningError
from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.modeling.batched import predict_energy_grid
from repro.modeling.training import TrainedModel
from repro.ptf.experiments import ExperimentsEngine
from repro.ptf.objectives import ENERGY, Objective
from repro.workloads.application import Application


@dataclass(frozen=True)
class TuningTimeEstimate:
    """Tuning-time comparison of Section V-C."""

    regions: int
    thread_values: int       # k
    core_freq_values: int    # l
    uncore_freq_values: int  # m
    single_run_time_s: float # t

    @property
    def exhaustive_runs(self) -> int:
        """Sourouri et al.: n * k * l * m application runs."""
        return (
            self.regions
            * self.thread_values
            * self.core_freq_values
            * self.uncore_freq_values
        )

    @property
    def exhaustive_time_s(self) -> float:
        return self.exhaustive_runs * self.single_run_time_s

    @property
    def model_based_experiments(self) -> int:
        """The plugin: k thread experiments + 1 analysis run + 9 neighbors."""
        return self.thread_values + 1 + 9

    @property
    def model_based_time_s(self) -> float:
        return self.model_based_experiments * self.single_run_time_s

    @property
    def speedup(self) -> float:
        return self.exhaustive_time_s / self.model_based_time_s


def estimate_tuning_time(
    app: Application,
    single_run_time_s: float,
    *,
    num_regions: int | None = None,
) -> TuningTimeEstimate:
    """Build the Section V-C estimate for ``app``."""
    if single_run_time_s <= 0:
        raise TuningError("run time must be positive")
    regions = (
        num_regions
        if num_regions is not None
        else sum(1 for r in app.regions if r.has_work)
    )
    return TuningTimeEstimate(
        regions=regions,
        thread_values=len(config.OPENMP_THREAD_CANDIDATES),
        core_freq_values=len(config.CORE_FREQUENCIES_GHZ),
        uncore_freq_values=len(config.UNCORE_FREQUENCIES_GHZ),
        single_run_time_s=single_run_time_s,
    )


class ExhaustiveRegionTuner:
    """Executes the exhaustive per-region search (on reducible grids)."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        node_id: int = 0,
        objective: Objective = ENERGY,
    ):
        self.cluster = cluster
        self.node_id = node_id
        self.objective = objective

    def screen_frequency_pairs(
        self,
        app: Application,
        model: TrainedModel,
        regions: tuple[str, ...],
        *,
        stride: int = 1,
        keep: int = 9,
        engine: str = "batched",
    ) -> list[tuple[float, float]]:
        """Model-screened frequency pairs worth measuring exhaustively.

        One grid-shaped prediction per region (a single stacked forward
        pass under the batched engine) ranks every (CF, UCF) pair; the
        union of each region's ``keep`` best predicted pairs — in grid
        order, restricted to the strided grid — becomes the measured
        search space.  This trades the model's accuracy for a search
        that no longer scales with ``l * m``.
        """
        from repro.ptf.region_model import RegionModelTuner

        if keep < 1:
            raise TuningError("keep must be >= 1")
        tuner = RegionModelTuner(
            model, self.cluster, node_id=self.node_id, engine=engine
        )
        rates = tuner.measure_region_rates(app, regions)
        grid = predict_energy_grid(
            model,
            np.asarray([rates[r] for r in regions]),
            labels=regions,
            engine=engine,
        )
        strided = {
            (cf, ucf)
            for cf in config.CORE_FREQUENCIES_GHZ[::stride]
            for ucf in config.UNCORE_FREQUENCIES_GHZ[::stride]
        }
        wanted: set[tuple[float, float]] = set()
        for region in regions:
            energies = grid.row(region)
            ranked = [
                grid.points[i]
                for i in np.argsort(energies, kind="stable")
                if grid.points[i] in strided
            ]
            wanted.update(ranked[:keep])
        return [p for p in grid.points if p in wanted]

    def tune(
        self,
        app: Application,
        *,
        stride: int = 1,
        thread_counts: tuple[int, ...] | None = None,
        regions: tuple[str, ...] | None = None,
        model: TrainedModel | None = None,
        screen_keep: int = 9,
        engine: str = "batched",
    ) -> tuple[dict[str, OperatingPoint], ExperimentsEngine]:
        """Best configuration per region via exhaustive evaluation.

        With ``model`` given, the (CF, UCF) plane is first screened by a
        grid-shaped model prediction and only the union of each region's
        ``screen_keep`` most promising pairs is measured.
        """
        if thread_counts is None:
            thread_counts = (
                config.OPENMP_THREAD_CANDIDATES
                if app.model.supports_thread_tuning
                else (app.default_threads,)
            )
        if regions is None:
            regions = tuple(c.name for c in app.phase.children if c.has_work)
        if model is not None:
            pairs = self.screen_frequency_pairs(
                app, model, regions, stride=stride, keep=screen_keep,
                engine=engine,
            )
        else:
            pairs = [
                (cf, ucf)
                for cf in config.CORE_FREQUENCIES_GHZ[::stride]
                for ucf in config.UNCORE_FREQUENCIES_GHZ[::stride]
            ]
        experiments = ExperimentsEngine(self.cluster, node_id=self.node_id)
        points = [
            OperatingPoint(cf, ucf, t)
            for t in thread_counts
            for cf, ucf in pairs
        ]
        measured = experiments.evaluate_configurations(
            app, points, regions=regions, run_key=("exhaustive",)
        )
        # Vectorised per-region selection (first minimum, matching the
        # historical point-at-a-time loop bit for bit).
        best: dict[str, OperatingPoint] = {}
        for region in regions:
            candidates = [p for p in measured if region in measured[p]]
            if not candidates:
                raise TuningError(f"region {region!r} never measured")
            values = self.objective.batch(
                np.array([measured[p][region].node_energy_j for p in candidates]),
                np.array([measured[p][region].time_s for p in candidates]),
            )
            best[region] = candidates[int(np.argmin(values))]
        return best, experiments
