"""PTF's generic Tuning Plugin Interface.

PTF drives plugins through a fixed lifecycle [Miceli et al. 2013]:
``initialize`` → (``create_scenarios`` → experiments) repeated per tuning
step → ``get_optimum``.  The interface here captures that lifecycle
abstractly so alternative plugins (the exhaustive baseline, future
EDP-objective plugins) plug into the same framework driver.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import TuningError
from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.readex.config_file import ReadexConfig
from repro.workloads.application import Application


@dataclass(frozen=True)
class TuningParameter:
    """One tunable knob with its discrete value domain."""

    name: str
    values: tuple

    def __post_init__(self):
        if not self.values:
            raise TuningError(f"tuning parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise TuningError(f"tuning parameter {self.name!r} has duplicates")

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class TuningContext:
    """Everything PTF hands a plugin at initialisation."""

    app: Application
    readex_config: ReadexConfig
    cluster: Cluster
    node_id: int = 0
    objective_name: str = "energy"
    extras: dict = field(default_factory=dict)


class TuningPluginInterface(abc.ABC):
    """Lifecycle contract for PTF tuning plugins."""

    @abc.abstractmethod
    def initialize(self, context: TuningContext) -> None:
        """Receive the tuning context before any scenario is created."""

    @abc.abstractmethod
    def run_tuning_steps(self) -> None:
        """Execute the plugin's tuning steps (scenario creation and
        evaluation through the experiments engine)."""

    @abc.abstractmethod
    def get_optimum(self) -> dict[str, OperatingPoint]:
        """Best found configuration per tuned region."""

    @property
    @abc.abstractmethod
    def experiments_performed(self) -> int:
        """Number of experiment evaluations consumed (tuning-time metric)."""
