"""Static tuning baseline (Table V).

The best *single* configuration for the whole application, found by
exhaustively running the benchmark at every OpenMP thread count, core
frequency and uncore frequency and selecting the minimum-energy run
(Section V-D).  ``stride`` thins the frequency grids when an approximate
answer is enough (tests); the benchmarks run the full grid.

The sweep executes through the :mod:`repro.campaign` engine: the full
grid is submitted as one plan, fans out across the worker pool, and —
when the engine carries a result store — warm re-runs select the best
point without a single new simulation.  With the default
``measurement="grid"`` the plan consists of per-(threads, CF) **row
jobs** that replay their whole UCF axis in one pass through the
config-axis sweep engine (:mod:`repro.execution.sweep_replay`);
``measurement="cell"`` submits the historical one-job-per-cell plan.
Both measure bit-identical numbers — only store addressing differs, so
switching re-keys the cache.  The winning point is selected with one
vectorised objective evaluation over the whole grid, and
:func:`select_static_configurations` offers the model-predicted
counterpart: static configurations for a whole workload suite from one
batched grid prediction, with zero sweep simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.campaign.engine import CampaignEngine, run_app_jobs
from repro.campaign.plan import grid_jobs, grid_rows, static_jobs, static_operating_points
from repro.errors import TuningError
from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.modeling.batched import predict_energy_grid
from repro.modeling.training import TrainedModel
from repro.ptf.objectives import ENERGY, Objective
from repro.workloads.application import Application


@dataclass(frozen=True)
class ModelStaticSelection:
    """Model-predicted static configuration for one benchmark series."""

    app_name: str
    threads: int
    best: OperatingPoint
    predicted_energy: float


def select_static_configurations(
    model: TrainedModel,
    series_rates: dict[tuple[str, int], np.ndarray],
    *,
    engine: str = "batched",
) -> dict[tuple[str, int], ModelStaticSelection]:
    """Predict the energy-optimal static (CF, UCF) for many series at once.

    ``series_rates`` maps ``(benchmark, threads)`` to the calibration
    counter-rate vector of that series (the layout of
    :attr:`~repro.modeling.dataset.EnergyDataset.counter_rates`).  The
    model predicts normalized energy over the full core x uncore grid
    for every series — under the batched engine that is one stacked
    forward pass for the whole workload suite — and the argmin becomes
    the predicted static configuration.  Both engines return
    bit-identical selections; no simulation runs are involved.
    """
    if not series_rates:
        return {}
    labels = tuple(series_rates)
    grid = predict_energy_grid(
        model,
        np.asarray([series_rates[label] for label in labels]),
        labels=labels,
        engine=engine,
    )
    best = grid.best()
    return {
        (name, threads): ModelStaticSelection(
            app_name=name,
            threads=threads,
            best=OperatingPoint(point[0], point[1], threads),
            predicted_energy=energy,
        )
        for (name, threads), (point, energy) in best.items()
    }


@dataclass(frozen=True)
class StaticTuningResult:
    """Outcome of the exhaustive static search."""

    app_name: str
    best: OperatingPoint
    best_energy_j: float
    best_time_s: float
    default_energy_j: float
    default_time_s: float
    configurations_tried: int

    @property
    def energy_saving(self) -> float:
        """Fractional node-energy saving vs the platform default."""
        return 1.0 - self.best_energy_j / self.default_energy_j


def exhaustive_static_search(
    app: Application,
    cluster: Cluster,
    *,
    node_id: int = 0,
    objective: Objective = ENERGY,
    stride: int = 1,
    thread_counts: tuple[int, ...] | None = None,
    engine: CampaignEngine | None = None,
    measurement: str | None = None,
    options: "api.ExecutionOptions | None" = None,
) -> StaticTuningResult:
    """Run the full static sweep and return the best configuration.

    ``options.measurement`` selects how the grid is simulated:
    ``"grid"`` (default) replays each (threads, CF) row in one
    sweep-engine pass; ``"cell"`` runs the historical one-job-per-cell
    plan.  The measured energies — and therefore the result — are
    bit-identical.  ``options.campaign`` attaches the campaign engine
    that pools and caches the runs.  The bare ``engine=`` (historically
    this function's spelling for the *campaign* engine) and
    ``measurement=`` keywords are the deprecated forms.
    """
    from repro import api

    if stride < 1:
        raise TuningError("stride must be >= 1")
    if measurement is not None and measurement not in ("grid", "cell"):
        raise TuningError(
            f"unknown measurement: {measurement!r}; known: ('grid', 'cell')"
        )
    opts = api.resolve_options(
        options,
        site="repro.ptf.static_tuning.exhaustive_static_search",
        campaign=engine,
        measurement=measurement,
    )
    engine = opts.campaign
    measurement = opts.measurement
    points = static_operating_points(
        app, stride=stride, thread_counts=thread_counts
    )
    default_point = OperatingPoint(
        config.DEFAULT_CORE_FREQ_GHZ,
        config.DEFAULT_UNCORE_FREQ_GHZ,
        config.DEFAULT_OPENMP_THREADS,
    )
    cluster.check_node_id(node_id)
    if measurement == "grid":
        jobs = grid_jobs(
            app.name,
            label="static",
            points=points,
            node_id=node_id,
            node_seed=cluster.seed,
        )
        results = run_app_jobs(jobs, app, cluster=cluster, engine=engine)
        # Map every point back to (its row's payload, its position in
        # the row).  grid_rows appends a row's UCFs in point order, so
        # the k-th occurrence of a (threads, CF) pair is row entry k.
        row_payload = {
            (threads, cf): results[job]
            for job, (threads, cf, _ucfs) in zip(jobs, grid_rows(points))
        }
        occurrence: dict[tuple, int] = {}
        energies = np.empty(len(points))
        times = np.empty(len(points))
        for k, p in enumerate(points):
            key = (p.threads, p.core_freq_ghz)
            i = occurrence.get(key, 0)
            occurrence[key] = i + 1
            payload = row_payload[key]
            energies[k] = payload["node_energy_j"][i]
            times[k] = payload["time_s"][i]
    else:
        jobs = static_jobs(
            app.name, points=points, node_id=node_id, node_seed=cluster.seed
        )
        results = run_app_jobs(jobs, app, cluster=cluster, engine=engine)
        energies = np.array([results[job]["node_energy_j"] for job in jobs])
        times = np.array([results[job]["time_s"] for job in jobs])

    # Vectorised selection: one objective evaluation + argmin over the
    # whole grid (first minimum, like the historical point loop).
    values = objective.batch(energies, times)
    best = int(np.argmin(values))
    default = points.index(default_point)
    return StaticTuningResult(
        app_name=app.name,
        best=points[best],
        best_energy_j=float(energies[best]),
        best_time_s=float(times[best]),
        default_energy_j=float(energies[default]),
        default_time_s=float(times[default]),
        configurations_tried=len(points),
    )
