"""Static tuning baseline (Table V).

The best *single* configuration for the whole application, found by
exhaustively running the benchmark at every OpenMP thread count, core
frequency and uncore frequency and selecting the minimum-energy run
(Section V-D).  ``stride`` thins the frequency grids when an approximate
answer is enough (tests); the benchmarks run the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.errors import TuningError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.hardware.cluster import Cluster
from repro.ptf.objectives import Objective, ENERGY
from repro.workloads.application import Application


@dataclass(frozen=True)
class StaticTuningResult:
    """Outcome of the exhaustive static search."""

    app_name: str
    best: OperatingPoint
    best_energy_j: float
    best_time_s: float
    default_energy_j: float
    default_time_s: float
    configurations_tried: int

    @property
    def energy_saving(self) -> float:
        """Fractional node-energy saving vs the platform default."""
        return 1.0 - self.best_energy_j / self.default_energy_j


def exhaustive_static_search(
    app: Application,
    cluster: Cluster,
    *,
    node_id: int = 0,
    objective: Objective = ENERGY,
    stride: int = 1,
    thread_counts: tuple[int, ...] | None = None,
) -> StaticTuningResult:
    """Run the full static sweep and return the best configuration."""
    if stride < 1:
        raise TuningError("stride must be >= 1")
    if thread_counts is None:
        thread_counts = (
            config.OPENMP_THREAD_CANDIDATES
            if app.model.supports_thread_tuning
            else (app.default_threads,)
        )
    cfs = config.CORE_FREQUENCIES_GHZ[::stride]
    ucfs = config.UNCORE_FREQUENCIES_GHZ[::stride]
    # Ensure the platform default is part of the sweep for the baseline.
    default_point = OperatingPoint(
        config.DEFAULT_CORE_FREQ_GHZ,
        config.DEFAULT_UNCORE_FREQ_GHZ,
        config.DEFAULT_OPENMP_THREADS,
    )
    best_point, best_value = None, float("inf")
    best_energy = best_time = 0.0
    default_energy = default_time = None
    tried = 0
    points = [
        OperatingPoint(cf, ucf, t)
        for t in thread_counts
        for cf in cfs
        for ucf in ucfs
    ]
    if default_point not in points:
        points.append(default_point)
    for point in points:
        node = cluster.fresh_node(node_id)
        node.set_frequencies(point.core_freq_ghz, point.uncore_freq_ghz)
        run = ExecutionSimulator(node).run(
            app,
            threads=point.threads,
            run_key=("static", point.core_freq_ghz, point.uncore_freq_ghz, point.threads),
        )
        tried += 1
        value = objective(run.node_energy_j, run.time_s)
        if value < best_value:
            best_point, best_value = point, value
            best_energy, best_time = run.node_energy_j, run.time_s
        if point == default_point:
            default_energy, default_time = run.node_energy_j, run.time_s
    assert best_point is not None and default_energy is not None
    return StaticTuningResult(
        app_name=app.name,
        best=best_point,
        best_energy_j=best_energy,
        best_time_s=best_time,
        default_energy_j=default_energy,
        default_time_s=default_time,
        configurations_tried=tried,
    )
