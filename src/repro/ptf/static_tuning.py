"""Static tuning baseline (Table V).

The best *single* configuration for the whole application, found by
exhaustively running the benchmark at every OpenMP thread count, core
frequency and uncore frequency and selecting the minimum-energy run
(Section V-D).  ``stride`` thins the frequency grids when an approximate
answer is enough (tests); the benchmarks run the full grid.

The sweep executes through the :mod:`repro.campaign` engine: the full
grid is submitted as one plan, fans out across the worker pool, and —
when the engine carries a result store — warm re-runs select the best
point without a single new simulation.  Uncontrolled grid points are
exactly what the simulator's vectorized replay fast path
(:mod:`repro.execution.replay`) accelerates, so cold exhaustive sweeps
run an order of magnitude faster with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.campaign.engine import CampaignEngine, run_app_jobs
from repro.campaign.plan import static_jobs, static_operating_points
from repro.errors import TuningError
from repro.execution.simulator import OperatingPoint
from repro.hardware.cluster import Cluster
from repro.ptf.objectives import Objective, ENERGY
from repro.workloads.application import Application


@dataclass(frozen=True)
class StaticTuningResult:
    """Outcome of the exhaustive static search."""

    app_name: str
    best: OperatingPoint
    best_energy_j: float
    best_time_s: float
    default_energy_j: float
    default_time_s: float
    configurations_tried: int

    @property
    def energy_saving(self) -> float:
        """Fractional node-energy saving vs the platform default."""
        return 1.0 - self.best_energy_j / self.default_energy_j


def exhaustive_static_search(
    app: Application,
    cluster: Cluster,
    *,
    node_id: int = 0,
    objective: Objective = ENERGY,
    stride: int = 1,
    thread_counts: tuple[int, ...] | None = None,
    engine: CampaignEngine | None = None,
) -> StaticTuningResult:
    """Run the full static sweep and return the best configuration."""
    if stride < 1:
        raise TuningError("stride must be >= 1")
    points = static_operating_points(
        app, stride=stride, thread_counts=thread_counts
    )
    default_point = OperatingPoint(
        config.DEFAULT_CORE_FREQ_GHZ,
        config.DEFAULT_UNCORE_FREQ_GHZ,
        config.DEFAULT_OPENMP_THREADS,
    )
    cluster.check_node_id(node_id)
    jobs = static_jobs(
        app.name, points=points, node_id=node_id, node_seed=cluster.seed
    )
    results = run_app_jobs(jobs, app, cluster=cluster, engine=engine)

    best_point, best_value = None, float("inf")
    best_energy = best_time = 0.0
    default_energy = default_time = None
    for point, job in zip(points, jobs):
        payload = results[job]
        energy, time_s = payload["node_energy_j"], payload["time_s"]
        value = objective(energy, time_s)
        if value < best_value:
            best_point, best_value = point, value
            best_energy, best_time = energy, time_s
        if point == default_point:
            default_energy, default_time = energy, time_s
    assert best_point is not None and default_energy is not None
    return StaticTuningResult(
        app_name=app.name,
        best=best_point,
        best_energy_j=best_energy,
        best_time_s=best_time,
        default_energy_j=default_energy,
        default_time_s=default_time,
        configurations_tried=len(jobs),
    )
