"""PTF experiments engine.

Evaluates candidate configurations on the running application.  The
engine exploits progressive main loops the way the plugin does
(Section V-C): each phase iteration runs one candidate configuration, so
evaluating k candidates costs k phase iterations instead of k whole
application runs, and every significant region is measured in every
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.errors import TuningError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint, RunResult
from repro.hardware.cluster import Cluster
from repro.hardware.node import ComputeNode
from repro.readex.pcp import CpuFreqPlugin, OpenMPTPlugin, UncoreFreqPlugin
from repro.workloads.application import Application
from repro.workloads.region import Region


@dataclass(frozen=True)
class RegionMeasurement:
    """One region's measurement under one candidate configuration."""

    region: str
    configuration: OperatingPoint
    node_energy_j: float
    cpu_energy_j: float
    time_s: float


class _ScheduleController:
    """Applies ``schedule[iteration]`` at each phase-region enter.

    Although its decisions depend on the iteration index, the schedule
    is fully predeclared, so the controller opts into the simulator's
    controlled-replay fast path: the compile walk visits every
    iteration with a distinct schedule entry (the state key tracks the
    upcoming entry), reaches a fixed point once the schedule's last
    configuration repeats, and the replay prices the whole run in bulk
    — bit-identical to the recursive engine, like every compiled
    controller.
    """

    def __init__(self, schedule: list[OperatingPoint], phase_name: str):
        if not schedule:
            raise TuningError("empty experiment schedule")
        self._schedule = schedule
        self._phase_name = phase_name
        self._cpu = CpuFreqPlugin()
        self._uncore = UncoreFreqPlugin()
        self._openmp = OpenMPTPlugin()
        self._threads = schedule[0].threads
        self._next_iteration = 0

    def on_region_enter(self, region: Region, iteration: int, node: ComputeNode) -> int:
        if region.name == self._phase_name:
            self._next_iteration = iteration + 1
            point = self._schedule[min(iteration, len(self._schedule) - 1)]
            if node.core_freq_ghz != point.core_freq_ghz:
                self._cpu.apply(node, point.core_freq_ghz)
            if node.uncore_freq_ghz != point.uncore_freq_ghz:
                self._uncore.apply(node, point.uncore_freq_ghz)
            self._threads = self._openmp.apply(node, point.threads)
        return self._threads

    def on_region_exit(self, region: Region, iteration: int, node: ComputeNode) -> None:
        return None

    def compile_schedule(
        self, app, node: ComputeNode, *, threads: int, instrumented: bool,
        instrumentation,
    ):
        """Compile the predeclared experiment schedule for bulk replay.

        The fixed-point state key is the upcoming schedule entry
        (clamped to the final one, which every remaining iteration
        repeats) plus the thread count the last applied configuration
        pinned.
        """
        from repro.execution.controlled_replay import compile_schedule_by_walk

        last = len(self._schedule) - 1
        return compile_schedule_by_walk(
            self,
            app,
            node,
            threads=threads,
            instrumented=instrumented,
            instrumentation=instrumentation,
            state_key=lambda: (
                min(self._next_iteration, last),
                self._threads,
            ),
        )


class ExperimentsEngine:
    """Runs tuning experiments for plugins."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        node_id: int = 0,
        seed: int = config.DEFAULT_SEED,
    ):
        self.cluster = cluster
        self.node_id = node_id
        self.seed = seed
        self.experiments_performed = 0
        self.tuning_time_s = 0.0
        self.application_runs = 0

    # ------------------------------------------------------------------
    def evaluate_configurations(
        self,
        app: Application,
        configurations: list[OperatingPoint],
        *,
        regions: tuple[str, ...] | None = None,
        run_key: tuple = (),
    ) -> dict[OperatingPoint, dict[str, RegionMeasurement]]:
        """Measure every region of interest under every configuration.

        Configurations are packed into application runs, one per phase
        iteration; measurement values are per-iteration region instances.
        Regions defaults to the phase region plus its children.
        """
        if not configurations:
            raise TuningError("no configurations to evaluate")
        if regions is None:
            regions = (app.phase.name,) + tuple(
                c.name for c in app.phase.children
            )
        results: dict[OperatingPoint, dict[str, RegionMeasurement]] = {}
        iters = app.phase_iterations
        for chunk_start in range(0, len(configurations), iters):
            chunk = configurations[chunk_start : chunk_start + iters]
            run = self._run_schedule(app, chunk, run_key=(run_key, chunk_start))
            for i, point in enumerate(chunk):
                measurements: dict[str, RegionMeasurement] = {}
                for instance in run.instances:
                    if instance.iteration != i or instance.region_name not in regions:
                        continue
                    measurements[instance.region_name] = RegionMeasurement(
                        region=instance.region_name,
                        configuration=point,
                        node_energy_j=instance.node_energy_j,
                        cpu_energy_j=instance.cpu_energy_j,
                        time_s=instance.time_s,
                    )
                results[point] = measurements
                self.experiments_performed += 1
        return results

    def _run_schedule(
        self, app: Application, schedule: list[OperatingPoint], *, run_key: tuple
    ) -> RunResult:
        node = self.cluster.fresh_node(self.node_id)
        node.set_frequencies(
            config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
        )
        controller = _ScheduleController(schedule, app.phase.name)
        run = ExecutionSimulator(node, seed=self.seed).run(
            app,
            threads=schedule[0].threads,
            controller=controller,
            instrumented=True,
            run_key=("experiments", run_key),
        )
        self.application_runs += 1
        self.tuning_time_s += run.time_s
        return run
