"""Periscope Tuning Framework (PTF) layer.

The paper's contribution is a PTF *tuning plugin*; this package models
the framework pieces the plugin needs — the Tuning Plugin Interface,
search spaces over tuning parameters, and the experiments engine — plus
the plugin itself and the baselines it is evaluated against:

* :mod:`repro.ptf.energy_plugin` — the model-based plugin (Sections III
  and IV): exhaustive OpenMP-thread step, NN-predicted global CF/UCF,
  neighborhood verification per significant region, TMM generation;
* :mod:`repro.ptf.static_tuning` — best single configuration for the
  whole application (Table V baseline);
* :mod:`repro.ptf.exhaustive_plugin` — the per-region exhaustive search
  of Sourouri et al. [7] (tuning-time comparison of Section V-C);
* :mod:`repro.ptf.objectives` — energy and the future-work objectives
  (EDP, ED2P, TCO).
"""

from repro.ptf.plugin import TuningParameter, TuningPluginInterface, TuningContext
from repro.ptf.search import SearchSpace, hill_climb, neighborhood
from repro.ptf.experiments import ExperimentsEngine, RegionMeasurement
from repro.ptf.objectives import Objective, ENERGY, EDP, ED2P, tco_objective
from repro.ptf.energy_plugin import EnergyTuningPlugin, PluginResult
from repro.ptf.static_tuning import StaticTuningResult, exhaustive_static_search
from repro.ptf.exhaustive_plugin import ExhaustiveRegionTuner, TuningTimeEstimate
from repro.ptf.framework import PeriscopeTuningFramework, TuningOutcome
from repro.ptf.region_model import (
    RegionModelResult,
    RegionModelTuner,
    RegionPrediction,
)

__all__ = [
    "TuningParameter",
    "TuningPluginInterface",
    "TuningContext",
    "SearchSpace",
    "neighborhood",
    "hill_climb",
    "ExperimentsEngine",
    "RegionMeasurement",
    "Objective",
    "ENERGY",
    "EDP",
    "ED2P",
    "tco_objective",
    "EnergyTuningPlugin",
    "PluginResult",
    "StaticTuningResult",
    "exhaustive_static_search",
    "ExhaustiveRegionTuner",
    "TuningTimeEstimate",
    "PeriscopeTuningFramework",
    "TuningOutcome",
    "RegionModelTuner",
    "RegionModelResult",
    "RegionPrediction",
]
