"""Tuning objectives.

Energy is the paper's fundamental objective; EDP, ED2P and TCO are the
future-work objectives (Section VI) — implemented here so the plugin can
be pointed at any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import TuningError


@dataclass(frozen=True)
class Objective:
    """Scalarisation of (energy, time); lower is better."""

    name: str
    evaluate: Callable[[float, float], float]

    def __call__(self, energy_j: float, time_s: float) -> float:
        if energy_j < 0 or time_s < 0:
            raise TuningError("objective inputs must be non-negative")
        return self.evaluate(energy_j, time_s)

    def batch(self, energies_j, times_s) -> np.ndarray:
        """Vectorised evaluation over aligned arrays (lower is better).

        Elementwise float64 arithmetic, so each entry is bit-identical
        to the scalar :meth:`__call__` on the same pair — argmins over
        a batch equal the historical one-point-at-a-time loops.
        """
        energies_j = np.asarray(energies_j, dtype=float)
        times_s = np.asarray(times_s, dtype=float)
        if np.any(energies_j < 0) or np.any(times_s < 0):
            raise TuningError("objective inputs must be non-negative")
        return np.asarray(self.evaluate(energies_j, times_s), dtype=float)


#: Plain node energy (the paper's objective).
ENERGY = Objective("energy", lambda e, t: e)
#: Energy-delay product.
EDP = Objective("edp", lambda e, t: e * t)
#: Energy-delay-squared product.
ED2P = Objective("ed2p", lambda e, t: e * t * t)


def tco_objective(
    *,
    energy_price_per_joule: float,
    machine_cost_per_second: float,
) -> Objective:
    """Total-cost-of-ownership objective: energy cost + machine time cost."""
    if energy_price_per_joule < 0 or machine_cost_per_second < 0:
        raise TuningError("TCO prices must be non-negative")
    return Objective(
        "tco",
        lambda e, t: e * energy_price_per_joule + t * machine_cost_per_second,
    )


OBJECTIVES: dict[str, Objective] = {o.name: o for o in (ENERGY, EDP, ED2P)}


def get_objective(name: str) -> Objective:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise TuningError(
            f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
        ) from None
