"""Tuning objectives.

Energy is the paper's fundamental objective; EDP, ED2P and TCO are the
future-work objectives (Section VI) — implemented here so the plugin can
be pointed at any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import TuningError


@dataclass(frozen=True)
class Objective:
    """Scalarisation of (energy, time); lower is better."""

    name: str
    evaluate: Callable[[float, float], float]

    def __call__(self, energy_j: float, time_s: float) -> float:
        if energy_j < 0 or time_s < 0:
            raise TuningError("objective inputs must be non-negative")
        return self.evaluate(energy_j, time_s)


#: Plain node energy (the paper's objective).
ENERGY = Objective("energy", lambda e, t: e)
#: Energy-delay product.
EDP = Objective("edp", lambda e, t: e * t)
#: Energy-delay-squared product.
ED2P = Objective("ed2p", lambda e, t: e * t * t)


def tco_objective(
    *,
    energy_price_per_joule: float,
    machine_cost_per_second: float,
) -> Objective:
    """Total-cost-of-ownership objective: energy cost + machine time cost."""
    if energy_price_per_joule < 0 or machine_cost_per_second < 0:
        raise TuningError("TCO prices must be non-negative")
    return Objective(
        "tco",
        lambda e, t: e * energy_price_per_joule + t * machine_cost_per_second,
    )


OBJECTIVES: dict[str, Objective] = {o.name: o for o in (ENERGY, EDP, ED2P)}


def get_objective(name: str) -> Objective:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise TuningError(
            f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
        ) from None
