"""Search spaces over tuning parameters.

PTF's strength the paper leans on is managed search spaces: the plugin
replaces the exhaustive CF x UCF product with a model prediction plus an
*immediate neighborhood* verification (Section III-C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro import config
from repro.errors import TuningError
from repro.ptf.plugin import TuningParameter


@dataclass(frozen=True)
class SearchSpace:
    """Cartesian product of tuning parameters."""

    parameters: tuple[TuningParameter, ...]

    def __post_init__(self):
        if not self.parameters:
            raise TuningError("search space needs at least one parameter")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise TuningError("duplicate parameter names in search space")

    @property
    def size(self) -> int:
        n = 1
        for p in self.parameters:
            n *= len(p)
        return n

    def points(self) -> list[dict]:
        """All combinations as name->value dicts (exhaustive enumeration)."""
        names = [p.name for p in self.parameters]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(p.values for p in self.parameters))
        ]


def frequency_space() -> SearchSpace:
    """The full CF x UCF space (what exhaustive search would visit)."""
    return SearchSpace(
        parameters=(
            TuningParameter("core_freq_ghz", config.CORE_FREQUENCIES_GHZ),
            TuningParameter("uncore_freq_ghz", config.UNCORE_FREQUENCIES_GHZ),
        )
    )


def _neighbors(value: float, domain: tuple[float, ...]) -> tuple[float, ...]:
    if value not in domain:
        raise TuningError(f"{value} not in tuning domain")
    i = domain.index(value)
    lo = max(0, i - 1)
    hi = min(len(domain), i + 2)
    return domain[lo:hi]


def neighborhood(
    core_freq_ghz: float, uncore_freq_ghz: float
) -> list[tuple[float, float]]:
    """Immediate-neighbor configurations of a (CF, UCF) point.

    Up to 3 x 3 = 9 combinations — the reduced search space the plugin
    verifies per significant region (the "+9" in the tuning-time formula
    of Section V-C).
    """
    cfs = _neighbors(core_freq_ghz, config.CORE_FREQUENCIES_GHZ)
    ucfs = _neighbors(uncore_freq_ghz, config.UNCORE_FREQUENCIES_GHZ)
    return [(cf, ucf) for cf in cfs for ucf in ucfs]


def hill_climb(
    start: tuple[float, float],
    evaluate,
    *,
    max_steps: int = 3,
) -> tuple[tuple[float, float], int]:
    """Greedy neighborhood descent from ``start``.

    Extension beyond the paper's single verification round: when the
    measured best of a neighborhood lies on its rim, re-center and
    verify again (up to ``max_steps`` rounds).  Each round costs at most
    9 experiments, so the search stays far below exhaustive while
    recovering from model argmin error larger than one step.

    ``evaluate`` maps a list of (CF, UCF) points to a dict
    point -> objective value (lower is better).  Returns the best point
    found and the number of evaluated configurations.
    """
    if max_steps < 1:
        raise TuningError("hill climb needs at least one step")
    current = start
    evaluated: dict[tuple[float, float], float] = {}
    for _ in range(max_steps):
        points = [p for p in neighborhood(*current) if p not in evaluated]
        if points:
            evaluated.update(evaluate(points))
        best = min(evaluated, key=evaluated.get)
        if best == current:
            break
        current = best
    return current, len(evaluated)
