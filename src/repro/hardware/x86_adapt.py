"""``x86_adapt``-style knob interface over the MSR layer.

The paper's PCP plugins and the ``measure-rapl`` tool use the x86_adapt
library [Schoene & Molka 2014], which exposes named configuration items
per core / per "die" (socket) instead of raw MSR addresses.  This module
reproduces that API shape: device handles per domain, integer knob values,
and named items for P-state and uncore-ratio control.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import config
from repro.errors import HardwareError
from repro.hardware.frequency import DVFSController, UFSController
from repro.hardware.msr import ratio_of_ghz, ghz_of_ratio


class X86AdaptKnob(enum.Enum):
    """Named configuration items (subset used by the READEX PCPs)."""

    #: Per-core target P-state ratio (100 MHz units).
    INTEL_TARGET_PSTATE = "Intel_Target_PState"
    #: Per-socket uncore min/max ratio, pinned together (100 MHz units).
    INTEL_UNCORE_RATIO = "Intel_UNCORE_Current_Ratio"


@dataclass(frozen=True)
class _KnobRange:
    lo: int
    hi: int


class X86AdaptDevice:
    """Handle to one node's adapt items.

    ``set_setting(domain_id, knob, value)`` mirrors
    ``x86_adapt_set_setting``; values are MSR-style ratios.
    """

    def __init__(self, dvfs: DVFSController, ufs: UFSController):
        self._dvfs = dvfs
        self._ufs = ufs
        self._ranges = {
            X86AdaptKnob.INTEL_TARGET_PSTATE: _KnobRange(
                ratio_of_ghz(config.CORE_FREQ_MIN_GHZ),
                ratio_of_ghz(config.CORE_FREQ_MAX_GHZ),
            ),
            X86AdaptKnob.INTEL_UNCORE_RATIO: _KnobRange(
                ratio_of_ghz(config.UNCORE_FREQ_MIN_GHZ),
                ratio_of_ghz(config.UNCORE_FREQ_MAX_GHZ),
            ),
        }

    def knob_range(self, knob: X86AdaptKnob) -> tuple[int, int]:
        r = self._ranges[knob]
        return (r.lo, r.hi)

    def set_setting(self, domain_id: int, knob: X86AdaptKnob, value: int) -> None:
        """Program a knob; ``domain_id`` is a core id (P-state) or socket id."""
        r = self._ranges[knob]
        if not r.lo <= value <= r.hi:
            raise HardwareError(
                f"{knob.value}={value} outside supported range [{r.lo}, {r.hi}]"
            )
        if knob is X86AdaptKnob.INTEL_TARGET_PSTATE:
            self._dvfs.set_frequency(domain_id, ghz_of_ratio(value))
        else:
            self._ufs.set_frequency(domain_id, ghz_of_ratio(value))

    def get_setting(self, domain_id: int, knob: X86AdaptKnob) -> int:
        if knob is X86AdaptKnob.INTEL_TARGET_PSTATE:
            return ratio_of_ghz(self._dvfs.get_frequency(domain_id))
        return ratio_of_ghz(self._ufs.get_frequency(domain_id))
