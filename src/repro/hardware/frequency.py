"""DVFS and UFS controllers over the simulated MSR register file.

The controllers quantize requested frequencies to the 100 MHz ratio grid,
validate the platform range, program the corresponding MSR fields and log
every transition with its hardware latency (21 us per core for DVFS,
20 us per socket for UFS — Section V-E of the paper), so the runtime
layers can charge switching overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.errors import FrequencyError
from repro.hardware.msr import MSR, MSRRegisterFile, ghz_of_ratio, ratio_of_ghz
from repro.hardware.topology import NodeTopology


_QUANTIZED: dict[float, float] = {}


def quantize_frequency(freq_ghz: float) -> float:
    """Snap ``freq_ghz`` to the 100 MHz grid (nearest step).

    Memoised: the call sits on the per-core programming path of every
    frequency switch, over a domain of a few dozen distinct values.
    """
    q = _QUANTIZED.get(freq_ghz)
    if q is None:
        q = _QUANTIZED[freq_ghz] = round(
            round(freq_ghz / config.FREQ_STEP_GHZ) * config.FREQ_STEP_GHZ, 1
        )
    return q


@dataclass(frozen=True)
class FrequencyTransition:
    """One logged frequency change."""

    domain: str  # "core" or "uncore"
    domain_id: int  # core id or socket id
    old_ghz: float
    new_ghz: float
    latency_s: float


class _TransitionLog:
    """Shared transition log with total-latency accounting."""

    def __init__(self) -> None:
        self.transitions: list[FrequencyTransition] = []

    def record(self, t: FrequencyTransition) -> None:
        self.transitions.append(t)

    @property
    def count(self) -> int:
        return len(self.transitions)

    @property
    def total_latency_s(self) -> float:
        return sum(t.latency_s for t in self.transitions)

    def clear(self) -> None:
        self.transitions.clear()


class DVFSController:
    """Per-core dynamic voltage and frequency scaling.

    Writes the target P-state ratio into ``IA32_PERF_CTL`` bits 8:15; the
    simulated hardware applies it instantly to ``IA32_PERF_STATUS`` but the
    21 us transition latency is logged for overhead accounting.
    """

    def __init__(self, regfile: MSRRegisterFile, topology: NodeTopology):
        self._regfile = regfile
        self._topology = topology
        self.log = _TransitionLog()
        self._node_freq_cache: tuple[int, float] | None = None
        # Reset programming: every core at the platform default, as one
        # bulk register fill (same end state as per-core _program calls,
        # nothing logged — the node boots at this configuration).
        ratio = ratio_of_ghz(config.DEFAULT_CORE_FREQ_GHZ)
        regfile.hw_fill(MSR.IA32_PERF_CTL, (ratio & 0xFF) << 8)
        regfile.hw_fill(MSR.IA32_PERF_STATUS, (ratio & 0xFF) << 8)

    def _program(self, core_id: int, freq_ghz: float, *, record: bool) -> None:
        ratio = ratio_of_ghz(freq_ghz)
        ctl = self._regfile.read(core_id, MSR.IA32_PERF_CTL)
        new_ctl = (ctl & ~(0xFF << 8)) | ((ratio & 0xFF) << 8)
        if new_ctl == ctl:
            # The register already encodes this ratio, so PERF_STATUS is
            # in sync (writes always grant the target) and no transition
            # can be due: programming would be a complete no-op.  This
            # makes redundant node-wide reprogramming (reset on a fresh
            # node, replay fast-forward to an unchanged state) free.
            return
        old = self.get_frequency(core_id) if record else None
        self._regfile.write(core_id, MSR.IA32_PERF_CTL, new_ctl)
        # Hardware grants the request immediately in the simulation.
        self._regfile.hw_set(core_id, MSR.IA32_PERF_STATUS, (ratio & 0xFF) << 8)
        if record and old != freq_ghz:
            self.log.record(
                FrequencyTransition(
                    domain="core",
                    domain_id=core_id,
                    old_ghz=old,
                    new_ghz=freq_ghz,
                    latency_s=config.DVFS_TRANSITION_LATENCY_S,
                )
            )

    def set_frequency(self, core_id: int, freq_ghz: float) -> float:
        """Set one core's frequency; returns the quantized value applied."""
        q = quantize_frequency(freq_ghz)
        if not config.CORE_FREQ_MIN_GHZ <= q <= config.CORE_FREQ_MAX_GHZ:
            raise FrequencyError(
                f"core frequency {freq_ghz} GHz outside supported range "
                f"[{config.CORE_FREQ_MIN_GHZ}, {config.CORE_FREQ_MAX_GHZ}]"
            )
        self._program(core_id, q, record=True)
        return q

    def set_all(self, freq_ghz: float) -> float:
        """Set every core of the node to ``freq_ghz``."""
        q = quantize_frequency(freq_ghz)
        for core in self._topology.all_core_ids():
            q = self.set_frequency(core, q)
        return q

    def get_frequency(self, core_id: int) -> float:
        status = self._regfile.read(core_id, MSR.IA32_PERF_STATUS)
        ratio = (status >> 8) & 0xFF
        if ratio == 0:  # before first programming
            return config.DEFAULT_CORE_FREQ_GHZ
        return ghz_of_ratio(ratio)

    def node_frequency(self) -> float:
        """Return the common frequency if all cores agree, else raise.

        Reading every core's registers per call made this the hottest
        spot of controller-driven runs; the derived value is cached
        against the register file's mutation counter, so any write —
        through this controller, x86_adapt or a raw ``wrmsr`` —
        invalidates it exactly.
        """
        cached = self._node_freq_cache
        generation = self._regfile.generation
        if cached is not None and cached[0] == generation:
            return cached[1]
        freqs = {self.get_frequency(c) for c in self._topology.all_core_ids()}
        if len(freqs) != 1:
            raise FrequencyError(f"cores run at mixed frequencies: {sorted(freqs)}")
        value = freqs.pop()
        self._node_freq_cache = (generation, value)
        return value


class UFSController:
    """Per-socket uncore frequency scaling via ``MSR_UNCORE_RATIO_LIMIT``.

    We pin min ratio == max ratio, which is how the READEX PCPs fix the
    uncore frequency on Haswell.
    """

    def __init__(self, regfile: MSRRegisterFile, topology: NodeTopology):
        self._regfile = regfile
        self._topology = topology
        self.log = _TransitionLog()
        self._node_freq_cache: tuple[int, float] | None = None
        self._cores_per_socket = topology.sockets[0].num_cores
        # Reset programming, as in the DVFS controller: one bulk fill.
        ratio = ratio_of_ghz(config.DEFAULT_UNCORE_FREQ_GHZ)
        regfile.hw_fill(
            MSR.MSR_UNCORE_RATIO_LIMIT, (ratio & 0x7F) | ((ratio & 0x7F) << 8)
        )

    def _any_core_of(self, socket_id: int) -> int:
        return self._topology.sockets[socket_id].cores[0].core_id

    def _program(self, socket_id: int, freq_ghz: float, *, record: bool) -> None:
        ratio = ratio_of_ghz(freq_ghz)
        # bits 0:6 = max ratio, bits 8:14 = min ratio
        value = (ratio & 0x7F) | ((ratio & 0x7F) << 8)
        core = self._any_core_of(socket_id)
        if self._regfile.read(core, MSR.MSR_UNCORE_RATIO_LIMIT) == value:
            return  # register already encodes this ratio: full no-op
        old = self.get_frequency(socket_id) if record else None
        self._regfile.write(core, MSR.MSR_UNCORE_RATIO_LIMIT, value)
        if record and old != freq_ghz:
            self.log.record(
                FrequencyTransition(
                    domain="uncore",
                    domain_id=socket_id,
                    old_ghz=old,
                    new_ghz=freq_ghz,
                    latency_s=config.UFS_TRANSITION_LATENCY_S,
                )
            )

    def set_frequency(self, socket_id: int, freq_ghz: float) -> float:
        q = quantize_frequency(freq_ghz)
        if not config.UNCORE_FREQ_MIN_GHZ <= q <= config.UNCORE_FREQ_MAX_GHZ:
            raise FrequencyError(
                f"uncore frequency {freq_ghz} GHz outside supported range "
                f"[{config.UNCORE_FREQ_MIN_GHZ}, {config.UNCORE_FREQ_MAX_GHZ}]"
            )
        self._program(socket_id, q, record=True)
        return q

    def set_all(self, freq_ghz: float) -> float:
        q = quantize_frequency(freq_ghz)
        for socket in self._topology.sockets:
            q = self.set_frequency(socket.socket_id, q)
        return q

    def get_frequency(self, socket_id: int) -> float:
        value = self._regfile.read(
            self._any_core_of(socket_id), MSR.MSR_UNCORE_RATIO_LIMIT
        )
        ratio = value & 0x7F
        if ratio == 0:
            return config.DEFAULT_UNCORE_FREQ_GHZ
        return ghz_of_ratio(ratio)

    def node_frequency(self) -> float:
        """Common uncore frequency, cached like its DVFS counterpart."""
        cached = self._node_freq_cache
        generation = self._regfile.generation
        if cached is not None and cached[0] == generation:
            return cached[1]
        freqs = {self.get_frequency(s.socket_id) for s in self._topology.sockets}
        if len(freqs) != 1:
            raise FrequencyError(f"sockets run at mixed uncore frequencies: {sorted(freqs)}")
        value = freqs.pop()
        self._node_freq_cache = (generation, value)
        return value
