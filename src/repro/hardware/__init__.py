"""Simulated hardware substrate.

This package models the experimental platform of the paper (Section V-A):
a dual-socket Intel Haswell-EP compute node with

* per-core DVFS (1.2--2.5 GHz) driven through ``IA32_PERF_CTL``,
* per-socket UFS (1.3--3.0 GHz) driven through ``MSR_UNCORE_RATIO_LIMIT``,
* RAPL package/DRAM energy counters with 32-bit wraparound,
* an HDEEM-style FPGA node-energy sampler (1 kSa/s, ~5 ms start delay),
* an analytic ground-truth power model with per-node variability.

The tuning stack above never touches the power model directly; it reads
energies through RAPL / HDEEM and sets frequencies through the
``x86_adapt``-style wrapper, exactly as the paper's software stack does.
"""

from repro.hardware.msr import MSRRegisterFile, MSR, RegisterScope
from repro.hardware.msr_tools import rdmsr, wrmsr
from repro.hardware.frequency import (
    DVFSController,
    UFSController,
    FrequencyTransition,
    quantize_frequency,
)
from repro.hardware.x86_adapt import X86AdaptDevice, X86AdaptKnob
from repro.hardware.topology import CoreInfo, SocketInfo, NodeTopology
from repro.hardware.power import PowerModel, PowerBreakdown, NodeVariability
from repro.hardware.rapl import RaplDomain, RaplReader, RAPL_ENERGY_UNIT_J
from repro.hardware.hdeem import HdeemMonitor, HdeemMeasurement
from repro.hardware.node import ComputeNode
from repro.hardware.cluster import Cluster

__all__ = [
    "MSRRegisterFile",
    "MSR",
    "RegisterScope",
    "rdmsr",
    "wrmsr",
    "DVFSController",
    "UFSController",
    "FrequencyTransition",
    "quantize_frequency",
    "X86AdaptDevice",
    "X86AdaptKnob",
    "CoreInfo",
    "SocketInfo",
    "NodeTopology",
    "PowerModel",
    "PowerBreakdown",
    "NodeVariability",
    "RaplDomain",
    "RaplReader",
    "RAPL_ENERGY_UNIT_J",
    "HdeemMonitor",
    "HdeemMeasurement",
    "ComputeNode",
    "Cluster",
]
