"""Node topology: sockets and cores of the simulated Haswell-EP node."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import config


@dataclass(frozen=True)
class CoreInfo:
    """One physical core (Hyper-Threading is disabled on the platform)."""

    core_id: int
    socket_id: int

    def __post_init__(self) -> None:
        if self.core_id < 0 or self.socket_id < 0:
            raise ValueError("core_id and socket_id must be non-negative")


@dataclass(frozen=True)
class SocketInfo:
    """One processor package with its cores."""

    socket_id: int
    cores: tuple[CoreInfo, ...]

    @property
    def num_cores(self) -> int:
        return len(self.cores)


@dataclass(frozen=True)
class NodeTopology:
    """Sockets/cores layout of one compute node.

    Core ids are globally numbered across sockets in socket order, matching
    Linux's view with HT disabled (cores 0-11 on socket 0, 12-23 on
    socket 1 for the default platform).
    """

    sockets: tuple[SocketInfo, ...] = field(default_factory=tuple)

    @classmethod
    def default(cls) -> "NodeTopology":
        """The paper's platform: 2 sockets x 12 cores."""
        return cls.build(config.SOCKETS_PER_NODE, config.CORES_PER_SOCKET)

    @classmethod
    def build(cls, num_sockets: int, cores_per_socket: int) -> "NodeTopology":
        if num_sockets <= 0 or cores_per_socket <= 0:
            raise ValueError("topology dimensions must be positive")
        sockets = []
        core_id = 0
        for s in range(num_sockets):
            cores = tuple(
                CoreInfo(core_id=core_id + i, socket_id=s)
                for i in range(cores_per_socket)
            )
            core_id += cores_per_socket
            sockets.append(SocketInfo(socket_id=s, cores=cores))
        return cls(sockets=tuple(sockets))

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    @property
    def num_cores(self) -> int:
        return sum(s.num_cores for s in self.sockets)

    def socket_of_core(self, core_id: int) -> int:
        """Return the socket id owning ``core_id``."""
        for socket in self.sockets:
            for core in socket.cores:
                if core.core_id == core_id:
                    return socket.socket_id
        raise ValueError(f"no such core: {core_id}")

    def all_core_ids(self) -> tuple[int, ...]:
        return tuple(c.core_id for s in self.sockets for c in s.cores)
