"""HDEEM-style high-definition node-energy monitoring.

HDEEM [Hackenberg et al. 2014] is an FPGA on the node board that samples
blade power at 1 kSa/s out-of-band (no perturbation of the host) and
integrates energy.  Two properties matter for the paper's methodology and
are modelled here:

* **sampling**: energy is the integral of a 1 kHz-sampled power signal,
  so very short intervals are quantized;
* **start delay**: beginning a measurement takes ~5 ms on average, which
  is why regions shorter than 100 ms are not considered significant
  (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.errors import HardwareError
from repro.util.rng import rng_for


@dataclass(frozen=True)
class HdeemMeasurement:
    """Result of one start/stop measurement window."""

    energy_j: float
    duration_s: float
    samples: int

    @property
    def mean_power_w(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.energy_j / self.duration_s


@dataclass
class _Segment:
    duration_s: float
    power_w: float


class HdeemMonitor:
    """FPGA-side node power sampler for one compute node.

    The node simulation appends ``(duration, node_power)`` segments as
    simulated time advances; software starts/stops measurement windows and
    receives sampled-integrated energy.  The start delay consumes the
    first :data:`repro.config.HDEEM_MEASUREMENT_DELAY_S` seconds of the
    window, mirroring the latency HDEEM needs before delivering values.
    """

    def __init__(self, node_id: int = 0, *, seed: int = config.DEFAULT_SEED):
        self._node_id = node_id
        self._seed = seed
        self._now_s = 0.0
        self._segments: list[_Segment] = []
        #: Power timeline recorded but not yet materialised as _Segment
        #: rows: (duration, power) scalars from :meth:`advance` and array
        #: blocks from :meth:`advance_many`, in arrival order.  The FPGA
        #: only needs the timeline when a window is integrated, so row
        #: objects are built lazily (:meth:`_flush`).
        self._pending: list[tuple] = []
        self._window_start: float | None = None
        self._measurement_index = 0

    # -- hardware side ------------------------------------------------------
    def advance(self, duration_s: float, node_power_w: float) -> None:
        """Record that the node drew ``node_power_w`` for ``duration_s``."""
        if duration_s < 0:
            raise HardwareError("cannot advance time backwards")
        if duration_s == 0:
            return
        self._pending.append((duration_s, node_power_w))
        self._now_s += duration_s

    def advance_many(self, durations_s, node_powers_w) -> None:
        """Record a block of ``(duration, power)`` segments in one call.

        Semantically identical to calling :meth:`advance` per segment
        (zero durations are skipped, time accumulates in sequence order);
        the segment rows are materialised lazily on the next window
        integration.  Used by the execution simulator's replay fast path.
        """
        durations_s = np.asarray(durations_s, dtype=float)
        if durations_s.size == 0:
            return
        if float(durations_s.min()) < 0:
            raise HardwareError("cannot advance time backwards")
        node_powers_w = np.asarray(node_powers_w, dtype=float)
        nonzero = durations_s > 0
        if nonzero.any():
            self._pending.append((durations_s[nonzero], node_powers_w[nonzero]))
        # Sequential left-to-right accumulation (np.cumsum), bit-identical
        # to the per-segment ``+=`` of advance(); zero durations are
        # exact no-ops either way.
        self._now_s = float(
            np.cumsum(np.concatenate(([self._now_s], durations_s)))[-1]
        )

    def _flush(self) -> None:
        """Materialise pending timeline blocks into _Segment rows."""
        if not self._pending:
            return
        segments = self._segments
        for durations, powers in self._pending:
            if isinstance(durations, np.ndarray):
                segments.extend(map(_Segment, durations.tolist(), powers.tolist()))
            else:
                segments.append(_Segment(durations, powers))
        self._pending.clear()

    @property
    def now_s(self) -> float:
        return self._now_s

    # -- software side ------------------------------------------------------
    def start(self) -> None:
        if self._window_start is not None:
            raise HardwareError("HDEEM measurement already running")
        self._window_start = self._now_s + config.HDEEM_MEASUREMENT_DELAY_S

    def stop(self) -> HdeemMeasurement:
        if self._window_start is None:
            raise HardwareError("HDEEM measurement not running")
        start = self._window_start
        end = self._now_s
        self._window_start = None
        self._measurement_index += 1
        if end <= start:
            return HdeemMeasurement(energy_j=0.0, duration_s=max(0.0, end - start), samples=0)
        energy, samples = self._integrate(start, end)
        rng = rng_for("hdeem", self._node_id, self._measurement_index, seed=self._seed)
        noise = float(rng.lognormal(0.0, config.MEASUREMENT_NOISE_SIGMA))
        return HdeemMeasurement(
            energy_j=energy * noise, duration_s=end - start, samples=samples
        )

    def _integrate(self, t0: float, t1: float) -> tuple[float, int]:
        """Integrate the power timeline between ``t0`` and ``t1``.

        The 1 kSa/s sampling means energy resolves at millisecond
        granularity: each sample takes the power at the sample instant and
        charges it for one sample period.
        """
        self._flush()
        period = 1.0 / config.HDEEM_SAMPLE_RATE_HZ
        # Build cumulative segment boundaries once per integration.
        energy = 0.0
        samples = 0
        t = t0
        seg_start = 0.0
        seg_iter = iter(self._segments)
        seg = next(seg_iter, None)
        while seg is not None and t < t1:
            seg_end = seg_start + seg.duration_s
            if seg_end <= t:
                seg_start = seg_end
                seg = next(seg_iter, None)
                continue
            # Sample instants falling inside [max(t, seg_start), min(t1, seg_end))
            lo = max(t, seg_start)
            hi = min(t1, seg_end)
            if hi > lo:
                energy += (hi - lo) * seg.power_w
                samples += int((hi - lo) / period)
            t = hi
            if t >= seg_end:
                seg_start = seg_end
                seg = next(seg_iter, None)
        return energy, samples
