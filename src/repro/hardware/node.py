"""One simulated compute node: registers, knobs, meters and ground truth.

:class:`ComputeNode` is the object the execution simulator runs
applications on.  It owns

* the MSR register file and the DVFS/UFS controllers over it,
* the ``x86_adapt`` knob device the PCP plugins use,
* the RAPL accumulators/reader and the HDEEM monitor,
* the ground-truth :class:`~repro.hardware.power.PowerModel` with this
  node's variability factors.

Simulated time advances only through :meth:`advance`, which charges
energy into every meter consistently.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.errors import HardwareError
from repro.hardware.frequency import DVFSController, UFSController
from repro.hardware.hdeem import HdeemMonitor
from repro.hardware.msr import MSRRegisterFile
from repro.hardware.power import NodeVariability, PowerBreakdown, PowerModel
from repro.hardware.rapl import RaplAccumulator, RaplDomain, RaplReader
from repro.hardware.topology import NodeTopology
from repro.hardware.x86_adapt import X86AdaptDevice


class ComputeNode:
    """A dual-socket Haswell-EP-like compute node."""

    def __init__(
        self,
        node_id: int = 0,
        *,
        seed: int = config.DEFAULT_SEED,
        topology: NodeTopology | None = None,
        variability: NodeVariability | None = None,
    ):
        self.node_id = node_id
        self.seed = seed
        self.topology = topology or NodeTopology.default()
        cores_per_socket = self.topology.sockets[0].num_cores
        self.msr = MSRRegisterFile(
            num_cores=self.topology.num_cores,
            num_sockets=self.topology.num_sockets,
            cores_per_socket=cores_per_socket,
        )
        self.dvfs = DVFSController(self.msr, self.topology)
        self.ufs = UFSController(self.msr, self.topology)
        self.x86_adapt = X86AdaptDevice(self.dvfs, self.ufs)
        self.power_model = PowerModel(
            variability or NodeVariability.sample(node_id, seed=seed),
            num_sockets=self.topology.num_sockets,
            num_cores=self.topology.num_cores,
        )
        self.hdeem = HdeemMonitor(node_id, seed=seed)
        self._rapl_accumulators = [
            RaplAccumulator(self.msr, s.socket_id, cores_per_socket)
            for s in self.topology.sockets
        ]
        self.rapl = RaplReader(self.msr, self.topology.num_sockets, cores_per_socket)
        self._now_s = 0.0

    # ------------------------------------------------------------------
    @property
    def now_s(self) -> float:
        """Current simulated wall-clock time on this node."""
        return self._now_s

    @property
    def core_freq_ghz(self) -> float:
        return self.dvfs.node_frequency()

    @property
    def uncore_freq_ghz(self) -> float:
        return self.ufs.node_frequency()

    def set_frequencies(self, core_ghz: float, uncore_ghz: float) -> None:
        """Convenience: program every core and socket of the node."""
        self.dvfs.set_all(core_ghz)
        self.ufs.set_all(uncore_ghz)

    def reset_to_default(self) -> None:
        """Return to the platform default operating point (2.5 | 3.0 GHz)."""
        self.set_frequencies(
            config.DEFAULT_CORE_FREQ_GHZ, config.DEFAULT_UNCORE_FREQ_GHZ
        )

    # ------------------------------------------------------------------
    def compute_power(
        self,
        *,
        active_threads: int,
        core_activity: float,
        uncore_activity: float,
        membw_gbs: float,
    ) -> PowerBreakdown:
        """Ground-truth power at the node's current frequencies."""
        return self.power_model.power(
            core_freq_ghz=self.core_freq_ghz,
            uncore_freq_ghz=self.uncore_freq_ghz,
            active_threads=active_threads,
            core_activity=core_activity,
            uncore_activity=uncore_activity,
            membw_gbs=membw_gbs,
        )

    def advance(self, duration_s: float, breakdown: PowerBreakdown) -> None:
        """Advance simulated time, charging every meter.

        RAPL energy splits evenly across sockets (workloads here are
        node-balanced); HDEEM records total node power.
        """
        if duration_s < 0:
            raise HardwareError("cannot advance time backwards")
        if duration_s == 0:
            return
        self._now_s += duration_s
        self.hdeem.advance(duration_s, breakdown.node_w)
        n = len(self._rapl_accumulators)
        for acc in self._rapl_accumulators:
            acc.deposit(RaplDomain.PACKAGE, breakdown.rapl_package_w * duration_s / n)
            acc.deposit(RaplDomain.DRAM, breakdown.rapl_dram_w * duration_s / n)

    def advance_many(
        self,
        durations_s,
        node_powers_w,
        rapl_package_powers_w,
        rapl_dram_powers_w,
    ) -> None:
        """Advance through a sequence of charge segments in bulk.

        Equivalent — to the bit — to calling :meth:`advance` once per
        segment with a breakdown carrying the given component powers:
        time accumulates in sequence order, HDEEM records the same
        timeline, and the per-socket RAPL deposits replay the identical
        residual arithmetic.  Zero-length segments are no-ops, as in
        :meth:`advance`.  This is the meter backend of the execution
        simulator's replay fast path.
        """
        durations_s = np.asarray(durations_s, dtype=float)
        if durations_s.size == 0:
            return
        if float(durations_s.min()) < 0:
            raise HardwareError("cannot advance time backwards")
        node_powers_w = np.asarray(node_powers_w, dtype=float)
        # Sequential accumulation (cumsum == repeated ``+=``), seeded
        # with the current clock.
        self._now_s = float(
            np.cumsum(np.concatenate(([self._now_s], durations_s)))[-1]
        )
        self.hdeem.advance_many(durations_s, node_powers_w)
        n = len(self._rapl_accumulators)
        package_j = np.asarray(rapl_package_powers_w, dtype=float) * durations_s / n
        dram_j = np.asarray(rapl_dram_powers_w, dtype=float) * durations_s / n
        nonzero = durations_s > 0
        if not nonzero.all():
            package_j = package_j[nonzero]
            dram_j = dram_j[nonzero]
        package_list = package_j.tolist()
        dram_list = dram_j.tolist()
        for acc in self._rapl_accumulators:
            acc.deposit_many(RaplDomain.PACKAGE, package_list)
            acc.deposit_many(RaplDomain.DRAM, dram_list)

    def rapl_state(self) -> dict[str, tuple]:
        """Raw RAPL counters and carried residuals, per domain and socket.

        The observable end state of the node's energy accumulators:
        ``{"package": ((raw, residual), ...), "dram": (...)}`` with one
        ``(counter, residual)`` pair per socket.  The sweep-replay
        engine (:mod:`repro.execution.sweep_replay`) reproduces this
        state analytically per grid configuration; the equivalence
        tests compare both sides through this accessor.
        """
        cores_per_socket = self.topology.sockets[0].num_cores
        state: dict[str, tuple] = {}
        for domain in (RaplDomain.PACKAGE, RaplDomain.DRAM):
            pairs = []
            for socket, acc in zip(self.topology.sockets, self._rapl_accumulators):
                raw = self.msr.hw_get(
                    socket.socket_id * cores_per_socket, domain.value
                )
                pairs.append((raw, acc.residual(domain)))
            state[domain.name.lower()] = tuple(pairs)
        return state

    def advance_idle(self, duration_s: float) -> None:
        """Advance time with no workload running."""
        self.advance(
            duration_s,
            self.power_model.idle_power(self.core_freq_ghz, self.uncore_freq_ghz),
        )
