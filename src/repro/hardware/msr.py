"""Register-accurate simulated model-specific registers (MSRs).

The paper's software stack changes frequencies through the ``x86_adapt``
library, which ultimately programs MSRs.  We model the handful of
registers that stack touches:

========================  ======  =======  =====================================
Register                  Addr    Scope    Function
========================  ======  =======  =====================================
``IA32_PERF_STATUS``      0x198   core     current P-state ratio (read-only)
``IA32_PERF_CTL``         0x199   core     target P-state ratio (bits 8:15)
``MSR_RAPL_POWER_UNIT``   0x606   package  energy status unit (read-only)
``MSR_PKG_ENERGY_STATUS`` 0x611   package  package energy counter (read-only)
``MSR_DRAM_ENERGY_STATUS``0x619   package  DRAM energy counter (read-only)
``MSR_UNCORE_RATIO_LIMIT``0x620   package  min/max uncore ratio (bits 8:14/0:6)
========================  ======  =======  =====================================

Ratios are multiples of the 100 MHz bus clock, so e.g. 2.5 GHz encodes as
ratio 25.  The register file validates scope, address and write
permissions — the same failure modes ``msr-tools`` hits on real hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import config
from repro.errors import MSRError


class RegisterScope(enum.Enum):
    """Whether one register instance exists per core or per package."""

    CORE = "core"
    PACKAGE = "package"


class MSR(enum.IntEnum):
    """Addresses of the modelled registers."""

    IA32_PERF_STATUS = 0x198
    IA32_PERF_CTL = 0x199
    MSR_RAPL_POWER_UNIT = 0x606
    MSR_PKG_ENERGY_STATUS = 0x611
    MSR_DRAM_ENERGY_STATUS = 0x619
    MSR_UNCORE_RATIO_LIMIT = 0x620


@dataclass(frozen=True)
class _RegisterSpec:
    scope: RegisterScope
    writable: bool
    reset: int


#: Energy Status Unit exponent: energy unit = 1 / 2**ESU joules.  14 matches
#: real Haswell (61 microjoule granularity).
RAPL_ESU = 14

_REGISTER_SPECS: dict[int, _RegisterSpec] = {
    MSR.IA32_PERF_STATUS: _RegisterSpec(RegisterScope.CORE, False, 0),
    MSR.IA32_PERF_CTL: _RegisterSpec(RegisterScope.CORE, True, 0),
    MSR.MSR_RAPL_POWER_UNIT: _RegisterSpec(
        # bits 12:8 hold the ESU on real hardware.
        RegisterScope.PACKAGE, False, RAPL_ESU << 8
    ),
    MSR.MSR_PKG_ENERGY_STATUS: _RegisterSpec(RegisterScope.PACKAGE, False, 0),
    MSR.MSR_DRAM_ENERGY_STATUS: _RegisterSpec(RegisterScope.PACKAGE, False, 0),
    MSR.MSR_UNCORE_RATIO_LIMIT: _RegisterSpec(RegisterScope.PACKAGE, True, 0),
}

_U64_MASK = (1 << 64) - 1

#: Registers whose mutation can change a node frequency (see
#: ``MSRRegisterFile.generation``).
_FREQUENCY_REGISTERS = frozenset(
    {MSR.IA32_PERF_CTL, MSR.IA32_PERF_STATUS, MSR.MSR_UNCORE_RATIO_LIMIT}
)


#: Conversion memos: the ratio/GHz domain is tiny (tens of grid points)
#: but the conversions run once per core per frequency programming, which
#: makes the ``round`` calls a measurable cost of controller-driven runs.
_RATIO_OF_GHZ: dict[float, int] = {}
_GHZ_OF_RATIO: dict[int, float] = {}


def ratio_of_ghz(freq_ghz: float) -> int:
    """Encode a frequency as a bus-clock ratio (100 MHz units)."""
    ratio = _RATIO_OF_GHZ.get(freq_ghz)
    if ratio is None:
        ratio = _RATIO_OF_GHZ[freq_ghz] = int(round(freq_ghz / config.BUS_CLOCK_GHZ))
    return ratio


def ghz_of_ratio(ratio: int) -> float:
    """Decode a bus-clock ratio back to GHz."""
    ghz = _GHZ_OF_RATIO.get(ratio)
    if ghz is None:
        ghz = _GHZ_OF_RATIO[ratio] = round(ratio * config.BUS_CLOCK_GHZ, 1)
    return ghz


class MSRRegisterFile:
    """All modelled MSRs of one node.

    Core-scoped registers are indexed by core id, package-scoped registers
    by socket id; accessing a package register through any core of that
    package aliases to the same storage, as on real hardware.
    """

    def __init__(self, num_cores: int, num_sockets: int, cores_per_socket: int):
        if num_cores != num_sockets * cores_per_socket:
            raise MSRError("inconsistent topology for MSR register file")
        self._num_cores = num_cores
        self._num_sockets = num_sockets
        self._cores_per_socket = cores_per_socket
        self._values: dict[tuple[int, int], int] = {}
        #: Monotonic mutation counter over the *frequency* registers
        #: (P-state and uncore-ratio), bumped by every write/hw_set that
        #: touches one — including direct ``wrmsr`` — so the controllers'
        #: node-frequency caches invalidate exactly.  Energy-counter
        #: updates (RAPL deposits, every meter charge) deliberately do
        #: not bump it: they cannot change a frequency, and counting them
        #: would evict the cache once per charge.
        self.generation = 0
        for addr, spec in _REGISTER_SPECS.items():
            domains = num_cores if spec.scope is RegisterScope.CORE else num_sockets
            for d in range(domains):
                self._values[(addr, d)] = spec.reset

    # -- helpers ----------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self._num_cores

    @property
    def num_sockets(self) -> int:
        return self._num_sockets

    def _spec(self, addr: int) -> _RegisterSpec:
        try:
            return _REGISTER_SPECS[addr]
        except KeyError:
            raise MSRError(f"unknown MSR address {addr:#x}") from None

    def _domain(self, addr: int, cpu: int) -> int:
        spec = self._spec(addr)
        if not 0 <= cpu < self._num_cores:
            raise MSRError(f"no such cpu: {cpu}")
        if spec.scope is RegisterScope.CORE:
            return cpu
        return cpu // self._cores_per_socket

    # -- guest-visible interface ------------------------------------------
    def read(self, cpu: int, addr: int) -> int:
        """``rdmsr``: read a register through logical cpu ``cpu``."""
        return self._values[(addr, self._domain(addr, cpu))]

    def write(self, cpu: int, addr: int, value: int) -> None:
        """``wrmsr``: write a register; read-only registers raise MSRError."""
        spec = self._spec(addr)
        if not spec.writable:
            raise MSRError(f"MSR {addr:#x} is read-only")
        if not 0 <= value <= _U64_MASK:
            raise MSRError(f"MSR value out of 64-bit range: {value:#x}")
        self._values[(addr, self._domain(addr, cpu))] = value
        if addr in _FREQUENCY_REGISTERS:
            self.generation += 1
        if addr == MSR.IA32_PERF_CTL:
            # The P-state machine grants the requested ratio: the target in
            # PERF_CTL bits 8:15 becomes the current ratio in PERF_STATUS.
            ratio = (value >> 8) & 0xFF
            self.hw_set(cpu, MSR.IA32_PERF_STATUS, ratio << 8)

    # -- hardware-side interface (used by the node simulation, not guests) -
    def hw_fill(self, addr: int, value: int) -> None:
        """Set every instance of one register (hardware reset programming).

        Equivalent to ``hw_set`` over all domains; used by the DVFS/UFS
        controllers to bring a fresh node to the platform default in one
        pass instead of one read-modify-write cycle per core.
        """
        spec = self._spec(addr)
        domains = (
            self._num_cores
            if spec.scope is RegisterScope.CORE
            else self._num_sockets
        )
        value &= _U64_MASK
        for domain in range(domains):
            self._values[(addr, domain)] = value
        if addr in _FREQUENCY_REGISTERS:
            self.generation += 1

    def hw_set(self, cpu: int, addr: int, value: int) -> None:
        """Set any register, bypassing write protection (hardware updates)."""
        self._spec(addr)
        self._values[(addr, self._domain(addr, cpu))] = value & _U64_MASK
        if addr in _FREQUENCY_REGISTERS:
            self.generation += 1

    def hw_get(self, cpu: int, addr: int) -> int:
        return self._values[(addr, self._domain(addr, cpu))]
