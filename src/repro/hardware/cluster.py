"""A pool of compute nodes with per-node variability.

Models the *haswell* partition: many identical-specification nodes whose
actual power draw differs node to node (Figures 2a/3a).  Jobs allocate
nodes by id or round-robin; every node is reproducibly derived from the
cluster seed, so "run benchmark X on node 7" is a deterministic
experiment.
"""

from __future__ import annotations

from repro import config
from repro.errors import JobError
from repro.hardware.node import ComputeNode
from repro.hardware.topology import NodeTopology


class Cluster:
    """Lazy pool of :class:`~repro.hardware.node.ComputeNode` instances."""

    def __init__(
        self,
        num_nodes: int = 16,
        *,
        seed: int = config.DEFAULT_SEED,
        topology: NodeTopology | None = None,
    ):
        if num_nodes <= 0:
            raise JobError("cluster must have at least one node")
        self.num_nodes = num_nodes
        self.seed = seed
        self._topology = topology
        self._nodes: dict[int, ComputeNode] = {}
        self._next = 0

    @property
    def topology(self) -> NodeTopology | None:
        """The custom topology nodes are built with (``None`` = default)."""
        return self._topology

    def check_node_id(self, node_id: int) -> None:
        """Raise :class:`~repro.errors.JobError` for out-of-range ids."""
        if not 0 <= node_id < self.num_nodes:
            raise JobError(f"no such node: {node_id} (cluster has {self.num_nodes})")

    def node(self, node_id: int) -> ComputeNode:
        """Return (creating on first use) the node with this id."""
        self.check_node_id(node_id)
        if node_id not in self._nodes:
            self._nodes[node_id] = ComputeNode(
                node_id, seed=self.seed, topology=self._topology
            )
        return self._nodes[node_id]

    def fresh_node(self, node_id: int) -> ComputeNode:
        """Return a *fresh* instance of a node (meters reset, same physics).

        Useful when an experiment needs a clean RAPL/HDEEM baseline on the
        same physical node: variability factors are reproducible from
        (node_id, seed), so the physics is unchanged.
        """
        self.check_node_id(node_id)
        node = ComputeNode(node_id, seed=self.seed, topology=self._topology)
        self._nodes[node_id] = node
        return node

    def allocate(self) -> ComputeNode:
        """Round-robin allocation, like a batch scheduler handing out nodes."""
        node = self.node(self._next % self.num_nodes)
        self._next += 1
        return node

    def __len__(self) -> int:
        return self.num_nodes
