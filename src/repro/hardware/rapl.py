"""RAPL energy counters over the simulated MSRs.

Intel's Running Average Power Limit interface exposes per-package and
per-DRAM-domain energy accumulators as 32-bit MSR fields in units of
``1 / 2**ESU`` joules (61 uJ on Haswell).  The counters wrap around every
few minutes under load; :class:`RaplReader` handles the wraparound the
way ``measure-rapl`` does — by sampling often enough that at most one
wrap occurs between samples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.msr import MSR, MSRRegisterFile, RAPL_ESU

#: Joules per counter increment.
RAPL_ENERGY_UNIT_J = 1.0 / (1 << RAPL_ESU)

_COUNTER_MASK = (1 << 32) - 1


class RaplDomain(enum.Enum):
    """RAPL measurement domains modelled on the platform."""

    PACKAGE = MSR.MSR_PKG_ENERGY_STATUS
    DRAM = MSR.MSR_DRAM_ENERGY_STATUS


class RaplAccumulator:
    """Hardware side: accumulates joules into the wrapping MSR counters.

    One accumulator exists per socket; the node simulation calls
    :meth:`deposit` as (simulated) time advances.
    """

    def __init__(self, regfile: MSRRegisterFile, socket_id: int, cores_per_socket: int):
        self._regfile = regfile
        self._cpu = socket_id * cores_per_socket  # any core of the socket
        self._residual = {RaplDomain.PACKAGE: 0.0, RaplDomain.DRAM: 0.0}

    def deposit(self, domain: RaplDomain, joules: float) -> None:
        """Add ``joules`` to the domain counter, honouring unit quantisation."""
        if joules < 0:
            raise HardwareError("cannot deposit negative energy")
        total = self._residual[domain] + joules
        ticks = int(total / RAPL_ENERGY_UNIT_J)
        self._residual[domain] = total - ticks * RAPL_ENERGY_UNIT_J
        old = self._regfile.hw_get(self._cpu, domain.value)
        self._regfile.hw_set(self._cpu, domain.value, (old + ticks) & _COUNTER_MASK)

    def residual(self, domain: RaplDomain) -> float:
        """Energy deposited but below one counter tick, carried forward."""
        return self._residual[domain]

    def deposit_many(self, domain: RaplDomain, joules_seq) -> None:
        """Deposit a sequence of energies with one register update.

        The residual/tick arithmetic follows the exact float-operation
        order of repeated :meth:`deposit` calls, so the counter and the
        carried residual end up bit-identical; only the per-call MSR
        write is coalesced (tick counts add modulo the 32-bit wrap, so
        one wrapped update equals many).  Used by the replay fast path
        of the execution simulator.
        """
        unit = RAPL_ENERGY_UNIT_J
        residual = self._residual[domain]
        ticks_total = 0
        for joules in joules_seq:
            if joules < 0:
                raise HardwareError("cannot deposit negative energy")
            total = residual + joules
            ticks = int(total / unit)
            residual = total - ticks * unit
            ticks_total += ticks
        self._residual[domain] = residual
        old = self._regfile.hw_get(self._cpu, domain.value)
        self._regfile.hw_set(
            self._cpu, domain.value, (old + ticks_total) & _COUNTER_MASK
        )


@dataclass
class _DomainSample:
    raw: int
    joules_total: float  # unwrapped


class RaplReader:
    """Software side: reads energy like ``measure-rapl`` / PAPI's RAPL component.

    Tracks the last raw value per (socket, domain) and unwraps 32-bit
    overflow, assuming at most one wrap between consecutive reads.
    """

    def __init__(self, regfile: MSRRegisterFile, num_sockets: int, cores_per_socket: int):
        self._regfile = regfile
        self._num_sockets = num_sockets
        self._cores_per_socket = cores_per_socket
        # Read the ESU from MSR_RAPL_POWER_UNIT the way real tools do.
        unit_reg = regfile.read(0, MSR.MSR_RAPL_POWER_UNIT)
        self._unit_j = 1.0 / (1 << ((unit_reg >> 8) & 0x1F))
        self._last: dict[tuple[int, RaplDomain], _DomainSample] = {}

    @property
    def energy_unit_j(self) -> float:
        return self._unit_j

    def _raw(self, socket_id: int, domain: RaplDomain) -> int:
        cpu = socket_id * self._cores_per_socket
        return self._regfile.read(cpu, domain.value)

    def read_joules(self, socket_id: int, domain: RaplDomain) -> float:
        """Monotonic unwrapped energy for one socket/domain, in joules."""
        if not 0 <= socket_id < self._num_sockets:
            raise HardwareError(f"no such socket: {socket_id}")
        raw = self._raw(socket_id, domain)
        key = (socket_id, domain)
        prev = self._last.get(key)
        if prev is None:
            total = raw * self._unit_j
        else:
            delta = (raw - prev.raw) & _COUNTER_MASK  # unwrap one overflow
            total = prev.joules_total + delta * self._unit_j
        self._last[key] = _DomainSample(raw=raw, joules_total=total)
        return total

    def read_node_joules(self, domain: RaplDomain) -> float:
        """Sum of the domain energy over all sockets."""
        return sum(self.read_joules(s, domain) for s in range(self._num_sockets))

    def read_cpu_energy_joules(self) -> float:
        """Package + DRAM over all sockets — the paper's "CPU energy"."""
        return self.read_node_joules(RaplDomain.PACKAGE) + self.read_node_joules(
            RaplDomain.DRAM
        )
