"""Ground-truth node power model (the simulated physics).

This is the *hardware side* of the simulation: the analytic model that
generates node power draw as a function of the operating point and of
what the workload is doing.  The tuning stack never reads it directly —
it observes energy only through the RAPL and HDEEM instruments — so the
model plays the role the physical Haswell-EP node plays in the paper.

Structure (DESIGN.md Section 5)::

    P_node = P_static * nu                        (board + sockets at idle)
           + T * (a f_c^3 + b f_c) * u * mu       (active cores)
           + S * (c f_u^3 + d f_u) * act_u * mu   (uncore: L3/ring/IMC)
           + P_dram_bg + e * BW                   (DRAM background + traffic)
           + P_blade                              (fans, NIC, VRs)

with per-node variability factors ``nu`` (static) and ``mu`` (dynamic)
drawn once per node — this is the node-to-node spread of Figures 2a/3a
that energy normalization removes.

The RAPL view covers the CPU packages and DRAM only (no blade), exactly
the difference between the paper's "CPU energy" (measure-rapl) and "job
energy" (sacct / HDEEM node energy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.util.rng import rng_for
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class NodeVariability:
    """Per-node manufacturing variability factors.

    ``static_factor`` scales leakage/idle power, ``dynamic_factor`` scales
    switching power.  Both are lognormal around 1 with sigma
    :data:`repro.config.NODE_VARIABILITY_SIGMA`.
    """

    static_factor: float
    dynamic_factor: float

    @classmethod
    def sample(cls, node_id: int, *, seed: int = config.DEFAULT_SEED) -> "NodeVariability":
        rng = rng_for("node-variability", node_id, seed=seed)
        s = float(rng.lognormal(0.0, config.NODE_VARIABILITY_SIGMA))
        d = float(rng.lognormal(0.0, config.NODE_VARIABILITY_SIGMA * 0.7))
        return cls(static_factor=s, dynamic_factor=d)

    @classmethod
    def nominal(cls) -> "NodeVariability":
        """A perfectly average node (used for model calibration tests)."""
        return cls(static_factor=1.0, dynamic_factor=1.0)


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous node power split into its components (watts)."""

    static_w: float
    core_dynamic_w: float
    uncore_dynamic_w: float
    dram_w: float
    blade_w: float

    @property
    def node_w(self) -> float:
        """Total node power — what HDEEM / sacct job energy sees."""
        return (
            self.static_w
            + self.core_dynamic_w
            + self.uncore_dynamic_w
            + self.dram_w
            + self.blade_w
        )

    @property
    def rapl_package_w(self) -> float:
        """Both packages' RAPL PKG domain power (cores + uncore + leakage)."""
        leakage = config.PACKAGE_LEAKAGE_W * config.SOCKETS_PER_NODE
        return self.core_dynamic_w + self.uncore_dynamic_w + leakage

    @property
    def rapl_dram_w(self) -> float:
        """RAPL DRAM domain power."""
        return self.dram_w

    @property
    def cpu_w(self) -> float:
        """What ``measure-rapl`` reports: package + DRAM domains."""
        return self.rapl_package_w + self.rapl_dram_w


class PowerModel:
    """Analytic power model for one node.

    Parameters
    ----------
    variability:
        The node's manufacturing variability factors.
    num_sockets, num_cores:
        Topology; defaults to the platform of the paper.
    """

    def __init__(
        self,
        variability: NodeVariability | None = None,
        *,
        num_sockets: int = config.SOCKETS_PER_NODE,
        num_cores: int = config.CORES_PER_NODE,
    ):
        self.variability = variability or NodeVariability.nominal()
        self.num_sockets = num_sockets
        self.num_cores = num_cores
        # Breakdown memo: the simulator evaluates the model at a handful
        # of distinct operating/activity points but once per region
        # *instance*; PowerBreakdown is frozen, so sharing is safe.
        self._breakdown_cache: dict[tuple, PowerBreakdown] = {}

    def core_dynamic_power_w(
        self, core_freq_ghz: float, active_threads: int, core_activity: float
    ) -> float:
        """Dynamic power of the active cores.

        ``core_activity`` in [0, 1] is the effective switching activity: 1
        for a core retiring at full tilt, lower when stalled on memory
        (stalled cores still clock but large units idle).
        """
        check_positive("core_freq_ghz", core_freq_ghz)
        check_fraction("core_activity", core_activity)
        if not 0 <= active_threads <= self.num_cores:
            raise ValueError(
                f"active_threads must be in [0, {self.num_cores}], got {active_threads}"
            )
        per_core = (
            config.CORE_DYN_CUBE_W_PER_GHZ3 * core_freq_ghz**3
            + config.CORE_DYN_LIN_W_PER_GHZ * core_freq_ghz
        )
        return active_threads * per_core * core_activity * self.variability.dynamic_factor

    def uncore_dynamic_power_w(self, uncore_freq_ghz: float, uncore_activity: float) -> float:
        """Dynamic power of the uncore (L3, ring, memory controllers)."""
        check_positive("uncore_freq_ghz", uncore_freq_ghz)
        check_fraction("uncore_activity", uncore_activity)
        per_socket = (
            config.UNCORE_DYN_CUBE_W_PER_GHZ3 * uncore_freq_ghz**3
            + config.UNCORE_DYN_LIN_W_PER_GHZ * uncore_freq_ghz
        )
        act = config.UNCORE_IDLE_ACTIVITY + (1.0 - config.UNCORE_IDLE_ACTIVITY) * uncore_activity
        return self.num_sockets * per_socket * act * self.variability.dynamic_factor

    def dram_power_w(self, membw_gbs: float) -> float:
        """DRAM power: background refresh plus traffic-proportional term."""
        check_positive("membw_gbs", membw_gbs, strict=False)
        return config.DRAM_BACKGROUND_POWER_W + config.DRAM_POWER_W_PER_GBS * membw_gbs

    def power(
        self,
        *,
        core_freq_ghz: float,
        uncore_freq_ghz: float,
        active_threads: int,
        core_activity: float,
        uncore_activity: float,
        membw_gbs: float,
    ) -> PowerBreakdown:
        """Full node power breakdown at the given operating point."""
        key = (
            core_freq_ghz,
            uncore_freq_ghz,
            active_threads,
            core_activity,
            uncore_activity,
            membw_gbs,
        )
        cached = self._breakdown_cache.get(key)
        if cached is not None:
            return cached
        breakdown = PowerBreakdown(
            static_w=config.NODE_IDLE_POWER_W * self.variability.static_factor,
            core_dynamic_w=self.core_dynamic_power_w(
                core_freq_ghz, active_threads, core_activity
            ),
            uncore_dynamic_w=self.uncore_dynamic_power_w(uncore_freq_ghz, uncore_activity),
            dram_w=self.dram_power_w(membw_gbs),
            blade_w=config.BLADE_POWER_W,
        )
        if len(self._breakdown_cache) >= 8192:
            self._breakdown_cache.clear()
        self._breakdown_cache[key] = breakdown
        return breakdown

    def idle_power(self, core_freq_ghz: float, uncore_freq_ghz: float) -> PowerBreakdown:
        """Node power with no workload running."""
        return self.power(
            core_freq_ghz=core_freq_ghz,
            uncore_freq_ghz=uncore_freq_ghz,
            active_threads=0,
            core_activity=0.0,
            uncore_activity=0.0,
            membw_gbs=0.0,
        )
