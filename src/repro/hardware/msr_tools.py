"""``msr-tools``-style convenience wrappers (``rdmsr`` / ``wrmsr``).

On the real platform frequency control goes through the ``msr`` kernel
module; ``rdmsr -p <cpu> <addr>`` and ``wrmsr -p <cpu> <addr> <value>``
are the lowest-level knobs.  These functions provide that exact interface
against a :class:`~repro.hardware.msr.MSRRegisterFile`, including the
textual hex forms the CLI tools use, so higher layers (``x86_adapt``) can
be exercised over the same protocol.
"""

from __future__ import annotations

from repro.errors import MSRError
from repro.hardware.msr import MSRRegisterFile


def _parse_int(text: int | str) -> int:
    if isinstance(text, int):
        return text
    return int(text, 0)  # accepts "0x199" and "409"


def rdmsr(regfile: MSRRegisterFile, cpu: int, addr: int | str) -> int:
    """Read MSR ``addr`` on processor ``cpu`` (like ``rdmsr -p cpu addr``)."""
    return regfile.read(cpu, _parse_int(addr))


def wrmsr(regfile: MSRRegisterFile, cpu: int, addr: int | str, value: int | str) -> None:
    """Write MSR ``addr`` on processor ``cpu`` (like ``wrmsr -p cpu addr val``)."""
    regfile.write(cpu, _parse_int(addr), _parse_int(value))


def rdmsr_all(regfile: MSRRegisterFile, addr: int | str) -> list[int]:
    """Read MSR ``addr`` on every processor (like ``rdmsr -a``)."""
    a = _parse_int(addr)
    return [regfile.read(cpu, a) for cpu in range(regfile.num_cores)]


def wrmsr_all(regfile: MSRRegisterFile, addr: int | str, value: int | str) -> None:
    """Write MSR ``addr`` on every processor (like ``wrmsr -a``)."""
    a, v = _parse_int(addr), _parse_int(value)
    errors = []
    for cpu in range(regfile.num_cores):
        try:
            regfile.write(cpu, a, v)
        except MSRError as exc:  # pragma: no cover - uniform registers
            errors.append(str(exc))
    if errors:
        raise MSRError("; ".join(errors))
