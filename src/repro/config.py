"""Platform constants for the simulated experimental system.

The values mirror the Taurus *haswell* partition used in the paper
(Section V-A): dual-socket Intel Xeon E5-2680v3 (Haswell-EP), 12 cores per
socket, 64 GB of main memory, DVFS range 1.2--2.5 GHz, UFS range
1.3--3.0 GHz, HDEEM energy instrumentation, Hyper-Threading and Turbo
Boost disabled.

Everything that later layers treat as a property of "the machine" is
defined here once so tests, benchmarks and examples agree on the platform.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Topology (Intel Xeon E5-2680v3, Haswell-EP, 2 sockets)
# --------------------------------------------------------------------------
SOCKETS_PER_NODE = 2
CORES_PER_SOCKET = 12
CORES_PER_NODE = SOCKETS_PER_NODE * CORES_PER_SOCKET  # 24
MEMORY_GB_PER_NODE = 64

# --------------------------------------------------------------------------
# Frequency domains (GHz).  Frequencies are exposed in 100 MHz steps, the
# granularity of the PERF_CTL / UNCORE_RATIO_LIMIT ratio fields (ratio x
# 100 MHz bus clock).
# --------------------------------------------------------------------------
FREQ_STEP_GHZ = 0.1
BUS_CLOCK_GHZ = 0.1  # ratio unit for MSR encodings

CORE_FREQ_MIN_GHZ = 1.2
CORE_FREQ_MAX_GHZ = 2.5
UNCORE_FREQ_MIN_GHZ = 1.3
UNCORE_FREQ_MAX_GHZ = 3.0


def _freq_range(lo: float, hi: float) -> tuple[float, ...]:
    n = int(round((hi - lo) / FREQ_STEP_GHZ)) + 1
    return tuple(round(lo + i * FREQ_STEP_GHZ, 1) for i in range(n))


#: All supported core frequencies, ascending (14 DVFS states).
CORE_FREQUENCIES_GHZ: tuple[float, ...] = _freq_range(CORE_FREQ_MIN_GHZ, CORE_FREQ_MAX_GHZ)
#: All supported uncore frequencies, ascending (18 UFS states).
UNCORE_FREQUENCIES_GHZ: tuple[float, ...] = _freq_range(UNCORE_FREQ_MIN_GHZ, UNCORE_FREQ_MAX_GHZ)

assert len(CORE_FREQUENCIES_GHZ) == 14
assert len(UNCORE_FREQUENCIES_GHZ) == 18

#: Default (governor) operating point for any job on the platform (Sec. V-D).
DEFAULT_CORE_FREQ_GHZ = 2.5
DEFAULT_UNCORE_FREQ_GHZ = 3.0
#: Calibration operating point used for all model-input measurements (Sec. IV-A).
CALIBRATION_CORE_FREQ_GHZ = 2.0
CALIBRATION_UNCORE_FREQ_GHZ = 1.5
#: Default OpenMP thread count for OpenMP / hybrid applications.
DEFAULT_OPENMP_THREADS = 24
#: Thread sweep used during training-data collection and tuning step 1.
OPENMP_THREAD_CANDIDATES = (12, 16, 20, 24)

# --------------------------------------------------------------------------
# Switching / measurement latencies (Section V-E)
# --------------------------------------------------------------------------
#: Transition latency for changing the frequency of one core.
DVFS_TRANSITION_LATENCY_S = 21e-6
#: Transition latency for changing the uncore frequency of one socket.
UFS_TRANSITION_LATENCY_S = 20e-6
#: HDEEM sampling rate (1 kSa/s) and average measurement start delay (5 ms).
HDEEM_SAMPLE_RATE_HZ = 1000.0
HDEEM_MEASUREMENT_DELAY_S = 5e-3
#: Significant-region threshold used by readex-dyn-detect (Section III-A).
SIGNIFICANT_REGION_THRESHOLD_S = 0.100

# --------------------------------------------------------------------------
# Score-P instrumentation cost model.  A probe (region enter or exit,
# including OpenMP/MPI wrapper events that cannot be filtered away) costs a
# fixed overhead on the measured process.
# --------------------------------------------------------------------------
SCOREP_PROBE_OVERHEAD_S = 1.8e-6

# --------------------------------------------------------------------------
# PAPI limitations (Section IV-A): 56 preset counters are available, the PMU
# can record at most four programmable events simultaneously, so obtaining
# all counters requires multiple runs.
# --------------------------------------------------------------------------
PAPI_MAX_SIMULTANEOUS_EVENTS = 4
PAPI_NUM_PRESET_COUNTERS = 56
PAPI_NUM_NATIVE_COUNTERS = 162

# --------------------------------------------------------------------------
# Ground-truth power-model coefficients (Haswell-EP-like magnitudes).
# The absolute wattages are representative, not measured; see DESIGN.md §5.
# --------------------------------------------------------------------------
#: Idle/static node power (both sockets + board) at nominal voltage, watts.
NODE_IDLE_POWER_W = 70.0
#: Non-CPU blade power (fans, NIC, board) included in node/job energy but
#: invisible to RAPL, watts.
BLADE_POWER_W = 45.0
#: Per-core dynamic power coefficients: p = CORE_DYN_CUBE * f^3 + CORE_DYN_LIN * f.
CORE_DYN_CUBE_W_PER_GHZ3 = 0.18
CORE_DYN_LIN_W_PER_GHZ = 0.65
#: Activity factor for a core that is stalled on memory.
STALLED_CORE_ACTIVITY = 0.45
#: Per-socket uncore power coefficients (L3, ring, memory controller).
UNCORE_DYN_CUBE_W_PER_GHZ3 = 0.45
UNCORE_DYN_LIN_W_PER_GHZ = 1.6
#: Idle fraction of uncore dynamic power (clock keeps toggling when idle).
UNCORE_IDLE_ACTIVITY = 0.30
#: DRAM power per achieved GB/s of traffic.
DRAM_POWER_W_PER_GBS = 0.55
#: DRAM background power per node, watts.
DRAM_BACKGROUND_POWER_W = 8.0

#: Peak sustainable memory bandwidth per node at max uncore frequency, GB/s.
PEAK_MEMBW_GBS = 120.0
#: Bandwidth saturation knee: B(f_u) ~ (1+k) x / (x + k) with x = f_u / f_max.
#: Smaller k = earlier saturation (extra uncore frequency buys less bandwidth).
MEMBW_KNEE = 0.8
#: Thread-sharing half-saturation constant: sat(T) = T (C + h) / (C (T + h)).
MEMBW_THREAD_HALF = 2.0

#: Node-to-node power variability: multiplicative sigma on static power and
#: on dynamic coefficients (Section IV-B, Figures 2a/3a).
NODE_VARIABILITY_SIGMA = 0.09
#: Run-to-run energy measurement noise (multiplicative sigma).
MEASUREMENT_NOISE_SIGMA = 0.004

#: Fraction of node power attributed to the CPU packages (RAPL view) is
#: computed structurally (core + uncore + DRAM); this constant only covers
#: package leakage included in RAPL but not in the dynamic terms, watts/socket.
PACKAGE_LEAKAGE_W = 9.0

#: Global default seed for every deterministic experiment in the repo.
DEFAULT_SEED = 20190520
