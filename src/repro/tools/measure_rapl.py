"""``measure-rapl``: lightweight CPU-energy measurement (Section V-D).

The paper's tool wraps an application run and reads the CPU energy via
Intel's RAPL interface through x86_adapt.  Here it is a context manager
over a :class:`~repro.hardware.node.ComputeNode`'s RAPL reader.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.hardware.node import ComputeNode


@dataclass
class RaplMeasurement:
    """Filled in when the context exits."""

    cpu_energy_j: float = 0.0
    elapsed_s: float = 0.0

    @property
    def mean_cpu_power_w(self) -> float:
        return self.cpu_energy_j / self.elapsed_s if self.elapsed_s > 0 else 0.0


@contextlib.contextmanager
def measure_rapl(node: ComputeNode):
    """Measure CPU (package + DRAM) energy of everything run inside.

    Usage::

        with measure_rapl(node) as m:
            simulator.run(app)
        print(m.cpu_energy_j)
    """
    measurement = RaplMeasurement()
    start_energy = node.rapl.read_cpu_energy_joules()
    start_time = node.now_s
    try:
        yield measurement
    finally:
        measurement.cpu_energy_j = (
            node.rapl.read_cpu_energy_joules() - start_energy
        )
        measurement.elapsed_s = node.now_s - start_time
