"""Command-line tools mirroring the paper's tooling.

* :mod:`repro.tools.otf2_parser` — the custom OTF2 post-processing tool
  of Section IV-A (energy per run, PAPI per phase instance);
* :mod:`repro.tools.measure_rapl` — the lightweight RAPL CPU-energy
  meter of Section V-D;
* :mod:`repro.tools.sacct` — job accounting queries;
* :mod:`repro.tools.cli` — console entry points.
"""

from repro.tools.otf2_parser import Otf2Report, parse_trace
from repro.tools.measure_rapl import measure_rapl
from repro.tools.sacct import format_sacct_output

__all__ = [
    "Otf2Report",
    "parse_trace",
    "measure_rapl",
    "format_sacct_output",
]
