"""Console entry points (installed by ``pip install``).

================  =========================================================
``repro-dyn-detect``    significant-region detection for a benchmark
``repro-tune``          full DTA: train/load model, tune, write the TMM
``repro-sacct``         run a benchmark as a job and query its accounting
``repro-measure-rapl``  run a benchmark and report CPU energy via RAPL
``repro-otf2-parser``   post-process a trace file (energy + phase PAPI)
================  =========================================================
"""

from __future__ import annotations

import argparse
import sys

from repro import config
from repro.execution.simulator import ExecutionSimulator
from repro.execution.slurm import SlurmAccounting
from repro.hardware.cluster import Cluster
from repro.workloads import registry


def _benchmark_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "benchmark",
        choices=registry.benchmark_names(),
        help="benchmark to operate on",
    )


def main_dyn_detect(argv: list[str] | None = None) -> int:
    """``repro-dyn-detect BENCH [-o config.json]``"""
    parser = argparse.ArgumentParser(
        prog="repro-dyn-detect",
        description="Detect significant regions (>100 ms mean) of a benchmark.",
    )
    _benchmark_arg(parser)
    parser.add_argument("-o", "--output", help="write the READEX config JSON here")
    args = parser.parse_args(argv)

    from repro.readex.dyn_detect import readex_dyn_detect
    from repro.scorep.profile import ProfileCollector

    app = registry.build(args.benchmark)
    cluster = Cluster(2)
    node = cluster.fresh_node(0)
    node.set_frequencies(
        config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
    )
    collector = ProfileCollector(app.name)
    ExecutionSimulator(node).run(app, listeners=(collector,))
    readex_config = readex_dyn_detect(app, collector.profile())
    if args.output:
        readex_config.save(args.output)
        print(f"wrote {args.output}")
    for region in readex_config.significant_regions:
        print(f"{region.name:40s} mean {region.mean_time_s * 1000:8.1f} ms")
    return 0


def main_tune(argv: list[str] | None = None) -> int:
    """``repro-tune BENCH [-o tmm.json] [--epochs N]``"""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Run the full design-time analysis and emit a tuning model.",
    )
    _benchmark_arg(parser)
    parser.add_argument("-o", "--output", default="tuning_model.json")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument(
        "--train-threads",
        type=int,
        nargs="+",
        default=[12, 24],
        help="thread counts for training-data acquisition (fewer = faster)",
    )
    args = parser.parse_args(argv)

    from repro.modeling.dataset import build_dataset
    from repro.modeling.training import TrainingConfig, train_network
    from repro.ptf.framework import PeriscopeTuningFramework

    train_names = [b for b in registry.training_benchmarks()]
    print(f"building training data on {len(train_names)} benchmarks ...")
    dataset = build_dataset(train_names, thread_counts=tuple(args.train_threads))
    model = train_network(
        dataset.features,
        dataset.targets,
        config=TrainingConfig(epochs=args.epochs),
    )
    print(f"training done ({dataset.features.shape[0]} samples)")
    framework = PeriscopeTuningFramework(Cluster(4), model)
    outcome = framework.tune(args.benchmark)
    outcome.tuning_model.save(args.output)
    result = outcome.plugin_result
    print(f"phase optimum: {result.phase_configuration}")
    for region, cfg in result.region_configurations.items():
        print(f"  {region:40s} {cfg}")
    print(f"tuning model with {len(outcome.tuning_model.scenarios)} scenarios "
          f"written to {args.output}")
    return 0


def main_sacct(argv: list[str] | None = None) -> int:
    """``repro-sacct BENCH [--format FIELDS]``"""
    parser = argparse.ArgumentParser(
        prog="repro-sacct",
        description="Run a benchmark as a job and print sacct accounting.",
    )
    _benchmark_arg(parser)
    parser.add_argument(
        "--format",
        dest="fmt",
        default="JobID,JobName,Elapsed,ConsumedEnergy",
    )
    args = parser.parse_args(argv)

    from repro.tools.sacct import format_sacct_output

    cluster = Cluster(2)
    run = ExecutionSimulator(cluster.fresh_node(0)).run(
        registry.build(args.benchmark)
    )
    accounting = SlurmAccounting()
    accounting.submit(run)
    print(format_sacct_output(accounting, fmt=args.fmt))
    return 0


def main_measure_rapl(argv: list[str] | None = None) -> int:
    """``repro-measure-rapl BENCH [--cf GHz --ucf GHz --threads N]``"""
    parser = argparse.ArgumentParser(
        prog="repro-measure-rapl",
        description="Run a benchmark and report CPU energy via RAPL.",
    )
    _benchmark_arg(parser)
    parser.add_argument("--cf", type=float, default=config.DEFAULT_CORE_FREQ_GHZ)
    parser.add_argument("--ucf", type=float, default=config.DEFAULT_UNCORE_FREQ_GHZ)
    parser.add_argument("--threads", type=int, default=config.DEFAULT_OPENMP_THREADS)
    args = parser.parse_args(argv)

    from repro.tools.measure_rapl import measure_rapl

    node = Cluster(2).fresh_node(0)
    node.set_frequencies(args.cf, args.ucf)
    with measure_rapl(node) as measurement:
        ExecutionSimulator(node).run(
            registry.build(args.benchmark), threads=args.threads
        )
    print(f"CPU energy: {measurement.cpu_energy_j:.1f} J "
          f"over {measurement.elapsed_s:.2f} s "
          f"({measurement.mean_cpu_power_w:.1f} W)")
    return 0


def main_otf2_parser(argv: list[str] | None = None) -> int:
    """``repro-otf2-parser TRACE_FILE``"""
    parser = argparse.ArgumentParser(
        prog="repro-otf2-parser",
        description="Post-process an OTF2 trace: run energy + phase PAPI values.",
    )
    parser.add_argument("trace", help="trace file written by repro (JSONL)")
    args = parser.parse_args(argv)

    from repro.tools.otf2_parser import parse_trace

    report = parse_trace(args.trace)
    print(f"application: {report.app_name}")
    print(f"total energy: {report.total_energy_j:.1f} J")
    print(f"phase instances: {report.num_phase_instances}")
    for inst in report.phase_instances[:3]:
        printable = {k.removeprefix("papi::"): f"{v:.3g}" for k, v in inst.papi.items()}
        print(f"  iteration {inst.iteration}: {printable}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_tune())
