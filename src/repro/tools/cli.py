"""Console entry points (installed by ``pip install``).

================  =========================================================
``repro-dyn-detect``    significant-region detection for a benchmark
``repro-tune``          full DTA: train/load model, tune, write the TMM
``repro-sacct``         run a benchmark as a job and query its accounting
``repro-measure-rapl``  run a benchmark and report CPU energy via RAPL
``repro-otf2-parser``   post-process a trace file (energy + phase PAPI)
``repro-campaign``      plan / run / inspect experiment campaigns
``repro-serve``         HTTP tuning service (entry point lives in
                        :mod:`repro.serve.server`)
================  =========================================================

Exit codes follow one convention across the campaign-backed tools:
``0`` success, ``2`` argparse usage errors, ``3`` definitive job
failures (``repro-campaign run``, ``repro-tune --json``), ``130`` a
graceful SIGINT/SIGTERM drain (``repro-campaign run``, ``repro-serve``).
"""

from __future__ import annotations

import argparse
import sys

from repro import config
from repro.execution.simulator import ExecutionSimulator
from repro.execution.slurm import SlurmAccounting
from repro.hardware.cluster import Cluster
from repro.workloads import registry


def _benchmark_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "benchmark",
        choices=registry.benchmark_names(),
        help="benchmark to operate on",
    )


def main_dyn_detect(argv: list[str] | None = None) -> int:
    """``repro-dyn-detect BENCH [-o config.json]``"""
    parser = argparse.ArgumentParser(
        prog="repro-dyn-detect",
        description="Detect significant regions (>100 ms mean) of a benchmark.",
    )
    _benchmark_arg(parser)
    parser.add_argument("-o", "--output", help="write the READEX config JSON here")
    args = parser.parse_args(argv)

    from repro.readex.dyn_detect import readex_dyn_detect
    from repro.scorep.profile import ProfileCollector

    app = registry.build(args.benchmark)
    cluster = Cluster(2)
    node = cluster.fresh_node(0)
    node.set_frequencies(
        config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
    )
    collector = ProfileCollector(app.name)
    ExecutionSimulator(node).run(app, listeners=(collector,))
    readex_config = readex_dyn_detect(app, collector.profile())
    if args.output:
        readex_config.save(args.output)
        print(f"wrote {args.output}")
    for region in readex_config.significant_regions:
        print(f"{region.name:40s} mean {region.mean_time_s * 1000:8.1f} ms")
    return 0


def _tune_json(args: argparse.Namespace) -> int:
    """One-shot ``repro-tune --json``: the serving wire schema, offline.

    Prints exactly one response envelope (the same versioned schema
    ``repro-serve`` speaks) on stdout and exits 0 on ``status: ok`` or
    3 on an error envelope — mirroring ``repro-campaign run``'s
    failure exit code, so scripts can pipe either.
    """
    import json

    from repro import api
    from repro.errors import (
        CampaignExecutionError,
        ReproError,
        TuningError,
    )
    from repro.serve.schema import error_response, ok_response

    request = api.TuningRequest(
        benchmark=args.benchmark,
        threads=args.threads,
        objective=args.objective,
        stride=args.stride,
        node_id=args.node_id,
        seed=args.seed,
    )
    try:
        request.validate()
        options = api.ExecutionOptions()
        if args.store is not None:
            from repro.campaign.engine import CampaignEngine
            from repro.campaign.store import ResultStore

            options = api.ExecutionOptions(
                campaign=CampaignEngine(
                    store=ResultStore(args.store), max_workers=0
                )
            )
        answer = api.tune(request, options)
    except TuningError as exc:
        print(json.dumps(error_response("bad-value", str(exc))))
        return 3
    except CampaignExecutionError as exc:
        print(json.dumps(error_response("quarantined", str(exc))))
        return 3
    except ReproError as exc:
        print(json.dumps(error_response("execution-error", str(exc))))
        return 3
    print(json.dumps(ok_response(answer, meta={"coalesced": 0, "offline": True})))
    return 0


def main_tune(argv: list[str] | None = None) -> int:
    """``repro-tune BENCH [-o tmm.json] [--epochs N] [--json ...]``"""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Run the full design-time analysis and emit a tuning "
        "model; with --json, answer one grid-tuning request offline in "
        "the repro-serve wire schema instead.",
    )
    _benchmark_arg(parser)
    parser.add_argument("-o", "--output", default="tuning_model.json")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument(
        "--train-threads",
        type=int,
        nargs="+",
        default=[12, 24],
        help="thread counts for training-data acquisition (fewer = faster)",
    )
    json_group = parser.add_argument_group(
        "wire-schema mode (--json)",
        "answer one tuning request offline and print the versioned "
        "response envelope (exit 0 on ok, 3 on an error envelope)",
    )
    json_group.add_argument("--json", action="store_true")
    json_group.add_argument("--objective", default="energy")
    json_group.add_argument("--stride", type=int, default=1)
    json_group.add_argument("--threads", type=int, default=None)
    json_group.add_argument("--node-id", type=int, default=0)
    json_group.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    json_group.add_argument(
        "--store", default=None, help="result store for cached execution"
    )
    args = parser.parse_args(argv)
    if args.json:
        return _tune_json(args)

    from repro.modeling.dataset import build_dataset
    from repro.modeling.training import TrainingConfig, train_network
    from repro.ptf.framework import PeriscopeTuningFramework

    train_names = [b for b in registry.training_benchmarks()]
    print(f"building training data on {len(train_names)} benchmarks ...")
    dataset = build_dataset(train_names, thread_counts=tuple(args.train_threads))
    model = train_network(
        dataset.features,
        dataset.targets,
        config=TrainingConfig(epochs=args.epochs),
    )
    print(f"training done ({dataset.features.shape[0]} samples)")
    framework = PeriscopeTuningFramework(Cluster(4), model)
    outcome = framework.tune(args.benchmark)
    outcome.tuning_model.save(args.output)
    result = outcome.plugin_result
    print(f"phase optimum: {result.phase_configuration}")
    for region, cfg in result.region_configurations.items():
        print(f"  {region:40s} {cfg}")
    print(f"tuning model with {len(outcome.tuning_model.scenarios)} scenarios "
          f"written to {args.output}")
    return 0


def main_sacct(argv: list[str] | None = None) -> int:
    """``repro-sacct BENCH [--format FIELDS]``"""
    parser = argparse.ArgumentParser(
        prog="repro-sacct",
        description="Run a benchmark as a job and print sacct accounting.",
    )
    _benchmark_arg(parser)
    parser.add_argument(
        "--format",
        dest="fmt",
        default="JobID,JobName,Elapsed,ConsumedEnergy",
    )
    args = parser.parse_args(argv)

    from repro.tools.sacct import format_sacct_output

    cluster = Cluster(2)
    run = ExecutionSimulator(cluster.fresh_node(0)).run(
        registry.build(args.benchmark)
    )
    accounting = SlurmAccounting()
    accounting.submit(run)
    print(format_sacct_output(accounting, fmt=args.fmt))
    return 0


def main_measure_rapl(argv: list[str] | None = None) -> int:
    """``repro-measure-rapl BENCH [--cf GHz --ucf GHz --threads N]``"""
    parser = argparse.ArgumentParser(
        prog="repro-measure-rapl",
        description="Run a benchmark and report CPU energy via RAPL.",
    )
    _benchmark_arg(parser)
    parser.add_argument("--cf", type=float, default=config.DEFAULT_CORE_FREQ_GHZ)
    parser.add_argument("--ucf", type=float, default=config.DEFAULT_UNCORE_FREQ_GHZ)
    parser.add_argument("--threads", type=int, default=config.DEFAULT_OPENMP_THREADS)
    args = parser.parse_args(argv)

    from repro.tools.measure_rapl import measure_rapl

    node = Cluster(2).fresh_node(0)
    node.set_frequencies(args.cf, args.ucf)
    with measure_rapl(node) as measurement:
        ExecutionSimulator(node).run(
            registry.build(args.benchmark), threads=args.threads
        )
    print(f"CPU energy: {measurement.cpu_energy_j:.1f} J "
          f"over {measurement.elapsed_s:.2f} s "
          f"({measurement.mean_cpu_power_w:.1f} W)")
    return 0


def main_otf2_parser(argv: list[str] | None = None) -> int:
    """``repro-otf2-parser TRACE_FILE``"""
    parser = argparse.ArgumentParser(
        prog="repro-otf2-parser",
        description="Post-process an OTF2 trace: run energy + phase PAPI values.",
    )
    parser.add_argument("trace", help="trace file written by repro (JSONL)")
    args = parser.parse_args(argv)

    from repro.tools.otf2_parser import parse_trace

    report = parse_trace(args.trace)
    print(f"application: {report.app_name}")
    print(f"total energy: {report.total_energy_j:.1f} J")
    print(f"phase instances: {report.num_phase_instances}")
    for inst in report.phase_instances[:3]:
        printable = {k.removeprefix("papi::"): f"{v:.3g}" for k, v in inst.papi.items()}
        print(f"  iteration {inst.iteration}: {printable}")
    return 0


def _campaign_selection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        choices=registry.benchmark_names(),
        metavar="BENCH",
        help="benchmarks to cover (default: all 19)",
    )
    parser.add_argument(
        "--campaign",
        choices=("dataset", "static", "both"),
        default="dataset",
        help="which grids to plan: the training-data acquisition "
        "(counters + energy sweeps), the exhaustive static search, or both",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        help="thread sweep for thread-tunable codes "
        f"(default: {' '.join(map(str, config.OPENMP_THREAD_CANDIDATES))})",
    )
    parser.add_argument(
        "--stride", type=int, default=1,
        help="thin the static frequency grids by this factor",
    )
    parser.add_argument("--node-id", type=int, default=0)
    parser.add_argument("--seed", type=int, default=config.DEFAULT_SEED)


def _campaign_plan(args):
    from repro.campaign import plan_dataset_campaign, plan_static_campaign
    from repro.campaign.plan import CampaignPlan

    thread_counts = tuple(args.threads) if args.threads else None
    plan = CampaignPlan(())
    if args.campaign in ("dataset", "both"):
        plan = plan.merge(plan_dataset_campaign(
            args.benchmarks, thread_counts=thread_counts,
            node_id=args.node_id, seed=args.seed,
        ))
    if args.campaign in ("static", "both"):
        plan = plan.merge(plan_static_campaign(
            args.benchmarks, stride=args.stride, thread_counts=thread_counts,
            node_id=args.node_id, seed=args.seed,
        ))
    return plan


def _print_breakdown(title: str, counts: dict[str, int]) -> None:
    print(f"{title}:")
    for name, count in counts.items():
        print(f"  {name:20s} {count:6d}")


def main_campaign(argv: list[str] | None = None) -> int:
    """``repro-campaign {plan,run,status} ...``"""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Plan, execute and inspect simulation campaigns "
        "(parallel workers + content-addressed on-disk result store).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan_p = sub.add_parser("plan", help="show what a campaign would run")
    _campaign_selection_args(plan_p)
    plan_p.add_argument(
        "--store", help="existing store to count cache hits against"
    )

    run_p = sub.add_parser("run", help="execute a campaign into a store")
    _campaign_selection_args(run_p)
    run_p.add_argument(
        "--store",
        default="campaign-store.jsonl",
        help="result store path (created if missing; backend auto-detected: "
        "*.jsonl file, *.sqlite database, or a directory of segments)",
    )
    run_p.add_argument(
        "--backend",
        choices=("jsonl", "sqlite", "segment"),
        help="force the store backend instead of auto-detecting from the path",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        help="worker processes (default: $REPRO_CAMPAIGN_WORKERS or cpu count)",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per job on transient failures (worker crash, "
        "timeout; default: 2)",
    )
    run_p.add_argument(
        "--job-timeout",
        type=float,
        help="per-job wall-clock timeout in seconds (default: none); an "
        "expired job costs one attempt and the pool is respawned",
    )
    run_p.add_argument(
        "--on-failure",
        choices=("raise", "quarantine", "skip"),
        default="raise",
        help="what to do with jobs that exhaust their retries: abort the "
        "campaign (raise, default), persist a failure record so later runs "
        "skip them (quarantine), or drop them for this run only (skip)",
    )
    run_p.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-attempt jobs that earlier runs quarantined into this store",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="resume a drained campaign: validate the <store>.resume.json "
        "manifest left by SIGINT/SIGTERM and run the remaining jobs "
        "(completed work is reused from the store, bit-identical)",
    )
    run_p.add_argument(
        "--fleet",
        action="store_true",
        help="batch fleet-able jobs (sweep/static/savings/grid) through the "
        "fleet replay kernel, one shard per pool task (payloads and store "
        "keys are bit-identical to per-job execution)",
    )
    run_p.add_argument(
        "--fleet-shard-size",
        type=int,
        default=None,
        metavar="N",
        help="jobs per fleet-kernel invocation (default: 16)",
    )
    run_p.add_argument(
        "--fleet-schedule",
        choices=("static", "steal"),
        default=None,
        help="fleet shard sizing: 'static' (default) pre-partitions "
        "fixed-size shards; 'steal' sizes shards for work stealing — "
        "idle workers pull decreasing chunks, killing the straggler "
        "tail on heterogeneous app mixes (results bit-identical)",
    )

    status_p = sub.add_parser("status", help="summarise a result store")
    status_p.add_argument(
        "--store", default="campaign-store.jsonl", help="result store path"
    )

    store_p = sub.add_parser(
        "store", help="maintain a result store (migrate/compact/verify)"
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)

    migrate_p = store_sub.add_parser(
        "migrate",
        help="copy a store into a fresh one on another backend",
    )
    migrate_p.add_argument("source", help="existing store (any backend)")
    migrate_p.add_argument("dest", help="destination store path (must be fresh)")
    migrate_p.add_argument(
        "--backend",
        choices=("jsonl", "sqlite", "segment"),
        help="destination backend (default: auto-detect from the path)",
    )

    compact_p = store_sub.add_parser(
        "compact",
        help="drop superseded and other-schema-version records in place",
    )
    compact_p.add_argument(
        "--store", default="campaign-store.jsonl", help="result store path"
    )

    verify_p = store_sub.add_parser(
        "verify",
        help="report damaged entries (exit 1 when any are found)",
    )
    verify_p.add_argument(
        "--store", default="campaign-store.jsonl", help="result store path"
    )

    args = parser.parse_args(argv)

    from repro.errors import ReproError

    try:
        return _campaign_dispatch(args)
    except ReproError as exc:
        print(f"repro-campaign: error: {exc}", file=sys.stderr)
        return 2


def _campaign_dispatch(args) -> int:
    from repro.campaign import CampaignEngine, ResultStore, job_key

    if args.command == "status":
        with ResultStore(args.store) as store:
            summary = store.summary()
        print(f"store:   {summary['path']} ({summary['backend']})")
        print(f"results: {summary['results']}")
        if summary["stale"]:
            print(
                f"stale:   {summary['stale']} record(s) from another store "
                "schema version (dead weight; run "
                "`repro-campaign store compact` to reclaim)"
            )
        if summary["quarantined"]:
            print(
                f"quarantined: {summary['quarantined']} job(s) with persisted "
                "failure records (re-attempt with `repro-campaign run "
                "--retry-failed`)"
            )
        if summary["results"]:
            _print_breakdown("by mode", summary["modes"])
            _print_breakdown("by app", summary["apps"])
        return 0

    if args.command == "store":
        return _store_dispatch(args)

    plan = _campaign_plan(args)
    description = plan.describe()
    if args.command == "plan":
        print(f"jobs:             {description['jobs']}")
        print(f"operating points: {description['operating_points']}")
        _print_breakdown("by mode", description["modes"])
        _print_breakdown("by app", description["apps"])
        if args.store:
            with ResultStore(args.store) as store:
                cached = sum(
                    1 for job in plan if job_key(job.descriptor()) in store
                )
            print(f"already cached:   {cached} / {description['jobs']}")
        return 0

    from repro.campaign import RetryPolicy
    from repro.errors import CampaignInterrupted

    manifest_path = str(args.store) + ".resume.json"
    if args.resume:
        _check_resume_manifest(args.store, manifest_path, plan)

    policy = RetryPolicy(
        max_retries=args.retries, job_timeout_s=args.job_timeout
    )
    with ResultStore(args.store, backend=args.backend) as store:
        engine = CampaignEngine(
            store=store, max_workers=args.workers, retry_policy=policy
        )
        print(
            f"running {description['jobs']} jobs "
            f"({', '.join(f'{m}: {n}' for m, n in description['modes'].items())})"
        )
        try:
            fleet_kwargs = {}
            if args.fleet_shard_size is not None:
                fleet_kwargs["fleet_shard_size"] = args.fleet_shard_size
            if args.fleet_schedule is not None:
                fleet_kwargs["fleet_schedule"] = args.fleet_schedule
            results = engine.run(
                plan,
                on_failure=args.on_failure,
                retry_failed=args.retry_failed,
                resume_manifest=manifest_path,
                fleet=args.fleet,
                **fleet_kwargs,
            )
        except CampaignInterrupted as exc:
            print(
                f"drained on {exc.signal_name}: {exc.completed} of "
                f"{exc.planned} job(s) completed and persisted",
                file=sys.stderr,
            )
            if exc.manifest:
                print(
                    f"resume with: repro-campaign run --resume "
                    f"--store {args.store} (manifest: {exc.manifest})",
                    file=sys.stderr,
                )
            return 130
        report = results.report
        print(f"cache hits:      {report.cached}")
        print(f"new simulations: {report.executed} "
              f"(workers: {report.workers})")
        if report.retried:
            print(f"retried:         {report.retried} transient failure(s)")
        if report.quarantined:
            print(
                f"quarantined:     {report.quarantined} job(s) skipped via "
                "persisted failure records (--retry-failed to re-attempt)"
            )
        if report.failed:
            print(
                f"failed:          {report.failed} job(s) exhausted retries "
                f"(policy: {args.on_failure})"
            )
        print(f"store now holds {len(store)} results at {store.path} "
              f"({store.backend})")
    return 3 if report.failed else 0


def _check_resume_manifest(store_path: str, manifest_path: str, plan) -> None:
    """Refuse ``--resume`` when the manifest belongs to another store or
    another plan (the content-addressed store carries the actual state;
    this is a guard against resuming the wrong campaign)."""
    from pathlib import Path

    from repro.campaign import ResumeManifest, job_key
    from repro.errors import CampaignError

    manifest = ResumeManifest.load(manifest_path)
    if manifest.store is not None and Path(manifest.store).resolve() != Path(
        store_path
    ).resolve():
        raise CampaignError(
            f"resume manifest {manifest_path} records store "
            f"{manifest.store}, not {store_path}; refusing to resume"
        )
    plan_keys = {job_key(job.descriptor()) for job in plan}
    manifest_keys = set(manifest.completed) | set(manifest.pending) | set(
        manifest.quarantined
    )
    unknown = manifest_keys - plan_keys
    if len(plan_keys) != manifest.planned or unknown:
        raise CampaignError(
            f"resume manifest {manifest_path} describes a different campaign "
            f"({manifest.planned} planned job(s), "
            f"{len(unknown)} key(s) not in this plan of {len(plan_keys)}); "
            "re-run with the original plan flags, or delete the manifest "
            "and run without --resume"
        )
    print(
        f"resuming: {len(manifest.completed)} completed, "
        f"{len(manifest.pending)} pending "
        f"(drained on {manifest.signal_name})"
    )


def _store_dispatch(args) -> int:
    """``repro-campaign store {migrate,compact,verify}``."""
    from repro.campaign import ResultStore, migrate_store

    if args.store_command == "migrate":
        stats = migrate_store(args.source, args.dest, backend=args.backend)
        print(
            f"migrated {stats['migrated']} record(s) from {stats['source']} "
            f"to {stats['dest']} ({stats['backend']})"
        )
        if stats["stale"]:
            print(
                f"carried over {stats['stale']} stale record(s) from another "
                "schema version (run `store compact` on the new store to drop)"
            )
        return 0

    if args.store_command == "compact":
        with ResultStore(args.store) as store:
            stats = store.compact()
        print(
            f"compacted {args.store}: kept {stats['kept']} record(s), "
            f"dropped {stats['dropped']} superseded/stale line(s)"
        )
        return 0

    # verify
    with ResultStore(args.store) as store:
        issues = store.verify()
        results = len(store)
    if not issues:
        print(f"{args.store}: ok ({results} readable records, no damage)")
        return 0
    print(f"{args.store}: {len(issues)} damaged entr(y/ies)")
    for issue in issues:
        print(f"  {issue['file']} [{issue['where']}]: {issue['problem']}")
    print("damaged entries load as misses; re-run the campaign to heal them")
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_tune())
