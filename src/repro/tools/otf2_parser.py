"""Custom OTF2 post-processing tool (Section IV-A).

"Our tool reports energy values for the entire application run, while
PAPI values are reported individually for instances of the phase
region."  The parser walks the chronological record stream once,
accumulating the HDEEM energy metric over all records and collecting the
PAPI metric values attached to each phase-region instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceError
from repro.scorep.hdeem_plugin import HdeemMetricPlugin
from repro.scorep.otf2 import read_trace
from repro.scorep.trace import MetricRecord, Trace


@dataclass
class PhaseInstance:
    """PAPI values of one phase-region instance."""

    iteration: int
    time_s: float
    papi: dict[str, float] = field(default_factory=dict)


@dataclass
class Otf2Report:
    """Parser output: whole-run energy + per-phase-instance PAPI values."""

    app_name: str
    total_energy_j: float
    phase_instances: list[PhaseInstance]

    @property
    def num_phase_instances(self) -> int:
        return len(self.phase_instances)

    def mean_papi(self, counter: str) -> float:
        """Mean of one counter over all phase instances."""
        key = counter if counter.startswith("papi::") else f"papi::{counter}"
        values = [
            inst.papi[key] for inst in self.phase_instances if key in inst.papi
        ]
        if not values:
            raise TraceError(f"counter {counter!r} not present in trace")
        return sum(values) / len(values)


def parse_trace(
    trace: Trace | str | Path, *, phase_region: str = "phase"
) -> Otf2Report:
    """Post-process a trace (object or file path)."""
    if not isinstance(trace, Trace):
        trace = read_trace(trace)
    trace.validate()
    total_energy = 0.0
    phase_instances: list[PhaseInstance] = []
    for record in trace.records:
        if not isinstance(record, MetricRecord):
            continue
        if record.region == phase_region:
            # Regions nest and each metric record carries the inclusive
            # energy of its instance, so summing the phase instances (and
            # only those) counts every joule exactly once.
            total_energy += record.values.get(HdeemMetricPlugin.ENERGY_KEY, 0.0)
            papi = {
                k: v for k, v in record.values.items() if k.startswith("papi::")
            }
            phase_instances.append(
                PhaseInstance(
                    iteration=record.iteration,
                    time_s=record.values.get(HdeemMetricPlugin.TIME_KEY, 0.0),
                    papi=papi,
                )
            )
    return Otf2Report(
        app_name=trace.app_name,
        total_energy_j=total_energy,
        phase_instances=phase_instances,
    )
