"""``sacct``-style output formatting (Section V-D).

The library-side query lives in
:class:`~repro.execution.slurm.SlurmAccounting`; this module renders the
results the way ``sacct --format=...`` prints them.
"""

from __future__ import annotations

from repro.execution.slurm import SlurmAccounting


def format_sacct_output(
    accounting: SlurmAccounting,
    *,
    job_id: int | None = None,
    fmt: str = "JobID,JobName,Elapsed,ConsumedEnergy",
) -> str:
    """Render an ``sacct`` query as the familiar fixed-width table."""
    rows = accounting.sacct(job_id=job_id, fmt=fmt)
    fields = [f.strip() for f in fmt.split(",") if f.strip()]
    str_rows = []
    for row in rows:
        cells = []
        for f in fields:
            v = row[f]
            if isinstance(v, float):
                cells.append(f"{v:.2f}")
            else:
                cells.append(str(v))
        str_rows.append(cells)
    widths = [
        max(len(f), *(len(r[i]) for r in str_rows)) if str_rows else len(f)
        for i, f in enumerate(fields)
    ]
    lines = [
        " ".join(f.rjust(w) for f, w in zip(fields, widths)),
        " ".join("-" * w for w in widths),
    ]
    for r in str_rows:
        lines.append(" ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
