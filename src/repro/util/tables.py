"""Plain-text table rendering for benchmark harness output.

The benchmark harness prints the same rows the paper's tables report; this
module renders them with aligned columns so the output is readable in a
terminal and diff-able across runs.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
