"""Shared utilities: seeded RNG streams, validation helpers, text tables."""

from repro.util.rng import rng_for, stable_hash
from repro.util.validation import check_positive, check_in_range, check_fraction
from repro.util.tables import render_table

__all__ = [
    "rng_for",
    "stable_hash",
    "check_positive",
    "check_in_range",
    "check_fraction",
    "render_table",
]
