"""Deterministic random-number streams.

Every stochastic quantity in the simulator (node variability, counter
noise, measurement noise, weight init) draws from a ``numpy`` Generator
keyed by a tuple of labels, so that results are reproducible regardless of
call order: the stream for ``("node", 3)`` is identical whether or not any
other stream was consumed first.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np


def stable_hash(*parts: Any) -> int:
    """Return a 64-bit integer hash of ``parts`` that is stable across runs.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot be used to derive reproducible seeds.  We serialise the parts
    textually and digest with BLAKE2.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def rng_for(*key: Any, seed: int = 0) -> np.random.Generator:
    """Return a fresh ``numpy`` Generator for the given stream key.

    Parameters
    ----------
    key:
        Arbitrary hashable/representable labels identifying the stream,
        e.g. ``("node-variability", node_id)``.
    seed:
        Global experiment seed mixed into the key, so the same key under a
        different experiment seed yields an independent stream.
    """
    return np.random.default_rng(stable_hash(seed, *key))
