"""Deterministic random-number streams.

Every stochastic quantity in the simulator (node variability, counter
noise, measurement noise, weight init) draws from a ``numpy`` Generator
keyed by a tuple of labels, so that results are reproducible regardless of
call order: the stream for ``("node", 3)`` is identical whether or not any
other stream was consumed first.

Two access layers exist:

* :func:`rng_for` — the scalar path: one fresh Generator per key.  Used
  everywhere a single stream is consumed at a time.
* :class:`StreamPrefix` + :func:`batched_lognormal` — the batched path
  used by the execution simulator's replay engine.  A run draws one
  noise value per (region, iteration); the key prefix (everything but
  the iteration) is hashed once and the per-iteration BLAKE2b digests
  are derived from the cached prefix state.  The PCG64 seeding pipeline
  (``SeedSequence`` pool mixing + state initialisation) is replicated
  with vectorized ``uint32`` arithmetic, so a batch of N draws costs one
  Generator object instead of N — while remaining **bit-identical** to
  ``rng_for(*key).lognormal(...)`` for every key.  The equivalence is
  locked down by tests (``tests/util/test_util.py``).
"""

from __future__ import annotations

import hashlib
import sys
from typing import Any

import numpy as np

_LITTLE_ENDIAN = sys.byteorder == "little"


def stable_hash(*parts: Any) -> int:
    """Return a 64-bit integer hash of ``parts`` that is stable across runs.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot be used to derive reproducible seeds.  We serialise the parts
    textually and digest with BLAKE2.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def rng_for(*key: Any, seed: int = 0) -> np.random.Generator:
    """Return a fresh ``numpy`` Generator for the given stream key.

    Parameters
    ----------
    key:
        Arbitrary hashable/representable labels identifying the stream,
        e.g. ``("node-variability", node_id)``.
    seed:
        Global experiment seed mixed into the key, so the same key under a
        different experiment seed yields an independent stream.
    """
    return np.random.default_rng(stable_hash(seed, *key))


class StreamPrefix:
    """Cached BLAKE2b prefix for a family of stream keys.

    ``StreamPrefix("time", node_id, run_key, name, seed=s)`` digests the
    fixed key parts once; :meth:`seed_for` then derives the full
    :func:`stable_hash` of ``(seed, *prefix, *suffix)`` by copying the
    cached hash state and absorbing only the varying suffix.  For a
    replay over hundreds of iterations this turns the per-key hashing
    cost into a single digest-prefix computation per region.
    """

    __slots__ = ("_h",)

    def __init__(self, *prefix: Any, seed: int = 0):
        h = hashlib.blake2b(digest_size=8)
        for part in (seed, *prefix):
            h.update(repr(part).encode("utf-8"))
            h.update(b"\x1f")
        self._h = h

    def seed_for(self, *suffix: Any) -> int:
        """``stable_hash(seed, *prefix, *suffix)`` from the cached state."""
        h = self._h.copy()
        for part in suffix:
            h.update(repr(part).encode("utf-8"))
            h.update(b"\x1f")
        return int.from_bytes(h.digest(), "little")

    def seeds_for_iterations(self, iterations: int) -> np.ndarray:
        """Seeds for integer suffixes ``0 .. iterations-1`` as ``uint64``."""
        out = np.empty(iterations, dtype=np.uint64)
        base = self._h
        for i in range(iterations):
            h = base.copy()
            h.update(repr(i).encode("utf-8"))
            h.update(b"\x1f")
            out[i] = int.from_bytes(h.digest(), "little")
        return out


# ---------------------------------------------------------------------------
# Vectorized PCG64 seeding
# ---------------------------------------------------------------------------
#
# ``np.random.default_rng(seed)`` builds ``PCG64(SeedSequence(seed))``.
# Both algorithms are frozen by numpy's reproducibility policy (NEP 19):
# SeedSequence mixes the entropy words through a fixed uint32 hash whose
# round constants do not depend on the data, and PCG64 turns the four
# output words into its 128-bit state/increment.  Because the hash-constant
# schedule is data-independent, the whole pipeline vectorises across an
# arbitrary batch of seeds with elementwise uint32 ops.  The tests assert
# bit-identity against ``np.random.default_rng`` draw-for-draw.

_XSHIFT = 16
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_MASK_32 = 0xFFFFFFFF

#: PCG64's default LCG multiplier (pcg_setseq_128).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK_128 = (1 << 128) - 1


def _constant_schedule(init: int, mult: int, steps: int) -> tuple[int, ...]:
    """SeedSequence's hash-constant evolution — data-independent, so the
    whole schedule folds to module-load-time constants."""
    out = []
    hc = init
    for _ in range(steps):
        hc = (hc * mult) & _MASK_32
        out.append(hc)
    return tuple(out)


def _zero_hash(prev_const: int, this_const: int) -> int:
    """hashed(0) under a known pair of schedule constants."""
    v = 0 ^ prev_const
    v = (v * this_const) & _MASK_32
    v ^= v >> _XSHIFT
    return v


_A_SCHEDULE_INT = _constant_schedule(_INIT_A, _MULT_A, 16)
_B_SCHEDULE_INT = _constant_schedule(_INIT_B, _MULT_B, 8)

#: hashed(0) with the 3rd and 4th hash constants (pool entries 2 and 3).
_ZERO_POOL_2 = _zero_hash(_A_SCHEDULE_INT[1], _A_SCHEDULE_INT[2])
_ZERO_POOL_3 = _zero_hash(_A_SCHEDULE_INT[2], _A_SCHEDULE_INT[3])

#: Hash constants of the 16 pool-fill/mixing steps and 8 output steps,
#: pre-boxed as numpy scalars so the hot loop skips per-op coercion.
_A_SCHEDULE = tuple(np.uint32(c) for c in _A_SCHEDULE_INT)
_B_SCHEDULE = tuple(np.uint32(c) for c in _B_SCHEDULE_INT)
_INIT_A_U32 = np.uint32(_INIT_A)
_INIT_B_U32 = np.uint32(_INIT_B)
_MIX_L_U32 = np.uint32(_MIX_L)
_MIX_R_U32 = np.uint32(_MIX_R)

# Constant columns for the fused mixing rounds.  Round ``s`` of the 4x4
# mixing loop hashes pool[s] three times (for the three other pool lanes)
# with consecutive schedule constants; stacking those three hashes as a
# (3, n) matrix turns nine small array ops into three 2-D ones.  The
# first column pair starts at schedule step 4 (after the four pool-fill
# hashes).
_ROUND_DST = tuple(
    tuple(dst for dst in range(4) if dst != src) for src in range(4)
)


def _column(values) -> np.ndarray:
    return np.array(values, dtype=np.uint32).reshape(-1, 1)


_ROUND_PREV = tuple(
    _column([_A_SCHEDULE_INT[4 + 3 * s + j - 1] for j in range(3)])
    for s in range(4)
)
_ROUND_THIS = tuple(
    _column([_A_SCHEDULE_INT[4 + 3 * s + j] for j in range(3)])
    for s in range(4)
)
#: generate_state constants: words 0-3 and 4-7 as fused column pairs.
_OUT_PREV = (
    _column([_INIT_B] + list(_B_SCHEDULE_INT[0:3])),
    _column(_B_SCHEDULE_INT[3:7]),
)
_OUT_THIS = (
    _column(_B_SCHEDULE_INT[0:4]),
    _column(_B_SCHEDULE_INT[4:8]),
)


def _seed_words(seeds: np.ndarray) -> np.ndarray:
    """``SeedSequence(seed).generate_state(4, uint64)`` for a seed batch.

    Returns an ``(n, 4)`` ``uint64`` array.  Mirrors numpy's pool mixing
    for 64-bit entropy values; entropy values below 2**32 coerce to a
    single word in numpy, but hashing the missing high word as 0 with
    the same constant schedule produces the identical pool, so one code
    path covers all magnitudes.  The hash-constant schedule is
    data-independent and precomputed, and the three per-round hash/mix
    lanes run as fused 2-D operations to keep the per-batch dispatch
    overhead low.  Array integer overflow wraps silently in numpy, which
    is exactly the uint32 arithmetic SeedSequence specifies.
    """
    seeds = np.ascontiguousarray(seeds, dtype=np.uint64)
    n = len(seeds)
    lo = (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    hi = (seeds >> np.uint64(32)).astype(np.uint32)

    def xorshift(value, scratch):
        np.right_shift(value, _XSHIFT, out=scratch)
        value ^= scratch
        return value

    scratch1 = np.empty_like(lo)
    # Pool fill: entropy words 0/1, then hashed zeros (precomputed).
    lo ^= _INIT_A_U32
    lo *= _A_SCHEDULE[0]
    xorshift(lo, scratch1)
    hi ^= _A_SCHEDULE[0]
    hi *= _A_SCHEDULE[1]
    xorshift(hi, scratch1)
    pool = np.empty((4, n), dtype=np.uint32)
    pool[0] = lo
    pool[1] = hi
    pool[2] = _ZERO_POOL_2
    pool[3] = _ZERO_POOL_3

    # 4x4 mixing loop, one fused round per source lane.
    hashed = np.empty((3, n), dtype=np.uint32)
    scratch3 = np.empty_like(hashed)
    for src in range(4):
        hashed[:] = pool[src]
        hashed ^= _ROUND_PREV[src]
        hashed *= _ROUND_THIS[src]
        xorshift(hashed, scratch3)
        destinations = pool[_ROUND_DST[src],]
        destinations *= _MIX_L_U32
        hashed *= _MIX_R_U32
        destinations -= hashed
        xorshift(destinations, scratch3)
        pool[_ROUND_DST[src],] = destinations

    # generate_state(4): 8 uint32 words from cycling the pool, fused as
    # two four-word passes.
    out32 = np.empty((n, 8), dtype=np.uint32)
    scratch4 = np.empty((4, n), dtype=np.uint32)
    for half in range(2):
        v = pool ^ _OUT_PREV[half]
        v *= _OUT_THIS[half]
        xorshift(v, scratch4)
        out32[:, 4 * half : 4 * half + 4] = v.T
    if _LITTLE_ENDIAN:
        return out32.view(np.uint64)  # adjacent uint32 pairs, low word first
    w = out32.astype(np.uint64)
    return w[:, 0::2] | (w[:, 1::2] << np.uint64(32))


def batched_lognormal(
    seeds: np.ndarray, sigma: float, size: int | None = None
) -> np.ndarray:
    """Lognormal draws for a batch of stream seeds, bit-identical to
    ``np.random.default_rng(seed).lognormal(0.0, sigma, size)`` per seed.

    Returns shape ``(len(seeds),)`` for ``size=None`` and
    ``(len(seeds), size)`` otherwise.  One reusable Generator is re-seeded
    by direct state assignment, so the per-draw cost is a fraction of a
    fresh ``default_rng`` construction.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    n = len(seeds)
    if size is None:
        out = np.empty(n)
    else:
        out = np.empty((n, size))
    if n == 0:
        return out
    # Re-seed one Generator per draw by direct state assignment,
    # replicating pcg64_srandom_r: the word pairs combine high-first
    # (PCG_128BIT_CONSTANT), the increment is (initseq << 1) | 1 and the
    # state advances two LCG steps.  tolist() yields Python ints in
    # bulk, and the state-dict template is reused across draws.
    word_blocks = _seed_words(seeds).tolist()
    bitgen = np.random.PCG64(0)
    gen = np.random.Generator(bitgen)
    state_template = bitgen.state
    inner_state = state_template["state"]
    lognormal = gen.lognormal
    mult, mask = _PCG_MULT, _MASK_128
    for i in range(n):
        w0, w1, w2, w3 = word_blocks[i]
        inc = ((((w2 << 64) | w3) << 1) | 1) & mask
        inner_state["inc"] = inc
        inner_state["state"] = ((inc + ((w0 << 64) | w1)) * mult + inc) & mask
        bitgen.state = state_template
        out[i] = lognormal(0.0, sigma, size)
    return out
