"""Deterministic random-number streams.

Every stochastic quantity in the simulator (node variability, counter
noise, measurement noise, weight init) draws from a ``numpy`` Generator
keyed by a tuple of labels, so that results are reproducible regardless of
call order: the stream for ``("node", 3)`` is identical whether or not any
other stream was consumed first.

Two access layers exist:

* :func:`rng_for` — the scalar path: one fresh Generator per key.  Used
  everywhere a single stream is consumed at a time.
* :class:`StreamPrefix` + :func:`batched_lognormal` — the batched path
  used by the execution simulator's replay engine.  A run draws one
  noise value per (region, iteration); the key prefix (everything but
  the iteration) is hashed once and the per-iteration BLAKE2b digests
  are derived from the cached prefix state.  The PCG64 seeding pipeline
  (``SeedSequence`` pool mixing + state initialisation) is replicated
  with vectorized ``uint32`` arithmetic, so a batch of N draws costs one
  Generator object instead of N — while remaining **bit-identical** to
  ``rng_for(*key).lognormal(...)`` for every key.  The equivalence is
  locked down by tests (``tests/util/test_util.py``).
"""

from __future__ import annotations

import hashlib
import sys
from typing import Any

import numpy as np

_LITTLE_ENDIAN = sys.byteorder == "little"


def stable_hash(*parts: Any) -> int:
    """Return a 64-bit integer hash of ``parts`` that is stable across runs.

    Python's builtin ``hash`` is salted per process for strings, so it
    cannot be used to derive reproducible seeds.  We serialise the parts
    textually and digest with BLAKE2.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def rng_for(*key: Any, seed: int = 0) -> np.random.Generator:
    """Return a fresh ``numpy`` Generator for the given stream key.

    Parameters
    ----------
    key:
        Arbitrary hashable/representable labels identifying the stream,
        e.g. ``("node-variability", node_id)``.
    seed:
        Global experiment seed mixed into the key, so the same key under a
        different experiment seed yields an independent stream.
    """
    return np.random.default_rng(stable_hash(seed, *key))


#: Cached ``repr(i) + separator`` encodings for integer key suffixes.
#: Every replay engine derives per-iteration seeds from the same small
#: range of indices, so the encodings are shared process-wide.
_ITERATION_SUFFIXES: list[bytes] = []


def _iteration_suffixes(n: int) -> list[bytes]:
    while len(_ITERATION_SUFFIXES) < n:
        _ITERATION_SUFFIXES.append(
            repr(len(_ITERATION_SUFFIXES)).encode("utf-8") + b"\x1f"
        )
    return _ITERATION_SUFFIXES[:n]


class StreamPrefix:
    """Cached BLAKE2b prefix for a family of stream keys.

    ``StreamPrefix("time", node_id, run_key, name, seed=s)`` digests the
    fixed key parts once; :meth:`seed_for` then derives the full
    :func:`stable_hash` of ``(seed, *prefix, *suffix)`` by copying the
    cached hash state and absorbing only the varying suffix.  For a
    replay over hundreds of iterations this turns the per-key hashing
    cost into a single digest-prefix computation per region.
    """

    __slots__ = ("_h",)

    def __init__(self, *prefix: Any, seed: int = 0):
        h = hashlib.blake2b(digest_size=8)
        for part in (seed, *prefix):
            h.update(repr(part).encode("utf-8"))
            h.update(b"\x1f")
        self._h = h

    def seed_for(self, *suffix: Any) -> int:
        """``stable_hash(seed, *prefix, *suffix)`` from the cached state."""
        h = self._h.copy()
        for part in suffix:
            h.update(repr(part).encode("utf-8"))
            h.update(b"\x1f")
        return int.from_bytes(h.digest(), "little")

    def seeds_for_iterations(self, iterations: int) -> np.ndarray:
        """Seeds for integer suffixes ``0 .. iterations-1`` as ``uint64``."""
        out = np.empty(iterations, dtype=np.uint64)
        self.fill_iteration_seeds(out)
        return out

    def fill_iteration_seeds(self, out: np.ndarray) -> None:
        """Fill ``out`` with the seeds for suffixes ``0 .. len(out)-1``.

        The grid-sweep replay derives one seed row per (configuration,
        work region); filling caller-owned rows avoids a temporary per
        row.  Digesting ``repr(i)`` and the separator in one update is
        byte-identical to the two-update form of :meth:`seed_for`.
        """
        base = self._h
        suffixes = _iteration_suffixes(len(out))
        from_bytes = int.from_bytes
        for i, suffix in enumerate(suffixes):
            h = base.copy()
            h.update(suffix)
            out[i] = from_bytes(h.digest(), "little")


# ---------------------------------------------------------------------------
# Vectorized PCG64 seeding
# ---------------------------------------------------------------------------
#
# ``np.random.default_rng(seed)`` builds ``PCG64(SeedSequence(seed))``.
# Both algorithms are frozen by numpy's reproducibility policy (NEP 19):
# SeedSequence mixes the entropy words through a fixed uint32 hash whose
# round constants do not depend on the data, and PCG64 turns the four
# output words into its 128-bit state/increment.  Because the hash-constant
# schedule is data-independent, the whole pipeline vectorises across an
# arbitrary batch of seeds with elementwise uint32 ops.  The tests assert
# bit-identity against ``np.random.default_rng`` draw-for-draw.

_XSHIFT = 16
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_MASK_32 = 0xFFFFFFFF

#: PCG64's default LCG multiplier (pcg_setseq_128).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK_128 = (1 << 128) - 1


def _constant_schedule(init: int, mult: int, steps: int) -> tuple[int, ...]:
    """SeedSequence's hash-constant evolution — data-independent, so the
    whole schedule folds to module-load-time constants."""
    out = []
    hc = init
    for _ in range(steps):
        hc = (hc * mult) & _MASK_32
        out.append(hc)
    return tuple(out)


def _zero_hash(prev_const: int, this_const: int) -> int:
    """hashed(0) under a known pair of schedule constants."""
    v = 0 ^ prev_const
    v = (v * this_const) & _MASK_32
    v ^= v >> _XSHIFT
    return v


_A_SCHEDULE_INT = _constant_schedule(_INIT_A, _MULT_A, 16)
_B_SCHEDULE_INT = _constant_schedule(_INIT_B, _MULT_B, 8)

#: hashed(0) with the 3rd and 4th hash constants (pool entries 2 and 3).
_ZERO_POOL_2 = _zero_hash(_A_SCHEDULE_INT[1], _A_SCHEDULE_INT[2])
_ZERO_POOL_3 = _zero_hash(_A_SCHEDULE_INT[2], _A_SCHEDULE_INT[3])

#: Hash constants of the 16 pool-fill/mixing steps and 8 output steps,
#: pre-boxed as numpy scalars so the hot loop skips per-op coercion.
_A_SCHEDULE = tuple(np.uint32(c) for c in _A_SCHEDULE_INT)
_B_SCHEDULE = tuple(np.uint32(c) for c in _B_SCHEDULE_INT)
_INIT_A_U32 = np.uint32(_INIT_A)
_INIT_B_U32 = np.uint32(_INIT_B)
_MIX_L_U32 = np.uint32(_MIX_L)
_MIX_R_U32 = np.uint32(_MIX_R)

# Constant columns for the fused mixing rounds.  Round ``s`` of the 4x4
# mixing loop hashes pool[s] three times (for the three other pool lanes)
# with consecutive schedule constants; stacking those three hashes as a
# (3, n) matrix turns nine small array ops into three 2-D ones.  The
# first column pair starts at schedule step 4 (after the four pool-fill
# hashes).
_ROUND_DST = tuple(
    tuple(dst for dst in range(4) if dst != src) for src in range(4)
)


def _column(values) -> np.ndarray:
    return np.array(values, dtype=np.uint32).reshape(-1, 1)


_ROUND_PREV = tuple(
    _column([_A_SCHEDULE_INT[4 + 3 * s + j - 1] for j in range(3)])
    for s in range(4)
)
_ROUND_THIS = tuple(
    _column([_A_SCHEDULE_INT[4 + 3 * s + j] for j in range(3)])
    for s in range(4)
)
#: generate_state constants: words 0-3 and 4-7 as fused column pairs.
_OUT_PREV = (
    _column([_INIT_B] + list(_B_SCHEDULE_INT[0:3])),
    _column(_B_SCHEDULE_INT[3:7]),
)
_OUT_THIS = (
    _column(_B_SCHEDULE_INT[0:4]),
    _column(_B_SCHEDULE_INT[4:8]),
)


def _seed_words(seeds: np.ndarray) -> np.ndarray:
    """``SeedSequence(seed).generate_state(4, uint64)`` for a seed batch.

    Returns an ``(n, 4)`` ``uint64`` array.  Mirrors numpy's pool mixing
    for 64-bit entropy values; entropy values below 2**32 coerce to a
    single word in numpy, but hashing the missing high word as 0 with
    the same constant schedule produces the identical pool, so one code
    path covers all magnitudes.  The hash-constant schedule is
    data-independent and precomputed, and the three per-round hash/mix
    lanes run as fused 2-D operations to keep the per-batch dispatch
    overhead low.  Array integer overflow wraps silently in numpy, which
    is exactly the uint32 arithmetic SeedSequence specifies.
    """
    seeds = np.ascontiguousarray(seeds, dtype=np.uint64)
    n = len(seeds)
    lo = (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    hi = (seeds >> np.uint64(32)).astype(np.uint32)

    def xorshift(value, scratch):
        np.right_shift(value, _XSHIFT, out=scratch)
        value ^= scratch
        return value

    scratch1 = np.empty_like(lo)
    # Pool fill: entropy words 0/1, then hashed zeros (precomputed).
    lo ^= _INIT_A_U32
    lo *= _A_SCHEDULE[0]
    xorshift(lo, scratch1)
    hi ^= _A_SCHEDULE[0]
    hi *= _A_SCHEDULE[1]
    xorshift(hi, scratch1)
    pool = np.empty((4, n), dtype=np.uint32)
    pool[0] = lo
    pool[1] = hi
    pool[2] = _ZERO_POOL_2
    pool[3] = _ZERO_POOL_3

    # 4x4 mixing loop, one fused round per source lane.
    hashed = np.empty((3, n), dtype=np.uint32)
    scratch3 = np.empty_like(hashed)
    for src in range(4):
        hashed[:] = pool[src]
        hashed ^= _ROUND_PREV[src]
        hashed *= _ROUND_THIS[src]
        xorshift(hashed, scratch3)
        destinations = pool[_ROUND_DST[src],]
        destinations *= _MIX_L_U32
        hashed *= _MIX_R_U32
        destinations -= hashed
        xorshift(destinations, scratch3)
        pool[_ROUND_DST[src],] = destinations

    # generate_state(4): 8 uint32 words from cycling the pool, fused as
    # two four-word passes.
    out32 = np.empty((n, 8), dtype=np.uint32)
    scratch4 = np.empty((4, n), dtype=np.uint32)
    for half in range(2):
        v = pool ^ _OUT_PREV[half]
        v *= _OUT_THIS[half]
        xorshift(v, scratch4)
        out32[:, 4 * half : 4 * half + 4] = v.T
    if _LITTLE_ENDIAN:
        return out32.view(np.uint64)  # adjacent uint32 pairs, low word first
    w = out32.astype(np.uint64)
    return w[:, 0::2] | (w[:, 1::2] << np.uint64(32))


def batched_lognormal(
    seeds: np.ndarray, sigma: float, size: int | None = None
) -> np.ndarray:
    """Lognormal draws for a batch of stream seeds, bit-identical to
    ``np.random.default_rng(seed).lognormal(0.0, sigma, size)`` per seed.

    Returns shape ``(len(seeds),)`` for ``size=None`` and
    ``(len(seeds), size)`` otherwise.  Single draws (``size=None``, the
    replay engines' shape) go through a vectorized PCG64 + ziggurat
    fast path (see :class:`_ZigguratFastPath`); batches and any seed the
    fast path cannot serve bit-exactly fall back to one reusable
    Generator re-seeded by direct state assignment — itself a fraction
    of a fresh ``default_rng`` construction per draw.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    n = len(seeds)
    if size is None:
        out = np.empty(n)
    else:
        out = np.empty((n, size))
    if n == 0:
        return out
    words = _seed_words(seeds)
    if size is None and n >= 32:
        fast = _ziggurat_fast_path()
        if fast is not None:
            fast.lognormal_into(words, sigma, out)
            return out
    _lognormal_scalar(words.tolist(), sigma, size, out, range(n))
    return out


def _lognormal_scalar(word_blocks, sigma: float, size, out, indices) -> None:
    """The scalar reference path: one re-seeded Generator per draw.

    Replicates ``pcg64_srandom_r``: the word pairs combine high-first
    (PCG_128BIT_CONSTANT), the increment is ``(initseq << 1) | 1`` and
    the state advances two LCG steps.  The state-dict template is
    reused across draws.  ``indices`` selects which rows to fill, so
    the ziggurat fast path can delegate its rejection cases here.
    """
    bitgen = np.random.PCG64(0)
    gen = np.random.Generator(bitgen)
    state_template = bitgen.state
    inner_state = state_template["state"]
    lognormal = gen.lognormal
    mult, mask = _PCG_MULT, _MASK_128
    for i in indices:
        w0, w1, w2, w3 = word_blocks[i]
        inc = ((((w2 << 64) | w3) << 1) | 1) & mask
        inner_state["inc"] = inc
        inner_state["state"] = ((inc + ((w0 << 64) | w1)) * mult + inc) & mask
        bitgen.state = state_template
        out[i] = lognormal(0.0, sigma, size)


# ---------------------------------------------------------------------------
# Vectorized PCG64 output + ziggurat fast-accept path
# ---------------------------------------------------------------------------
#
# A single lognormal draw per stream costs three scalar steps: re-seed a
# PCG64 (state-dict assignment), draw one standard normal (ziggurat),
# exponentiate.  All three vectorise:
#
# * the seeded state and its first 64-bit output are plain 128-bit LCG
#   arithmetic (``state * mult + inc`` twice, then XSL-RR), computed
#   here with 32-bit limb products over the whole seed batch;
# * numpy's ziggurat accepts ~98.9% of first outputs immediately
#   (``rabs < ki[idx]``), returning ``rabs * wi[idx]`` with the sign
#   bit applied — elementwise arithmetic once the ``ki``/``wi`` tables
#   are known;
# * ``Generator.lognormal(0, sigma)`` is ``exp(0.0 + sigma * z)`` with
#   libm's ``exp`` — reproduced per element through ``math.exp`` (the
#   same libm symbol; ``np.exp``'s SIMD kernels may differ in the last
#   ulp and are NOT used).
#
# The tables are not exposed by numpy, so they are **extracted from the
# running interpreter** on first use: crafting a generator state whose
# next output is any chosen word (the LCG step is invertible, and a
# zero high half makes XSL-RR the identity) lets us read ``wi[idx]``
# off an accepted draw with a power-of-two mantissa (exact division)
# and bisect ``ki[idx]`` by observing how many LCG steps a draw
# consumed (exactly one iff fast-accepted).  The extraction verifies
# the step/output semantics against ``random_raw`` and the assembled
# fast path draw-for-draw against the scalar reference; any mismatch
# (e.g. a future numpy changing its ziggurat) disables the fast path
# for the process, falling back to the scalar loop.  Seeds whose first
# output is not fast-accepted (~1%) always take the scalar path.

_MASK_32_U64 = np.uint64(0xFFFFFFFF)
_MULT_B0 = np.uint64(_PCG_MULT & 0xFFFFFFFF)
_MULT_B1 = np.uint64((_PCG_MULT >> 32) & 0xFFFFFFFF)
_MULT_LO = np.uint64(_PCG_MULT & 0xFFFFFFFFFFFFFFFF)
_MULT_HI = np.uint64(_PCG_MULT >> 64)
_RABS_MASK = np.uint64(0x000FFFFFFFFFFFFF)


def _mul64_lo_hi(a: np.ndarray, b0: np.uint64, b1: np.uint64, b_lo: np.uint64):
    """Full 64x64 -> 128 product of ``a`` with the constant ``b``
    (given as 32-bit halves ``b0``/``b1`` and 64-bit ``b_lo``)."""
    a0 = a & _MASK_32_U64
    a1 = a >> np.uint64(32)
    p00 = a0 * b0
    p01 = a0 * b1
    p10 = a1 * b0
    mid = (p00 >> np.uint64(32)) + (p01 & _MASK_32_U64) + (p10 & _MASK_32_U64)
    lo = a * b_lo
    hi = (
        a1 * b1
        + (p01 >> np.uint64(32))
        + (p10 >> np.uint64(32))
        + (mid >> np.uint64(32))
    )
    return lo, hi


def _step128(lo, hi, inc_lo, inc_hi):
    """One PCG64 LCG step, ``state * mult + inc`` mod 2**128."""
    p_lo, p_hi = _mul64_lo_hi(lo, _MULT_B0, _MULT_B1, _MULT_LO)
    p_hi = p_hi + lo * _MULT_HI + hi * _MULT_LO
    r_lo = p_lo + inc_lo
    carry = (r_lo < p_lo).astype(np.uint64)
    r_hi = p_hi + inc_hi + carry
    return r_lo, r_hi


def _first_outputs(words: np.ndarray) -> np.ndarray:
    """First ``next_uint64`` of a freshly seeded PCG64, per word block.

    Mirrors ``pcg64_srandom_r`` (state = ``(inc + entropy) * mult +
    inc``) followed by one generate step and the XSL-RR output
    function, vectorized over the batch.
    """
    ent_hi = words[:, 0]
    ent_lo = words[:, 1]
    inc_hi = (words[:, 2] << np.uint64(1)) | (words[:, 3] >> np.uint64(63))
    inc_lo = (words[:, 3] << np.uint64(1)) | np.uint64(1)
    t_lo = inc_lo + ent_lo
    carry = (t_lo < inc_lo).astype(np.uint64)
    t_hi = inc_hi + ent_hi + carry
    s_lo, s_hi = _step128(t_lo, t_hi, inc_lo, inc_hi)
    s_lo, s_hi = _step128(s_lo, s_hi, inc_lo, inc_hi)
    rot = s_hi >> np.uint64(58)
    v = s_hi ^ s_lo
    return (v >> rot) | (v << ((np.uint64(64) - rot) & np.uint64(63)))


class _ZigguratFastPath:
    """Runtime-extracted ziggurat tables plus the vectorized draw."""

    def __init__(self, ki: np.ndarray, wi: np.ndarray):
        self._ki = ki  #: (256,) uint64 fast-accept thresholds
        self._wi = wi  #: (256,) float64 strip widths

    def lognormal_into(self, words: np.ndarray, sigma: float, out: np.ndarray) -> None:
        """Fill ``out`` with one ``lognormal(0, sigma)`` per word block."""
        import math

        output = _first_outputs(words)
        idx = (output & np.uint64(0xFF)).astype(np.intp)
        shifted = output >> np.uint64(8)
        sign = shifted & np.uint64(1)
        rabs = (shifted >> np.uint64(1)) & _RABS_MASK
        accepted = rabs < self._ki[idx]
        x = rabs.astype(np.float64) * self._wi[idx]
        np.negative(x, where=sign.astype(bool), out=x)
        scale = float(sigma)
        exp = math.exp
        values = x[accepted].tolist()
        out[accepted] = [exp(0.0 + scale * z) for z in values]
        rejected = np.nonzero(~accepted)[0]
        if rejected.size:
            values = np.empty(rejected.size)
            _lognormal_scalar(
                words[rejected].tolist(), sigma, None, values, range(rejected.size)
            )
            out[rejected] = values


_ZIGGURAT: _ZigguratFastPath | bool | None = None


def _ziggurat_fast_path() -> _ZigguratFastPath | None:
    """The process-wide fast path, extracted and verified on first use."""
    global _ZIGGURAT
    if _ZIGGURAT is None:
        try:
            _ZIGGURAT = _extract_ziggurat()
        except Exception:
            _ZIGGURAT = False
    return _ZIGGURAT or None


def _extract_ziggurat() -> _ZigguratFastPath | bool:
    """Extract ``ki``/``wi`` from the running numpy and self-verify.

    Returns ``False`` (disabling the fast path) whenever the observed
    generator semantics deviate from the expectations above.
    """
    mask = _MASK_128
    mult = _PCG_MULT
    inv_mult = pow(mult, -1, 1 << 128)
    bitgen = np.random.PCG64(0)
    gen = np.random.Generator(bitgen)
    template = bitgen.state
    inner = template["state"]
    inc = inner["inc"]
    standard_normal = gen.standard_normal

    def step(state: int) -> int:
        return (state * mult + inc) & mask

    def output(state: int) -> int:
        hi, lo = state >> 64, state & 0xFFFFFFFFFFFFFFFF
        v = hi ^ lo
        rot = hi >> 58
        return ((v >> rot) | (v << (64 - rot))) & 0xFFFFFFFFFFFFFFFF if rot else v

    def seed_for_output(word: int) -> int:
        # Post-step state with a zero high half makes XSL-RR the
        # identity, so the pre-step state is one inverse LCG step away.
        return ((word - inc) * inv_mult) & mask

    # Verify the step/output semantics against the raw stream.
    probe = seed_for_output(0x0123456789ABCDEF)
    inner["state"] = probe
    bitgen.state = template
    if int(bitgen.random_raw()) != 0x0123456789ABCDEF:
        return False

    def draw(word: int) -> tuple[float, int]:
        """One standard normal whose first uint64 is ``word``, plus the
        number of LCG steps the draw consumed."""
        pre = seed_for_output(word)
        inner["state"] = pre
        bitgen.state = template
        value = float(standard_normal())
        end = bitgen.state["state"]["state"]
        state = pre
        for steps in range(1, 64):
            state = step(state)
            if state == end:
                return value, steps
        raise RuntimeError("unexpected stream consumption")

    ki = np.empty(256, dtype=np.uint64)
    wi = np.zeros(256, dtype=np.float64)
    for idx in range(256):
        # Bisect the fast-accept threshold: accepted draws consume
        # exactly one step, everything else at least two.
        lo, hi = 0, 1 << 52
        while lo < hi:
            mid = (lo + hi) // 2
            _, steps = draw((mid << 9) | idx)
            if steps == 1:
                lo = mid + 1
            else:
                hi = mid
        ki[idx] = lo
        if lo > 1:
            # Probe the strip width with an accepted power-of-two
            # mantissa, so the division recovering ``wi`` is exact.
            probe_rabs = 1 << (int(lo).bit_length() - 2)
            value, steps = draw((probe_rabs << 9) | idx)
            if steps != 1 or value < 0.0:
                return False
            wi[idx] = value / probe_rabs
    fast = _ZigguratFastPath(ki, wi)

    # Draw-for-draw verification against the scalar reference.
    check_seeds = np.random.default_rng(0).integers(
        0, 1 << 64, size=4096, dtype=np.uint64
    )
    words = _seed_words(check_seeds)
    got = np.empty(len(check_seeds))
    fast.lognormal_into(words, 0.0025, got)
    want = np.empty(len(check_seeds))
    _lognormal_scalar(words.tolist(), 0.0025, None, want, range(len(check_seeds)))
    if not np.array_equal(got, want):
        return False
    return fast
