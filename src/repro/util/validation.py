"""Small argument-validation helpers used across the package."""

from __future__ import annotations


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Validate that ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed unit interval."""
    return check_in_range(name, value, 0.0, 1.0)


#: Two frequencies within half an MSR ratio step (100 MHz) denote the
#: same hardware state; in practice callers are at most float-dust away.
FREQUENCY_TOLERANCE_GHZ = 0.05


def frequency_index(
    frequencies, value_ghz: float, *, axis: str = "frequency"
) -> int:
    """Position of ``value_ghz`` on a frequency axis, tolerantly.

    Grid axes hold decimal frequencies (2.4, 1.7, ...) that callers may
    reproduce through arithmetic (``2.5 - 0.1``), so exact ``.index()``
    lookups are fragile and fail with an unhelpful bare ``ValueError``.
    This matches within :data:`FREQUENCY_TOLERANCE_GHZ` and raises a
    ``ValueError`` naming the frequency and the axis when nothing is
    close enough.
    """
    best = min(
        range(len(frequencies)),
        key=lambda i: abs(frequencies[i] - value_ghz),
        default=None,
    )
    if best is None or abs(frequencies[best] - value_ghz) > FREQUENCY_TOLERANCE_GHZ:
        lo, hi = (frequencies[0], frequencies[-1]) if frequencies else ("-", "-")
        raise ValueError(
            f"{value_ghz} GHz is not on the {axis} axis "
            f"({len(frequencies)} steps, {lo}..{hi} GHz)"
        )
    return best
