"""Small argument-validation helpers used across the package."""

from __future__ import annotations


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Validate that ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed unit interval."""
    return check_in_range(name, value, 0.0, 1.0)
