"""OTF2-style event traces.

An application trace is a chronologically ordered sequence of records:
region enter, region leave, and metric records attached at enter/exit
(Section IV-A: "performance metrics and energy values are recorded only
at entry and exit of a region").  The custom post-processing tool of the
paper (:mod:`repro.tools.otf2_parser`) consumes these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.workloads.region import Region


@dataclass(frozen=True)
class EnterRecord:
    """Region-enter event."""

    time_s: float
    region: str
    iteration: int


@dataclass(frozen=True)
class LeaveRecord:
    """Region-leave event."""

    time_s: float
    region: str
    iteration: int


@dataclass(frozen=True)
class MetricRecord:
    """Metric sample attached to the enclosing location at ``time_s``."""

    time_s: float
    region: str
    iteration: int
    values: dict[str, float]

    def __post_init__(self):
        # freeze a copy so records are safe to share
        object.__setattr__(self, "values", dict(self.values))


TraceRecord = EnterRecord | LeaveRecord | MetricRecord


@dataclass
class Trace:
    """A complete application trace."""

    app_name: str
    records: list[TraceRecord] = field(default_factory=list)

    def validate(self) -> None:
        """Check chronological ordering and balanced enter/leave nesting."""
        last_t = float("-inf")
        stack: list[str] = []
        for rec in self.records:
            if rec.time_s < last_t:
                raise TraceError(
                    f"records out of chronological order at t={rec.time_s}"
                )
            last_t = rec.time_s
            if isinstance(rec, EnterRecord):
                stack.append(rec.region)
            elif isinstance(rec, LeaveRecord):
                if not stack or stack[-1] != rec.region:
                    raise TraceError(
                        f"unbalanced leave for region {rec.region!r}"
                    )
                stack.pop()
        if stack:
            raise TraceError(f"trace ends with open regions: {stack}")

    def enters(self, region: str | None = None) -> list[EnterRecord]:
        return [
            r
            for r in self.records
            if isinstance(r, EnterRecord) and (region is None or r.region == region)
        ]

    def leaves(self, region: str | None = None) -> list[LeaveRecord]:
        return [
            r
            for r in self.records
            if isinstance(r, LeaveRecord) and (region is None or r.region == region)
        ]

    def metrics(self, region: str | None = None) -> list[MetricRecord]:
        return [
            r
            for r in self.records
            if isinstance(r, MetricRecord) and (region is None or r.region == region)
        ]


class TraceCollector:
    """Run listener that records an OTF2-style trace.

    Metric plugins registered with the collector contribute values to the
    metric records written at region exit — the Score-P metric-plugin
    interface.
    """

    def __init__(self, app_name: str, metric_plugins: tuple = ()):
        self._trace = Trace(app_name=app_name)
        self._plugins = tuple(metric_plugins)

    # -- RunListener interface ------------------------------------------
    def on_enter(self, region: Region, iteration: int, time_s: float) -> None:
        self._trace.records.append(
            EnterRecord(time_s=time_s, region=region.name, iteration=iteration)
        )

    def on_exit(
        self, region: Region, iteration: int, time_s: float, metrics: dict
    ) -> None:
        values: dict[str, float] = {}
        for plugin in self._plugins:
            values.update(plugin.extract(region, metrics))
        if values:
            self._trace.records.append(
                MetricRecord(
                    time_s=time_s,
                    region=region.name,
                    iteration=iteration,
                    values=values,
                )
            )
        self._trace.records.append(
            LeaveRecord(time_s=time_s, region=region.name, iteration=iteration)
        )

    # --------------------------------------------------------------------
    def trace(self) -> Trace:
        self._trace.validate()
        return self._trace
