"""Score-P-style measurement infrastructure.

Models the measurement stack of Sections III-A and IV-A: compiler
instrumentation with run-time/compile-time filtering
(``scorep-autofilter``), call-tree profiles (CUBE4 role), chronological
OTF2-style traces, and the metric-plugin interface with PAPI and HDEEM
plugins.
"""

from repro.scorep.instrumentation import Instrumentation
from repro.scorep.filtering import FilterFile, scorep_autofilter
from repro.scorep.profile import CallTreeProfile, ProfileCollector, ProfileNode
from repro.scorep.trace import (
    EnterRecord,
    LeaveRecord,
    MetricRecord,
    Trace,
    TraceCollector,
)
from repro.scorep.otf2 import read_trace, write_trace
from repro.scorep.metrics import MetricPlugin
from repro.scorep.papi_plugin import PapiMetricPlugin
from repro.scorep.hdeem_plugin import HdeemMetricPlugin
from repro.scorep.macros import annotate_phase

__all__ = [
    "Instrumentation",
    "FilterFile",
    "scorep_autofilter",
    "CallTreeProfile",
    "ProfileCollector",
    "ProfileNode",
    "EnterRecord",
    "LeaveRecord",
    "MetricRecord",
    "Trace",
    "TraceCollector",
    "read_trace",
    "write_trace",
    "MetricPlugin",
    "PapiMetricPlugin",
    "HdeemMetricPlugin",
    "annotate_phase",
]
