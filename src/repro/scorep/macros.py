"""Phase-region annotation (the Score-P user macros of Section III-A).

On the real system the developer wraps one iteration of the main loop in
``SCOREP_USER_OA_PHASE_BEGIN/END``.  Here the annotation verifies an
application's phase region satisfies the macro contract: it exists, is
unique, and is a single-entry/single-exit child of ``main``'s subtree.
"""

from __future__ import annotations

from repro.errors import InstrumentationError
from repro.workloads.application import Application
from repro.workloads.region import RegionKind


def annotate_phase(app: Application) -> str:
    """Validate the phase annotation; returns the phase region name.

    Raises :class:`~repro.errors.InstrumentationError` when the phase
    region would not satisfy the macro contract.
    """
    phases = [r for r in app.main.walk() if r.kind is RegionKind.PHASE]
    if len(phases) != 1:
        raise InstrumentationError(
            f"{app.name}: exactly one phase region required, found {len(phases)}"
        )
    phase = phases[0]
    if phase.calls_per_phase != 1:
        raise InstrumentationError(
            f"{app.name}: phase region must be single-entry/single-exit"
        )
    if not app.phase_iterations >= 1:
        raise InstrumentationError(f"{app.name}: no main-loop iterations")
    return phase.name
