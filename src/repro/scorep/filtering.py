"""Run-time and compile-time filtering (``scorep-autofilter``).

Filtering is the two-step process of Section III-A: executing the
instrumented application with profiling enabled yields a call-tree
profile; run-time filtering derives a *filter file* listing fine-granular
regions below a threshold; the filter file then suppresses those regions'
instrumentation at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InstrumentationError
from repro.scorep.instrumentation import UNFILTERABLE_KINDS, Instrumentation
from repro.scorep.profile import CallTreeProfile

#: Default autofilter threshold: regions cheaper than this per visit are
#: measurement noise and get filtered (the tool's -t option, seconds).
DEFAULT_FILTER_THRESHOLD_S = 0.01


@dataclass(frozen=True)
class FilterFile:
    """A Score-P filter file (``SCOREP_REGION_NAMES_BEGIN EXCLUDE ...``)."""

    excluded: tuple[str, ...]

    def render(self) -> str:
        lines = ["SCOREP_REGION_NAMES_BEGIN", "  EXCLUDE"]
        lines += [f"    {name}" for name in self.excluded]
        lines.append("SCOREP_REGION_NAMES_END")
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "FilterFile":
        lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
        if (
            not lines
            or lines[0] != "SCOREP_REGION_NAMES_BEGIN"
            or lines[-1] != "SCOREP_REGION_NAMES_END"
        ):
            raise InstrumentationError("malformed filter file")
        body = lines[1:-1]
        if not body or body[0] != "EXCLUDE":
            raise InstrumentationError("filter file missing EXCLUDE block")
        return cls(excluded=tuple(body[1:]))


def scorep_autofilter(
    profile: CallTreeProfile,
    instrumentation: Instrumentation,
    *,
    threshold_s: float = DEFAULT_FILTER_THRESHOLD_S,
) -> FilterFile:
    """Generate a filter file from a profiling run (run-time filtering).

    A region is excluded if its mean time per visit is below the
    threshold and its probes are removable (plain function
    instrumentation, not OPARI2/PMPI events).
    """
    if threshold_s <= 0:
        raise InstrumentationError("filter threshold must be positive")
    excluded = []
    kinds_by_name = {
        r.name: r.kind for r in instrumentation.app.main.walk()
    }
    for node in profile.root.walk():
        kind = kinds_by_name.get(node.name)
        if kind is None or kind in UNFILTERABLE_KINDS:
            continue
        if node.name == "main":
            continue
        if node.visits > 0 and node.mean_time_s < threshold_s:
            excluded.append(node.name)
    return FilterFile(excluded=tuple(sorted(set(excluded))))


def apply_compile_time_filter(
    instrumentation: Instrumentation, filter_file: FilterFile
) -> Instrumentation:
    """Rebuild the application with the filter applied (compile-time step)."""
    return instrumentation.apply_filter(set(filter_file.excluded))
