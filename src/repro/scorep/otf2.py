"""Trace (de)serialization — the on-disk OTF2 role.

Real OTF2 is a compressed binary archive; the defining property for the
paper's pipeline is that the trace on disk is a chronologically ordered
record stream a separate tool can parse.  We serialise to JSON-lines:
one record per line, first line holds archive metadata.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TraceError
from repro.scorep.trace import EnterRecord, LeaveRecord, MetricRecord, Trace

_FORMAT_VERSION = 2  # mirrors "Open Trace Format 2"


def _encode(rec) -> dict:
    if isinstance(rec, EnterRecord):
        return {"t": rec.time_s, "e": "ENTER", "r": rec.region, "i": rec.iteration}
    if isinstance(rec, LeaveRecord):
        return {"t": rec.time_s, "e": "LEAVE", "r": rec.region, "i": rec.iteration}
    if isinstance(rec, MetricRecord):
        return {
            "t": rec.time_s,
            "e": "METRIC",
            "r": rec.region,
            "i": rec.iteration,
            "v": rec.values,
        }
    raise TraceError(f"unknown record type: {type(rec).__name__}")


def _decode(obj: dict):
    kind = obj.get("e")
    if kind == "ENTER":
        return EnterRecord(time_s=obj["t"], region=obj["r"], iteration=obj["i"])
    if kind == "LEAVE":
        return LeaveRecord(time_s=obj["t"], region=obj["r"], iteration=obj["i"])
    if kind == "METRIC":
        return MetricRecord(
            time_s=obj["t"], region=obj["r"], iteration=obj["i"], values=obj["v"]
        )
    raise TraceError(f"unknown record kind in trace file: {kind!r}")


def write_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` in JSONL form; returns the path."""
    trace.validate()
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {"otf2_version": _FORMAT_VERSION, "app": trace.app_name}
        fh.write(json.dumps(header) + "\n")
        for rec in trace.records:
            fh.write(json.dumps(_encode(rec)) + "\n")
    return path


def read_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise TraceError(f"empty trace file: {path}")
    header = json.loads(lines[0])
    if header.get("otf2_version") != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace version: {header.get('otf2_version')!r}"
        )
    trace = Trace(app_name=header["app"])
    for line in lines[1:]:
        trace.records.append(_decode(json.loads(line)))
    trace.validate()
    return trace
