"""``scorep_hdeem_plugin``: node-energy metric via the Score-P plugin API.

Adds the HDEEM node energy of each region instance to the trace, which
is how the paper's traces carry energy values alongside PAPI counters.
"""

from __future__ import annotations

from repro.workloads.region import Region


class HdeemMetricPlugin:
    """Metric plugin exposing per-instance node energy and duration."""

    ENERGY_KEY = "hdeem::node_energy_j"
    TIME_KEY = "hdeem::time_s"

    def extract(self, region: Region, metrics: dict[str, float]) -> dict[str, float]:
        out: dict[str, float] = {}
        if "node_energy_j" in metrics:
            out[self.ENERGY_KEY] = metrics["node_energy_j"]
        if "time_s" in metrics:
            out[self.TIME_KEY] = metrics["time_s"]
        return out
