"""Score-P PAPI metric support.

Each measurement run can record at most
:data:`repro.config.PAPI_MAX_SIMULTANEOUS_EVENTS` preset events (the
PMU's programmable-counter limit), so the plugin is programmed with one
multiplex group per run; the data-acquisition layer runs the application
once per group and averages.
"""

from __future__ import annotations

from repro.counters.eventset import EventSet
from repro.counters.papi import preset
from repro.workloads.region import Region


class PapiMetricPlugin:
    """Metric plugin exposing one run's programmed PAPI events."""

    def __init__(self, event_names: tuple[str, ...] | list[str]):
        self._event_set = EventSet()
        for name in event_names:
            self._event_set.add_event(name)

    @property
    def events(self) -> tuple[str, ...]:
        return self._event_set.events

    def extract(self, region: Region, metrics: dict[str, float]) -> dict[str, float]:
        """Pick the programmed counters out of the full PMU reading."""
        out = {}
        for name in self._event_set.events:
            if name in metrics:
                out[f"papi::{preset(name).short_name}"] = metrics[name]
        return out
