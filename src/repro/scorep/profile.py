"""Call-tree profiles (the CUBE4 role in the paper's workflow).

Executing the instrumented application with profiling enabled produces a
call-tree profile; ``scorep-autofilter`` consumes it to decide which
fine-granular regions to filter, and ``readex-dyn-detect`` consumes it to
find significant regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InstrumentationError
from repro.workloads.region import Region


@dataclass
class ProfileNode:
    """Aggregated measurements of one region across all its instances."""

    name: str
    kind: str
    visits: int = 0
    inclusive_time_s: float = 0.0
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    @property
    def mean_time_s(self) -> float:
        """Mean inclusive time per visit — the dyn-detect criterion."""
        return self.inclusive_time_s / self.visits if self.visits else 0.0

    def child(self, name: str, kind: str) -> "ProfileNode":
        if name not in self.children:
            self.children[name] = ProfileNode(name=name, kind=kind)
        return self.children[name]

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()


@dataclass
class CallTreeProfile:
    """A complete application profile (CUBE4-equivalent)."""

    app_name: str
    root: ProfileNode

    def node(self, name: str) -> ProfileNode:
        for n in self.root.walk():
            if n.name == name:
                return n
        raise InstrumentationError(f"region {name!r} not in profile")

    def region_names(self) -> tuple[str, ...]:
        return tuple(n.name for n in self.root.walk())

    def to_dict(self) -> dict:
        def conv(node: ProfileNode) -> dict:
            return {
                "name": node.name,
                "kind": node.kind,
                "visits": node.visits,
                "inclusive_time_s": node.inclusive_time_s,
                "children": [conv(c) for c in node.children.values()],
            }

        return {"app": self.app_name, "calltree": conv(self.root)}

    @classmethod
    def from_dict(cls, data: dict) -> "CallTreeProfile":
        def conv(d: dict) -> ProfileNode:
            node = ProfileNode(
                name=d["name"],
                kind=d["kind"],
                visits=d["visits"],
                inclusive_time_s=d["inclusive_time_s"],
            )
            for c in d["children"]:
                node.children[c["name"]] = conv(c)
            return node

        return cls(app_name=data["app"], root=conv(data["calltree"]))


class ProfileCollector:
    """Run listener that accumulates a call-tree profile."""

    def __init__(self, app_name: str):
        self._root = ProfileNode(name="main", kind="function")
        self._stack: list[ProfileNode] = [self._root]
        self._enter_times: list[float] = []
        self._app_name = app_name

    # -- RunListener interface ------------------------------------------
    def on_enter(self, region: Region, iteration: int, time_s: float) -> None:
        node = self._stack[-1].child(region.name, region.kind.value)
        self._stack.append(node)
        self._enter_times.append(time_s)

    def on_exit(
        self, region: Region, iteration: int, time_s: float, metrics: dict
    ) -> None:
        if len(self._stack) <= 1:
            raise InstrumentationError("profile exit without matching enter")
        node = self._stack.pop()
        if node.name != region.name:
            raise InstrumentationError(
                f"unbalanced profile events: exited {region.name!r} "
                f"but top of stack is {node.name!r}"
            )
        enter = self._enter_times.pop()
        node.visits += 1
        node.inclusive_time_s += time_s - enter

    # --------------------------------------------------------------------
    def profile(self) -> CallTreeProfile:
        if len(self._stack) != 1:
            raise InstrumentationError("profile still has open regions")
        return CallTreeProfile(app_name=self._app_name, root=self._root)
