"""Compiler instrumentation model.

``scorep`` compiler instrumentation inserts probes into *every* program
function; OpenMP constructs are instrumented through OPARI2 and MPI calls
through the PMPI wrapper library.  Compile-time filtering can remove
function probes entirely, but OPARI2/PMPI events remain — which is why
the paper's overhead analysis (Section V-E) notes that Score-P overhead
"is not completely removed due to instrumentation of OpenMP and MPI
routines".

:class:`Instrumentation` captures which regions currently carry probes;
it is consumed by the execution simulator for overhead accounting and by
the measurement listeners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InstrumentationError
from repro.workloads.application import Application
from repro.workloads.region import Region, RegionKind

#: Region kinds whose probes survive compile-time filtering.
UNFILTERABLE_KINDS = frozenset({RegionKind.OMP_PARALLEL, RegionKind.MPI, RegionKind.PHASE})


@dataclass
class Instrumentation:
    """Instrumentation state of one application build.

    Parameters
    ----------
    app:
        The application this build belongs to.
    filtered:
        Names of regions whose function probes were removed by
        compile-time filtering.
    """

    app: Application
    filtered: set[str] = field(default_factory=set)

    @classmethod
    def compiler_default(cls, app: Application) -> "Instrumentation":
        """Fresh ``scorep``-instrumented build: every region has probes."""
        return cls(app=app, filtered=set())

    def is_instrumented(self, region: Region) -> bool:
        """Whether this region currently fires enter/exit probes."""
        if region.kind in UNFILTERABLE_KINDS:
            return True
        return region.name not in self.filtered

    def apply_filter(self, region_names: set[str]) -> "Instrumentation":
        """Rebuild with the given function regions filtered out.

        Attempting to filter OpenMP/MPI/phase regions raises — their
        probes do not come from compiler instrumentation.
        """
        for name in region_names:
            region = self.app.main.find(name)
            if region.kind in UNFILTERABLE_KINDS:
                raise InstrumentationError(
                    f"cannot compile-time filter {region.kind.value} region "
                    f"{name!r}; only function instrumentation is removable"
                )
        return Instrumentation(app=self.app, filtered=self.filtered | region_names)

    @property
    def instrumented_regions(self) -> tuple[Region, ...]:
        return tuple(r for r in self.app.main.walk() if self.is_instrumented(r))
