"""Score-P metric-plugin interface.

Metric plugins contribute named values to the metric records written at
region exit.  The two plugins the paper uses are the PAPI plugin
(built-in Score-P support for performance metrics) and
``scorep_hdeem_plugin`` for energy.
"""

from __future__ import annotations

from typing import Protocol

from repro.workloads.region import Region


class MetricPlugin(Protocol):
    """One metric source attached to a trace collector."""

    def extract(self, region: Region, metrics: dict[str, float]) -> dict[str, float]:
        """Select/transform this plugin's values from the raw PMU reading.

        ``metrics`` is everything the measurement layer produced for the
        region instance; the plugin returns only the key/value pairs it
        owns (with its own namespace prefix).
        """
        ...
