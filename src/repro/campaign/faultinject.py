"""Deterministic fault injection for the campaign execution layer.

Chaos testing a multi-process engine is only useful when the faults are
*reproducible*: a test that kills "some worker at some point" proves
nothing when it goes green.  This module injects faults from a
declarative schedule keyed by **(stage, app, mode, job index, attempt
number)** — quantities that are identical across processes and across
re-runs — so a directive like "SIGKILL the worker running job 2 on its
first attempt" fires exactly once, every time, and the retry (attempt 1
no longer matches) deterministically succeeds.

The schedule is read from the ``REPRO_FAULT_INJECT`` environment
variable: either inline JSON or a path to a JSON file (worker processes
inherit the environment, so one setting drives the whole pool).  It is
a list of directives::

    [{"action": "crash", "app": "EP", "index": 2, "attempts": [0]},
     {"action": "hang",  "mode": "sweep", "hang_s": 3600},
     {"action": "raise", "error": "transient", "attempts": "all"},
     {"action": "delay", "delay_s": 0.2},
     {"action": "raise", "stage": "store", "index": 0}]

Directive fields (all matchers optional; an omitted matcher matches
everything):

``action``
    ``crash``  — SIGKILL the current process (the real worker-death
    signal: no cleanup, no exception, the parent sees a
    ``BrokenProcessPool``).
    ``hang``   — sleep ``hang_s`` (default 3600 s), far past any
    reasonable per-job timeout.
    ``raise``  — raise :class:`InjectedFault` (``error="deterministic"``,
    the default) or :class:`InjectedTransientFault`
    (``error="transient"``).
    ``delay``  — sleep ``delay_s`` then continue normally (slows jobs
    down so drain/interrupt tests can reliably catch a campaign
    mid-flight; not a failure).
``stage``
    Where the fault fires: ``execute`` (inside
    :func:`~repro.campaign.engine.execute_job`, the default) or
    ``store`` (just before a direct-writing worker persists its
    result).
``app`` / ``mode`` / ``index``
    Match the job's application name, campaign mode, and position in
    the engine's pending list.
``attempts``
    List of attempt numbers (0-based) the directive fires on, or
    ``"all"``.  Default ``[0]`` — fault the first attempt only, so the
    retry path is exercised end to end.

Production overhead is one environment lookup per job when the variable
is unset.
"""

from __future__ import annotations

import functools
import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import CampaignError

#: Environment variable holding the fault schedule (inline JSON or a
#: path to a JSON file).
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Fault stages directives may target.
STAGES: tuple[str, ...] = ("execute", "store")

#: Recognised directive actions.
ACTIONS: tuple[str, ...] = ("crash", "hang", "raise", "delay")


class InjectedFault(CampaignError):
    """A deterministic injected failure (classified as such: retrying
    cannot help, the job is quarantined/raised per policy)."""


class InjectedTransientFault(InjectedFault):
    """An injected failure classified as transient (the retry path)."""

    repro_transient = True


@dataclass(frozen=True)
class FaultDirective:
    """One parsed entry of the fault schedule."""

    action: str
    stage: str = "execute"
    app: str | None = None
    mode: str | None = None
    index: int | None = None
    #: ``None`` means "all attempts".
    attempts: tuple[int, ...] | None = (0,)
    error: str = "deterministic"
    hang_s: float = 3600.0
    delay_s: float = 0.0

    def matches(
        self,
        stage: str,
        app: str | None,
        mode: str | None,
        index: int | None,
        attempt: int,
    ) -> bool:
        if self.stage != stage:
            return False
        if self.app is not None and self.app != app:
            return False
        if self.mode is not None and self.mode != mode:
            return False
        if self.index is not None and self.index != index:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


def _parse_directive(raw: dict[str, Any]) -> FaultDirective:
    action = raw.get("action")
    if action not in ACTIONS:
        raise CampaignError(
            f"{FAULT_ENV}: unknown fault action {action!r}; known: {ACTIONS}"
        )
    stage = raw.get("stage", "execute")
    if stage not in STAGES:
        raise CampaignError(
            f"{FAULT_ENV}: unknown fault stage {stage!r}; known: {STAGES}"
        )
    attempts_raw = raw.get("attempts", [0])
    attempts = None if attempts_raw == "all" else tuple(int(a) for a in attempts_raw)
    return FaultDirective(
        action=action,
        stage=stage,
        app=raw.get("app"),
        mode=raw.get("mode"),
        index=raw.get("index"),
        attempts=attempts,
        error=raw.get("error", "deterministic"),
        hang_s=float(raw.get("hang_s", 3600.0)),
        delay_s=float(raw.get("delay_s", 0.0)),
    )


@functools.lru_cache(maxsize=8)
def _parse_schedule(spec: str) -> tuple[FaultDirective, ...]:
    """Parse (and cache per process) the schedule behind one env value."""
    text = spec
    if not spec.lstrip().startswith(("[", "{")):
        try:
            with open(spec, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise CampaignError(
                f"{FAULT_ENV} names an unreadable schedule file: {exc}"
            ) from None
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CampaignError(f"{FAULT_ENV} is not valid JSON: {exc}") from None
    if isinstance(raw, dict):
        raw = [raw]
    return tuple(_parse_directive(entry) for entry in raw)


def active_schedule() -> tuple[FaultDirective, ...]:
    """The directives currently in force (empty when the env is unset)."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return ()
    return _parse_schedule(spec)


def maybe_fault(
    stage: str,
    *,
    app: str | None = None,
    mode: str | None = None,
    index: int | None = None,
    attempt: int = 0,
) -> None:
    """Fire the first matching directive of the active schedule, if any.

    Called from the campaign engine's execution hot points; a no-op
    (one env lookup) when ``REPRO_FAULT_INJECT`` is unset.
    """
    for directive in active_schedule():
        if directive.matches(stage, app, mode, index, attempt):
            _apply(directive, stage=stage, app=app, index=index, attempt=attempt)
            return


def _apply(
    directive: FaultDirective,
    *,
    stage: str,
    app: str | None,
    index: int | None,
    attempt: int,
) -> None:
    where = f"{stage}:{app or '*'}:job{index if index is not None else '*'}"
    if directive.action == "delay":
        time.sleep(directive.delay_s)
        return
    if directive.action == "hang":
        time.sleep(directive.hang_s)
        return
    if directive.action == "crash":
        # The real thing: no atexit, no finally blocks, no exception —
        # exactly what an OOM kill or a segfaulting worker looks like.
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover — unreachable
    message = (
        f"injected {directive.error} fault at {where} (attempt {attempt})"
    )
    if directive.error == "transient":
        raise InjectedTransientFault(message)
    raise InjectedFault(message)
