"""Pluggable storage backends for the campaign result store.

The :class:`~repro.campaign.store.ResultStore` front end owns the
*semantics* of the cache — content-addressed keys, schema-version
checking, put-heals-stale, last-wins — while a backend owns the *bytes*.
Three on-disk layouts (plus an in-memory one) implement the same record
contract:

``jsonl``
    The compatibility tier: one append-only JSON-lines file, eagerly
    loaded whole into memory on open.  Cheap for thousands of records,
    linear cold-open cost for millions.
``sqlite``
    A single SQLite database in WAL mode with a ``(key, store_version)``
    primary key.  Opens in constant time, answers ``get`` through the
    index, and takes concurrent multi-process writers (healing is a
    single upsert+delete transaction per put).
``segment``
    A directory of N append-only segment files, records bucketed by key
    prefix, each segment carrying a sidecar offset index
    (``seg-K.idx.json``).  Segments load lazily — a ``get`` touches one
    sidecar and one line of one file — and sidecars are advisory: a
    missing, garbled or out-of-date sidecar is healed by rescanning the
    segment, so crashed writers never lose committed lines.

Every backend stores whole *records* — ``{"key", "store_version",
"job", "result"}`` dicts, serialised as sorted-key JSON — and exposes
the effective (last-wins) record per key, including records written
under another schema version (the front end decides whether those are
servable).  Damaged bytes load as misses, never as crashes;
:meth:`verify` reports exactly what is damaged.

Backend selection is automatic from the store path (see
:func:`detect_backend_kind`): ``*.jsonl`` → jsonl, ``*.sqlite``/``*.db``
→ sqlite, a directory or suffix-less path → segment.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import zlib
from pathlib import Path
from typing import Any, Iterator, Protocol

from repro.errors import CampaignError

#: Bump on any change to simulator physics or payload layout.
#: v2: records carry ``store_version``; the store also holds trained-model
#: parameter payloads (``mode: "train-model"``) next to simulation results.
STORE_VERSION = 2

#: Backend names accepted by :func:`open_backend` and the CLI.
BACKEND_KINDS: tuple[str, ...] = ("jsonl", "sqlite", "segment")

_SQLITE_MAGIC = b"SQLite format 3\x00"
_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}
_JSONL_SUFFIXES = {".jsonl", ".json", ".ndjson"}

#: Segment-backend layout: bucket count, file naming, manifest.
DEFAULT_SEGMENTS = 16
MANIFEST_NAME = "segment-store.json"
MANIFEST_FORMAT = "repro-segment-store"
_SEGMENT_FILE_RE = re.compile(r"^seg-(\d+)\.jsonl$")
_SEGMENT_SIDECAR_RE = re.compile(r"^seg-(\d+)\.idx\.json$")


def _tail_missing_newline(path: Path) -> bool:
    """Whether ``path`` ends mid-line (a torn tail after a crash)."""
    try:
        with path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"
    except OSError:  # missing or empty file: nothing to separate from
        return False


def record_is_wellformed(record: Any) -> bool:
    """Whether a parsed line/row has the minimal record shape."""
    return (
        isinstance(record, dict)
        and isinstance(record.get("key"), str)
        and isinstance(record.get("result"), dict)
    )


def encode_record(record: dict[str, Any]) -> str:
    """Canonical serialisation shared by every backend (sorted-key JSON,
    floats via shortest-repr — payloads round-trip bit-identically)."""
    return json.dumps(record, sort_keys=True)


class StoreBackend(Protocol):
    """The byte-level contract behind :class:`ResultStore`.

    ``get_record`` returns the *effective* record for a key — the
    last-wins survivor, whatever its schema version — or ``None``.
    ``put_record`` makes its argument the effective record for its key
    (healing any other-version record).  ``iter_records`` streams every
    effective record; ``stale_count`` counts keys whose effective record
    carries another schema version.  ``flush`` persists any index state,
    ``release`` additionally drops open handles (safe before forking),
    ``refresh`` picks up records appended by other processes.
    """

    kind: str
    supports_concurrent_writers: bool
    path: Path | None

    def get_record(self, key: str) -> dict[str, Any] | None: ...
    def put_record(self, record: dict[str, Any]) -> None: ...
    def put_records(self, records: list[dict[str, Any]]) -> None: ...
    def iter_records(self) -> Iterator[dict[str, Any]]: ...
    def contains(self, key: str) -> bool: ...
    def count(self) -> int: ...
    def stale_count(self) -> int: ...
    def verify(self) -> list[dict[str, Any]]: ...
    def compact(self) -> dict[str, int]: ...
    def flush(self) -> None: ...
    def release(self) -> None: ...
    def refresh(self) -> None: ...
    def close(self) -> None: ...


# ---------------------------------------------------------------------------
# In-memory backend (path=None)
# ---------------------------------------------------------------------------

class MemoryBackend:
    """Dict-backed store for ``ResultStore(None)`` and tests."""

    kind = "memory"
    supports_concurrent_writers = False
    path: Path | None = None

    def __init__(self) -> None:
        self._records: dict[str, dict[str, Any]] = {}

    def get_record(self, key: str) -> dict[str, Any] | None:
        return self._records.get(key)

    def put_record(self, record: dict[str, Any]) -> None:
        self._records[record["key"]] = record

    def put_records(self, records: list[dict[str, Any]]) -> None:
        for record in records:
            self.put_record(record)

    def iter_records(self) -> Iterator[dict[str, Any]]:
        yield from list(self._records.values())

    def contains(self, key: str) -> bool:
        return key in self._records

    def count(self) -> int:
        return len(self._records)

    def stale_count(self) -> int:
        return sum(
            1
            for r in self._records.values()
            if r.get("store_version") != STORE_VERSION
        )

    def verify(self) -> list[dict[str, Any]]:
        return []

    def compact(self) -> dict[str, int]:
        before = len(self._records)
        self._records = {
            k: r
            for k, r in self._records.items()
            if r.get("store_version") == STORE_VERSION
        }
        return {"kept": len(self._records), "dropped": before - len(self._records)}

    def flush(self) -> None:
        pass

    def release(self) -> None:
        pass

    def refresh(self) -> None:
        pass

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# JSON-lines backend (the compatibility tier)
# ---------------------------------------------------------------------------

class JsonlBackend:
    """Append-only JSON lines, eagerly loaded whole into memory.

    Unparseable lines (e.g. a truncated tail after a crash) are skipped
    on load; the next ``put`` of that key simply rewrites the record.
    Writes open/append/close per call, so no file handle outlives the
    write — interpreter-exit paths cannot leak one.
    """

    kind = "jsonl"
    supports_concurrent_writers = False

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._records: dict[str, dict[str, Any]] = {}
        self._loaded_bytes = 0
        if self.path.exists():
            self._scan()

    # -- loading -------------------------------------------------------
    def _scan(self) -> None:
        """Parse records from ``_loaded_bytes`` to EOF (last-wins)."""
        with self.path.open("rb") as fh:
            fh.seek(self._loaded_bytes)
            data = fh.read()
        self._loaded_bytes += len(data)
        for raw in data.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue  # truncated/corrupt line: treat as a miss
            if record_is_wellformed(record):
                self._records[record["key"]] = record

    # -- record contract -----------------------------------------------
    def get_record(self, key: str) -> dict[str, Any] | None:
        return self._records.get(key)

    def put_record(self, record: dict[str, Any]) -> None:
        self._records[record["key"]] = record
        self._write_lines([encode_record(record)])

    def put_records(self, records: list[dict[str, Any]]) -> None:
        lines = []
        for record in records:
            self._records[record["key"]] = record
            lines.append(encode_record(record))
        self._write_lines(lines)

    def _write_lines(self, lines: list[str]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(line + "\n" for line in lines).encode("utf-8")
        if _tail_missing_newline(self.path):
            # A torn tail (crash mid-append) has no trailing newline;
            # appending directly would glue the new record onto the
            # half-line and lose both.
            payload = b"\n" + payload
        with self.path.open("ab") as fh:
            fh.write(payload)
        self._loaded_bytes += len(payload)

    def iter_records(self) -> Iterator[dict[str, Any]]:
        yield from list(self._records.values())

    def contains(self, key: str) -> bool:
        return key in self._records

    def count(self) -> int:
        return len(self._records)

    def stale_count(self) -> int:
        return sum(
            1
            for r in self._records.values()
            if r.get("store_version") != STORE_VERSION
        )

    # -- maintenance ---------------------------------------------------
    def verify(self) -> list[dict[str, Any]]:
        issues: list[dict[str, Any]] = []
        if not self.path.exists():
            return issues
        with self.path.open("rb") as fh:
            for number, raw in enumerate(fh, start=1):
                stripped = raw.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except ValueError:
                    issues.append(
                        {
                            "file": str(self.path),
                            "where": f"line {number}",
                            "problem": "unparseable JSON (truncated or corrupt)",
                        }
                    )
                    continue
                if not record_is_wellformed(record):
                    issues.append(
                        {
                            "file": str(self.path),
                            "where": f"line {number}",
                            "problem": "not a store record (missing key/result)",
                        }
                    )
        return issues

    def compact(self) -> dict[str, int]:
        """Rewrite the file keeping one current-version line per key."""
        kept = {
            k: r
            for k, r in self._records.items()
            if r.get("store_version") == STORE_VERSION
        }
        dropped = self._physical_lines() - len(kept)
        tmp = self.path.with_name(self.path.name + ".compact-tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as fh:
            for record in kept.values():
                fh.write(encode_record(record) + "\n")
        os.replace(tmp, self.path)
        self._records = kept
        self._loaded_bytes = self.path.stat().st_size
        return {"kept": len(kept), "dropped": max(0, dropped)}

    def _physical_lines(self) -> int:
        if not self.path.exists():
            return 0
        with self.path.open("rb") as fh:
            return sum(1 for raw in fh if raw.strip())

    def flush(self) -> None:
        pass

    def release(self) -> None:
        pass

    def refresh(self) -> None:
        if not self.path.exists():
            return
        size = self.path.stat().st_size
        if size < self._loaded_bytes:  # rewritten (e.g. compacted) underneath
            self._records = {}
            self._loaded_bytes = 0
        if size != self._loaded_bytes:
            self._scan()

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# SQLite backend (WAL mode, concurrent multi-process writers)
# ---------------------------------------------------------------------------

class SqliteBackend:
    """One SQLite database, ``(key, store_version)`` primary key.

    WAL journalling plus a long busy timeout lets many processes write
    one store concurrently; healing a stale-version record is a single
    upsert+delete transaction, so readers never observe a key without
    an effective record.  A corrupt database (torn WAL, truncated file)
    degrades to an empty store — every lookup is a miss — and
    :meth:`verify` reports the damage; only writes raise.
    """

    kind = "sqlite"
    supports_concurrent_writers = True

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS records ("
        " key TEXT NOT NULL,"
        " store_version INTEGER,"
        " record TEXT NOT NULL,"
        " PRIMARY KEY (key, store_version))"
    )

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._connection: sqlite3.Connection | None = None
        self._damage: str | None = None

    # -- connection management -----------------------------------------
    def _connect(self) -> sqlite3.Connection | None:
        if self._connection is not None:
            return self._connection
        if self._damage is not None:
            return None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # The serving layer reads on its event-loop thread and
            # writes on its executor thread through one store handle;
            # CPython's sqlite3 is built serialized (threadsafety 3),
            # so cross-thread use of a connection is safe — SQLite's
            # own mutex interleaves the calls.
            conn = sqlite3.connect(
                str(self.path), timeout=30.0, check_same_thread=False
            )
            conn.isolation_level = None  # explicit transactions below
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute(self._SCHEMA)
        except sqlite3.Error as exc:
            self._damage = str(exc)
            return None
        self._connection = conn
        return conn

    def _note_damage(self, exc: sqlite3.Error) -> None:
        self._damage = str(exc)

    # -- record contract -----------------------------------------------
    def get_record(self, key: str) -> dict[str, Any] | None:
        conn = self._connect()
        if conn is None:
            return None
        try:
            row = conn.execute(
                "SELECT record FROM records WHERE key=? AND store_version=?",
                (key, STORE_VERSION),
            ).fetchone()
            if row is None:
                row = conn.execute(
                    "SELECT record FROM records WHERE key=?"
                    " ORDER BY rowid DESC LIMIT 1",
                    (key,),
                ).fetchone()
        except sqlite3.Error as exc:
            self._note_damage(exc)
            return None
        if row is None:
            return None
        try:
            record = json.loads(row[0])
        except ValueError:
            return None  # damaged row: a miss, never a crash
        return record if record_is_wellformed(record) else None

    def put_record(self, record: dict[str, Any]) -> None:
        self.put_records([record])

    def put_records(self, records: list[dict[str, Any]]) -> None:
        conn = self._connect()
        if conn is None:
            raise CampaignError(
                f"cannot write to sqlite store {self.path}: {self._damage}"
            )
        rows = [
            (r["key"], r.get("store_version"), encode_record(r)) for r in records
        ]
        heals = [(r["key"], r.get("store_version")) for r in records]
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.executemany(
                "INSERT INTO records (key, store_version, record)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT (key, store_version)"
                " DO UPDATE SET record=excluded.record",
                rows,
            )
            # Healing: the new record supersedes any record of the same
            # key written under another schema version.
            conn.executemany(
                "DELETE FROM records WHERE key=? AND store_version IS NOT ?",
                heals,
            )
            conn.execute("COMMIT")
        except sqlite3.Error as exc:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise CampaignError(
                f"sqlite store write failed ({self.path}): {exc}"
            ) from None

    def iter_records(self) -> Iterator[dict[str, Any]]:
        conn = self._connect()
        if conn is None:
            return
        try:
            cursor = conn.execute(
                "SELECT record FROM records r WHERE rowid = ("
                " SELECT rowid FROM records i WHERE i.key = r.key"
                " ORDER BY (i.store_version = ?) DESC, i.rowid DESC LIMIT 1)",
                (STORE_VERSION,),
            )
            rows = cursor.fetchall()
        except sqlite3.Error as exc:
            self._note_damage(exc)
            return
        for (line,) in rows:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record_is_wellformed(record):
                yield record

    def contains(self, key: str) -> bool:
        conn = self._connect()
        if conn is None:
            return False
        try:
            row = conn.execute(
                "SELECT 1 FROM records WHERE key=? LIMIT 1", (key,)
            ).fetchone()
        except sqlite3.Error as exc:
            self._note_damage(exc)
            return False
        return row is not None

    def count(self) -> int:
        conn = self._connect()
        if conn is None:
            return 0
        try:
            return conn.execute(
                "SELECT COUNT(DISTINCT key) FROM records"
            ).fetchone()[0]
        except sqlite3.Error as exc:
            self._note_damage(exc)
            return 0

    def stale_count(self) -> int:
        conn = self._connect()
        if conn is None:
            return 0
        try:
            return conn.execute(
                "SELECT COUNT(*) FROM (SELECT 1 FROM records GROUP BY key"
                " HAVING COALESCE(SUM(store_version = ?), 0) = 0)",
                (STORE_VERSION,),
            ).fetchone()[0]
        except sqlite3.Error as exc:
            self._note_damage(exc)
            return 0

    # -- maintenance ---------------------------------------------------
    def verify(self) -> list[dict[str, Any]]:
        issues: list[dict[str, Any]] = []
        conn = self._connect()
        if conn is None:
            return [
                {
                    "file": str(self.path),
                    "where": "database",
                    "problem": f"unreadable database: {self._damage}",
                }
            ]
        try:
            for (message,) in conn.execute("PRAGMA integrity_check"):
                if message != "ok":
                    issues.append(
                        {
                            "file": str(self.path),
                            "where": "database",
                            "problem": f"integrity check: {message}",
                        }
                    )
            rows = conn.execute(
                "SELECT key, record FROM records"
            ).fetchall()
        except sqlite3.Error as exc:
            self._note_damage(exc)
            issues.append(
                {
                    "file": str(self.path),
                    "where": "database",
                    "problem": f"unreadable records table: {exc}",
                }
            )
            return issues
        for key, line in rows:
            try:
                record = json.loads(line)
            except ValueError:
                issues.append(
                    {
                        "file": str(self.path),
                        "where": f"key {key}",
                        "problem": "unparseable record JSON",
                    }
                )
                continue
            if not record_is_wellformed(record) or record.get("key") != key:
                issues.append(
                    {
                        "file": str(self.path),
                        "where": f"key {key}",
                        "problem": "record does not match its row key",
                    }
                )
        return issues

    def compact(self) -> dict[str, int]:
        conn = self._connect()
        if conn is None:
            raise CampaignError(
                f"cannot compact sqlite store {self.path}: {self._damage}"
            )
        try:
            conn.execute("BEGIN IMMEDIATE")
            before = conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]
            conn.execute(
                "DELETE FROM records WHERE store_version IS NOT ?",
                (STORE_VERSION,),
            )
            kept = conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]
            conn.execute("COMMIT")
            conn.execute("VACUUM")
        except sqlite3.Error as exc:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise CampaignError(
                f"sqlite store compaction failed ({self.path}): {exc}"
            ) from None
        return {"kept": kept, "dropped": before - kept}

    def flush(self) -> None:
        pass

    def release(self) -> None:
        """Close the connection (required before forking worker pools:
        a forked copy of a live connection shares POSIX locks)."""
        self.close()

    def refresh(self) -> None:
        pass  # every query reads the database directly

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None


# ---------------------------------------------------------------------------
# Sharded segment backend (key-prefix buckets + sidecar offset indexes)
# ---------------------------------------------------------------------------

class _Segment:
    """In-memory index of one segment file.

    ``entries`` maps key → (byte offset of the effective line, schema
    version); ``indexed_size`` is the byte prefix of the file the
    entries provably cover (everything beyond it gets tail-scanned).
    """

    __slots__ = ("entries", "indexed_size", "dirty")

    def __init__(self) -> None:
        self.entries: dict[str, tuple[int, Any]] = {}
        self.indexed_size = 0
        self.dirty = False


class SegmentBackend:
    """Records sharded by key prefix into N append-only segment files.

    A lookup loads one segment's sidecar index (lazily, on first touch
    of that bucket) and reads one line at its recorded offset — cold
    opens never scan the whole store.  Sidecars are advisory: each
    records the byte prefix of its segment it covers, so lines appended
    after the last sidecar write (crashed or concurrent writers) are
    recovered by scanning only the tail.  A garbled or missing sidecar
    triggers a full rescan of that segment — committed lines are never
    lost.  Offsets are validated on read (the stored line must carry
    the requested key) and heal through a rescan, which makes
    concurrent multi-process appends safe.
    """

    kind = "segment"
    supports_concurrent_writers = True

    def __init__(self, path: str | Path, *, segments: int = DEFAULT_SEGMENTS):
        self.path = Path(path)
        self._segments: dict[int, _Segment] = {}
        self.segments = self._resolve_segment_count(segments)

    # -- layout --------------------------------------------------------
    def _resolve_segment_count(self, default: int) -> int:
        """The bucket modulus, recovered in order of trustworthiness.

        The manifest is authoritative; every index sidecar carries a
        redundant copy (so a garbled manifest costs nothing as long as
        one sidecar survives); failing both, the count is inferred from
        the segment file names — an under-estimate when high buckets
        happen to be empty, in which case lookups in the mis-mapped
        buckets degrade to misses and ``verify`` flags the manifest.
        """
        manifest = self.path / MANIFEST_NAME
        try:
            data = json.loads(manifest.read_text())
            count = int(data["segments"])
            if count > 0:
                return count
        except (OSError, ValueError, KeyError, TypeError):
            pass
        if self.path.is_dir():
            for entry in sorted(os.listdir(self.path)):
                if not _SEGMENT_SIDECAR_RE.match(entry):
                    continue
                try:
                    count = int(json.loads((self.path / entry).read_text())["segments"])
                    if count > 0:
                        return count
                except (OSError, ValueError, KeyError, TypeError):
                    continue
            found = [
                int(m.group(1))
                for entry in os.listdir(self.path)
                if (m := _SEGMENT_FILE_RE.match(entry))
            ]
            if found:
                return max(found) + 1
        return default

    def _ensure_layout(self) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        manifest = self.path / MANIFEST_NAME
        if not manifest.exists():
            _atomic_write(
                manifest,
                json.dumps(
                    {"format": MANIFEST_FORMAT, "segments": self.segments}
                )
                + "\n",
            )

    def _bucket(self, key: str) -> int:
        try:
            return int(key[:8], 16) % self.segments
        except ValueError:  # non-hex key (foreign data): still deterministic
            return zlib.crc32(key.encode("utf-8")) % self.segments

    def _file(self, index: int) -> Path:
        return self.path / f"seg-{index}.jsonl"

    def _sidecar(self, index: int) -> Path:
        return self.path / f"seg-{index}.idx.json"

    # -- segment loading -----------------------------------------------
    def _segment(self, index: int) -> _Segment:
        segment = self._segments.get(index)
        if segment is None:
            segment = self._load_segment(index)
            self._segments[index] = segment
        return segment

    def _load_segment(self, index: int) -> _Segment:
        segment = _Segment()
        file = self._file(index)
        if not file.exists():
            return segment
        size = file.stat().st_size
        start = 0
        try:
            data = json.loads(self._sidecar(index).read_text())
            entries = data["entries"]
            indexed = int(data["size"])
            if isinstance(entries, dict) and 0 <= indexed <= size:
                segment.entries = {
                    key: (int(value[0]), value[1])
                    for key, value in entries.items()
                }
                start = indexed
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            pass  # missing/garbled sidecar: rescan the whole segment
        self._scan_segment(file, segment, start)
        return segment

    def _scan_segment(
        self, file: Path, segment: _Segment, start: int, end: int | None = None
    ) -> None:
        """Index lines in ``[start, end)`` (to EOF when ``end`` is None)."""
        with file.open("rb") as fh:
            fh.seek(start)
            offset = start
            for raw in fh:
                if end is not None and offset >= end:
                    break
                line_offset = offset
                offset += len(raw)
                stripped = raw.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except ValueError:
                    continue  # torn line: a miss, healed by the next put
                if record_is_wellformed(record):
                    segment.entries[record["key"]] = (
                        line_offset,
                        record.get("store_version"),
                    )
        segment.indexed_size = max(segment.indexed_size, offset)
        segment.dirty = True

    def _reload(self, index: int) -> _Segment:
        self._segments.pop(index, None)
        segment = _Segment()
        file = self._file(index)
        if file.exists():
            self._scan_segment(file, segment, 0)
        self._segments[index] = segment
        return segment

    # -- record contract -----------------------------------------------
    def get_record(self, key: str) -> dict[str, Any] | None:
        index = self._bucket(key)
        segment = self._segment(index)
        record = self._get_from(segment, index, key)
        if record is not None:
            return record
        if key in segment.entries:
            # The offset lied (concurrent writer or external compaction
            # moved the line): rebuild this segment's index and retry.
            segment = self._reload(index)
            return self._get_from(segment, index, key)
        return None

    def _get_from(
        self, segment: _Segment, index: int, key: str
    ) -> dict[str, Any] | None:
        entry = segment.entries.get(key)
        if entry is None:
            return None
        record = self._read_line(self._file(index), entry[0])
        if record is not None and record.get("key") == key:
            return record
        return None

    @staticmethod
    def _read_line(file: Path, offset: int) -> dict[str, Any] | None:
        try:
            with file.open("rb") as fh:
                fh.seek(offset)
                raw = fh.readline()
            record = json.loads(raw)
        except (OSError, ValueError):
            return None
        return record if record_is_wellformed(record) else None

    def put_record(self, record: dict[str, Any]) -> None:
        self._ensure_layout()
        self._append(self._bucket(record["key"]), [record])

    def put_records(self, records: list[dict[str, Any]]) -> None:
        self._ensure_layout()
        by_bucket: dict[int, list[dict[str, Any]]] = {}
        for record in records:
            by_bucket.setdefault(self._bucket(record["key"]), []).append(record)
        for index, bucket_records in by_bucket.items():
            self._append(index, bucket_records)

    def _append(self, index: int, records: list[dict[str, Any]]) -> None:
        segment = self._segment(index)
        file = self._file(index)
        encoded = [
            (encode_record(record) + "\n").encode("utf-8") for record in records
        ]
        payload = b"".join(encoded)
        needs_separator = _tail_missing_newline(file)
        if needs_separator:
            # Torn tail after a crash: separate instead of gluing the
            # first new record onto the half-line.  (Live writers only
            # ever append whole newline-terminated lines, so this
            # cannot race with them into a double newline that matters
            # — blank lines are skipped by every scan.)
            payload = b"\n" + payload
        with file.open("ab") as fh:
            offset = fh.tell()
            fh.write(payload)
        if file.stat().st_size != offset + len(payload):
            # A concurrent appender slipped in between our tell() and
            # write(): the computed offsets are unreliable, so rebuild
            # this segment's index from scratch (scans from byte 0 walk
            # true line boundaries — O_APPEND writes are whole lines).
            self._reload(index)
            return
        if offset > segment.indexed_size:
            # Another process appended before our open: index that gap
            # first, so the sidecar's coverage claim stays truthful.
            self._scan_segment(file, segment, segment.indexed_size, offset)
        if needs_separator:
            offset += 1  # records start after the separating newline
        for record, line in zip(records, encoded):
            segment.entries[record["key"]] = (
                offset,
                record.get("store_version"),
            )
            offset += len(line)
        segment.indexed_size = max(segment.indexed_size, offset)
        segment.dirty = True

    def iter_records(self) -> Iterator[dict[str, Any]]:
        # Full sequential scan with last-wins, independent of the
        # (possibly stale) in-memory indexes: iteration is an admin
        # operation and must see exactly the effective records.
        for index in range(self.segments):
            file = self._file(index)
            if not file.exists():
                continue
            effective: dict[str, dict[str, Any]] = {}
            with file.open("rb") as fh:
                for raw in fh:
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    try:
                        record = json.loads(stripped)
                    except ValueError:
                        continue
                    if record_is_wellformed(record):
                        effective[record["key"]] = record
            yield from effective.values()

    def contains(self, key: str) -> bool:
        return key in self._segment(self._bucket(key)).entries

    def count(self) -> int:
        return sum(
            len(self._segment(index).entries) for index in range(self.segments)
        )

    def stale_count(self) -> int:
        return sum(
            1
            for index in range(self.segments)
            for (_, version) in self._segment(index).entries.values()
            if version != STORE_VERSION
        )

    # -- maintenance ---------------------------------------------------
    def verify(self) -> list[dict[str, Any]]:
        issues: list[dict[str, Any]] = []
        manifest = self.path / MANIFEST_NAME
        if manifest.exists():
            try:
                data = json.loads(manifest.read_text())
                if int(data["segments"]) <= 0:
                    raise ValueError("non-positive segment count")
            except (OSError, ValueError, KeyError, TypeError):
                issues.append(
                    {
                        "file": str(manifest),
                        "where": "manifest",
                        "problem": "garbled manifest (segment count inferred "
                        "from the files)",
                    }
                )
        for index in range(self.segments):
            file = self._file(index)
            if not file.exists():
                continue
            with file.open("rb") as fh:
                for number, raw in enumerate(fh, start=1):
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    try:
                        record = json.loads(stripped)
                    except ValueError:
                        issues.append(
                            {
                                "file": str(file),
                                "where": f"line {number}",
                                "problem": "unparseable JSON "
                                "(truncated or corrupt)",
                            }
                        )
                        continue
                    if not record_is_wellformed(record):
                        issues.append(
                            {
                                "file": str(file),
                                "where": f"line {number}",
                                "problem": "not a store record "
                                "(missing key/result)",
                            }
                        )
            sidecar = self._sidecar(index)
            if sidecar.exists():
                try:
                    data = json.loads(sidecar.read_text())
                    if not isinstance(data["entries"], dict):
                        raise TypeError("entries is not a mapping")
                    if int(data["size"]) > file.stat().st_size:
                        issues.append(
                            {
                                "file": str(sidecar),
                                "where": "index",
                                "problem": "index claims more bytes than the "
                                "segment holds (segment truncated; index "
                                "rebuilt by rescan)",
                            }
                        )
                except (OSError, ValueError, KeyError, TypeError):
                    issues.append(
                        {
                            "file": str(sidecar),
                            "where": "index",
                            "problem": "garbled index sidecar "
                            "(rebuilt by rescan)",
                        }
                    )
        return issues

    def compact(self) -> dict[str, int]:
        """Rewrite every segment keeping one current-version line per
        key, dropping superseded and other-schema-version lines, and
        rebuild the sidecar indexes."""
        kept_total = 0
        dropped_total = 0
        self._ensure_layout()
        for index in range(self.segments):
            file = self._file(index)
            if not file.exists():
                continue
            effective: dict[str, dict[str, Any]] = {}
            lines = 0
            with file.open("rb") as fh:
                for raw in fh:
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    lines += 1
                    try:
                        record = json.loads(stripped)
                    except ValueError:
                        continue
                    if record_is_wellformed(record):
                        effective[record["key"]] = record
            segment = _Segment()
            tmp = file.with_name(file.name + ".compact-tmp")
            offset = 0
            with tmp.open("wb") as fh:
                for key, record in effective.items():
                    if record.get("store_version") != STORE_VERSION:
                        continue
                    line = (encode_record(record) + "\n").encode("utf-8")
                    fh.write(line)
                    segment.entries[key] = (offset, STORE_VERSION)
                    offset += len(line)
            os.replace(tmp, file)
            segment.indexed_size = offset
            segment.dirty = True
            self._segments[index] = segment
            kept_total += len(segment.entries)
            dropped_total += lines - len(segment.entries)
        self.flush()
        return {"kept": kept_total, "dropped": dropped_total}

    def flush(self) -> None:
        """Persist dirty sidecar indexes (atomically, via rename).

        Before writing, any bytes another process appended since our
        last look are tail-scanned in, so a sidecar never claims to
        cover lines it has not indexed.
        """
        for index, segment in self._segments.items():
            if not segment.dirty:
                continue
            file = self._file(index)
            if not file.exists():
                continue
            size = file.stat().st_size
            if size > segment.indexed_size:
                self._scan_segment(file, segment, segment.indexed_size)
            _atomic_write(
                self._sidecar(index),
                json.dumps(
                    {
                        "format": MANIFEST_FORMAT,
                        "segments": self.segments,
                        "size": segment.indexed_size,
                        "entries": {
                            key: [offset, version]
                            for key, (offset, version) in segment.entries.items()
                        },
                    }
                ),
            )
            segment.dirty = False

    def release(self) -> None:
        self.flush()
        self._segments.clear()

    def refresh(self) -> None:
        """Drop cached indexes so appends by other processes are seen."""
        self.flush()
        self._segments.clear()

    def close(self) -> None:
        self.flush()
        self._segments.clear()


def _atomic_write(path: Path, text: str) -> None:
    # pid-unique scratch name: concurrent processes rewriting the same
    # sidecar must not race each other's rename source away.
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Detection and construction
# ---------------------------------------------------------------------------

def detect_backend_kind(path: str | Path | None) -> str:
    """Infer the backend from a store path.

    ``*.jsonl``/``*.json``/``*.ndjson`` → jsonl; ``*.sqlite``/
    ``*.sqlite3``/``*.db`` → sqlite; an existing directory or a
    suffix-less path → segment.  An existing file with an unknown
    suffix is sniffed by magic bytes (SQLite else JSONL).
    """
    if path is None:
        return "memory"
    p = Path(path)
    if p.is_dir():
        return "segment"
    suffix = p.suffix.lower()
    if suffix in _SQLITE_SUFFIXES:
        return "sqlite"
    if suffix in _JSONL_SUFFIXES:
        return "jsonl"
    if p.exists():
        try:
            with p.open("rb") as fh:
                head = fh.read(len(_SQLITE_MAGIC))
        except OSError:
            head = b""
        return "sqlite" if head == _SQLITE_MAGIC else "jsonl"
    if suffix == "":
        return "segment"
    return "jsonl"


def open_backend(
    path: str | Path | None, backend: str | None = None
) -> StoreBackend:
    """Construct the backend for ``path`` (auto-detected unless named)."""
    if path is None:
        return MemoryBackend()
    kind = backend if backend is not None else detect_backend_kind(path)
    if kind == "jsonl":
        return JsonlBackend(path)
    if kind == "sqlite":
        return SqliteBackend(path)
    if kind == "segment":
        return SegmentBackend(path)
    raise CampaignError(
        f"unknown store backend: {kind!r}; known: {BACKEND_KINDS}"
    )
