"""Campaign execution: serial or across a process worker pool.

:func:`execute_job` is a top-level function (picklable) that rebuilds
the job's node and application from seeds and the registry, runs the
simulator, and returns a small JSON-able payload.  Because every noise
stream is keyed through :func:`repro.util.rng.rng_for` by
(seed, node, run key, region, iteration) — never by process or call
order — the payload is bit-identical whether the job runs serially, in
a worker process, or in a different session entirely.  That property is
what makes the content-addressed :class:`~repro.campaign.store.ResultStore`
sound.  Jobs execute through the simulator's vectorized replay fast
path (:mod:`repro.execution.replay`) — itself bit-identical to the
recursive engine — so stores written before and after the fast path
agree.

Payload layout by mode:

``counters``
    ``{"totals": {papi_name: total}, "phase_time_s": s}`` — summed over
    the phase region's instances of one run.
``sweep`` / ``static``
    ``{"node_energy_j": J, "cpu_energy_j": J, "time_s": s}``.
``grid``
    The same three quantities as parallel lists over the row's UCF axis
    (plus ``"uncore_freqs_ghz"`` itself), measured in one pass through
    the sweep-replay engine (:mod:`repro.execution.sweep_replay`) —
    per cell bit-identical to the equivalent ``static`` job.
``savings``
    The energy triple plus ``switching_time_s`` and
    ``instrumentation_time_s`` — the controlled production runs of the
    Table VI comparison.  Controller-driven jobs execute through the
    simulator's controlled-replay fast path, bit-identical to the
    recursive engine, so cached savings results agree across engines.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.campaign.faultinject import maybe_fault
from repro.campaign.plan import (
    DEFAULT_FLEET_SHARD_SIZE,
    FLEET_MODES,
    FLEET_SCHEDULES,
    CampaignJob,
    CampaignPlan,
    FleetShard,
    fleet_jobs,
)
from repro.campaign.resilience import (
    ON_FAILURE_POLICIES,
    DrainFlag,
    FailureRecord,
    PoolOutcome,
    ResumeManifest,
    RetryPolicy,
    failure_descriptor,
    graceful_drain,
    run_resilient_pool,
    run_resilient_serial,
)
from repro.campaign.store import ResultStore, job_key
from repro.errors import (
    CampaignError,
    CampaignExecutionError,
    CampaignInterrupted,
    WorkloadError,
)
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.cluster import Cluster
from repro.hardware.node import ComputeNode
from repro.hardware.topology import NodeTopology
from repro.workloads import registry
from repro.workloads.application import Application

#: Environment override for the default pool width.
WORKERS_ENV = "REPRO_CAMPAIGN_WORKERS"

#: Never spin up more than this many workers by default.
MAX_DEFAULT_WORKERS = 8

#: With auto-sized pools, require at least this many pending jobs per
#: worker before parallelising (a 3-job plan is cheaper run serially
#: than forking a pool for it).
MIN_JOBS_PER_WORKER = 8

#: Payload keys every result of a mode must carry; a cached payload
#: missing one was produced by an incompatible (older) result schema.
REQUIRED_PAYLOAD_KEYS: dict[str, tuple[str, ...]] = {
    "counters": ("totals", "phase_time_s"),
    "sweep": ("node_energy_j", "cpu_energy_j", "time_s"),
    "static": ("node_energy_j", "cpu_energy_j", "time_s"),
    "savings": (
        "node_energy_j",
        "cpu_energy_j",
        "time_s",
        "switching_time_s",
        "instrumentation_time_s",
    ),
    "grid": ("uncore_freqs_ghz", "node_energy_j", "cpu_energy_j", "time_s"),
}


def validate_payload(
    job: CampaignJob, payload: dict[str, Any], *, source: str = "store"
) -> None:
    """Reject payloads that do not match the current result schema.

    Cached entries written before a payload-layout change used to
    surface as raw ``KeyError`` deep inside dataset assembly; this
    turns them into an actionable :class:`CampaignError` at the point
    where the stale entry is recalled.
    """
    required = REQUIRED_PAYLOAD_KEYS.get(job.mode, ())
    missing = [k for k in required if k not in payload]
    if missing:
        raise CampaignError(
            f"cached result for {job.app}/{job.mode} from {source} is "
            f"missing keys {missing}: the entry was produced by an older "
            "result schema; delete the store file to re-simulate"
        )


def default_worker_count() -> int:
    """Pool width: ``$REPRO_CAMPAIGN_WORKERS`` or cpu count (capped)."""
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise CampaignError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    return min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS)


class _PhaseCounterCollector:
    """RunListener summing phase-region counter totals (Section III-C).

    The production path for ``counters`` jobs is the simulator's
    vectorized :meth:`~repro.execution.simulator.ExecutionSimulator.run_phase_counters`
    fast path; this listener remains the reference implementation over
    the generic engine (the equivalence tests pin both to the bit).
    """

    def __init__(self, counters: tuple[str, ...]):
        self.counters = counters
        self.totals = {c: 0.0 for c in counters}
        self.phase_time = 0.0

    def on_enter(self, region, iteration, time_s) -> None:
        pass

    def on_exit(self, region, iteration, time_s, metrics) -> None:
        # Counters are inclusive, so the phase record carries the whole
        # iteration's totals (the plugin requests metrics for the phase).
        if region.kind.value == "phase":
            for c in self.counters:
                self.totals[c] += metrics.get(c, 0.0)
            self.phase_time += metrics["time_s"]


@functools.lru_cache(maxsize=64)
def _tuning_model_from_json(text: str):
    """Parse (and share) tuning models across a process's savings jobs.

    Repetitions of one configuration reference the same serialised
    model; sharing the parsed instance lets the RRL's compiled-schedule
    cache amortise the switch-schedule walk across them.
    """
    from repro.readex.tuning_model import TuningModel

    return TuningModel.from_json(text)


def _build_controller(job: CampaignJob):
    """Rebuild a ``savings`` job's controller from its description."""
    if job.controller == "none":
        return None
    from repro.execution.simulator import OperatingPoint
    from repro.readex.rrl import RRL, StaticController

    if job.controller == "static":
        return StaticController(
            OperatingPoint(
                core_freq_ghz=job.core_freq_ghz,
                uncore_freq_ghz=job.uncore_freq_ghz,
                threads=job.threads,
            )
        )
    return RRL(_tuning_model_from_json(job.tuning_model))


def _build_instrumentation(job: CampaignJob, app: Application):
    """Rebuild a ``savings`` job's compile-time filter, if any."""
    if job.filtered_regions is None:
        return None
    from repro.scorep.instrumentation import Instrumentation

    return Instrumentation(app=app, filtered=set(job.filtered_regions))


def execute_job(
    job: CampaignJob,
    topology: NodeTopology | None = None,
    app=None,
) -> dict[str, Any]:
    """Run one campaign job from scratch and return its payload.

    ``app`` overrides the registry lookup for callers holding a custom
    :class:`~repro.workloads.application.Application` instance that is
    not registered under ``job.app`` (such jobs bypass pools/stores).
    """
    if app is None:
        app = registry.build(job.app)
    if job.mode == "grid":
        # One grid row through the sweep-replay engine: every cell is
        # bit-identical to a fresh-node run at that configuration, so
        # the row payload agrees with per-cell ``static``-style jobs.
        from repro.execution.simulator import OperatingPoint
        from repro.execution.sweep_replay import sweep_run

        threads = job.threads if job.threads is not None else app.default_threads
        points = [
            OperatingPoint(job.core_freq_ghz, ucf, threads)
            for ucf in job.uncore_freqs_ghz
        ]
        sweep = sweep_run(
            app,
            points,
            run_keys=job.cell_run_keys(),
            node_id=job.node_id,
            seed=job.seed,
            node_seed=job.node_seed,
            topology=topology,
        )
        return {
            "uncore_freqs_ghz": list(job.uncore_freqs_ghz),
            "node_energy_j": [r.node_energy_j for r in sweep.results],
            "cpu_energy_j": [r.cpu_energy_j for r in sweep.results],
            "time_s": [r.time_s for r in sweep.results],
        }
    node = ComputeNode(job.node_id, seed=job.node_seed, topology=topology)
    if job.mode == "savings":
        # Controlled production run: the node starts at the platform
        # default and the controller (if any) reprograms it.
        simulator = ExecutionSimulator(node, seed=job.seed)
        run = simulator.run(
            app,
            threads=job.threads,
            controller=_build_controller(job),
            instrumented=job.instrumented,
            instrumentation=_build_instrumentation(job, app),
            run_key=job.run_key(),
        )
        return {
            "node_energy_j": run.node_energy_j,
            "cpu_energy_j": run.cpu_energy_j,
            "time_s": run.time_s,
            "switching_time_s": run.switching_time_s,
            "instrumentation_time_s": run.instrumentation_time_s,
        }
    node.set_frequencies(job.core_freq_ghz, job.uncore_freq_ghz)
    simulator = ExecutionSimulator(node, seed=job.seed)
    if job.mode == "counters":
        product = simulator.run_phase_counters(
            app,
            threads=job.threads,
            counters=job.counters,
            run_key=job.run_key(),
        )
        return {
            "totals": dict(product.totals),
            "phase_time_s": product.phase_time_s,
        }
    run = simulator.run(app, threads=job.threads, run_key=job.run_key())
    return {
        "node_energy_j": run.node_energy_j,
        "cpu_energy_j": run.cpu_energy_j,
        "time_s": run.time_s,
    }


def execute_job_faulted(
    job: CampaignJob,
    topology: NodeTopology | None,
    index: int | None,
    attempt: int = 0,
) -> dict[str, Any]:
    """:func:`execute_job` with a fault-injection checkpoint.

    The engine's execution paths route through this wrapper so the
    deterministic fault harness (:mod:`repro.campaign.faultinject`) can
    target a job by (app, mode, pending index, attempt).  A no-op
    passthrough when ``REPRO_FAULT_INJECT`` is unset.
    """
    maybe_fault(
        "execute", app=job.app, mode=job.mode, index=index, attempt=attempt
    )
    return execute_job(job, topology)


# ---------------------------------------------------------------------------
# Fleet execution: many jobs per kernel invocation
# ---------------------------------------------------------------------------

def _job_fleet_members(job: CampaignJob, app: Application, topology):
    """The :class:`~repro.execution.fleet_replay.FleetMember` requests
    equivalent to one campaign job (one per grid cell for ``grid``)."""
    from repro.execution.fleet_replay import FleetMember
    from repro.execution.simulator import OperatingPoint

    threads = job.threads if job.threads is not None else app.default_threads
    common = dict(
        node_id=job.node_id,
        seed=job.seed,
        node_seed=job.node_seed,
        topology=topology,
    )
    if job.mode == "grid":
        return [
            FleetMember(
                app=app,
                run_key=run_key,
                point=OperatingPoint(job.core_freq_ghz, ucf, threads),
                threads=threads,
                **common,
            )
            for ucf, run_key in zip(job.uncore_freqs_ghz, job.cell_run_keys())
        ]
    if job.mode == "savings":
        # Default-start node; the controller (if any) reprograms it.
        return [
            FleetMember(
                app=app,
                run_key=job.run_key(),
                threads=threads,
                controller=_build_controller(job),
                instrumented=job.instrumented,
                instrumentation=_build_instrumentation(job, app),
                **common,
            )
        ]
    return [
        FleetMember(
            app=app,
            run_key=job.run_key(),
            point=OperatingPoint(
                job.core_freq_ghz, job.uncore_freq_ghz, threads
            ),
            threads=threads,
            **common,
        )
    ]


def _fleet_payload(job: CampaignJob, results) -> dict[str, Any]:
    """Assemble one job's store payload from its fleet members' runs —
    the exact layout :func:`execute_job` produces for the mode."""
    if job.mode == "grid":
        return {
            "uncore_freqs_ghz": list(job.uncore_freqs_ghz),
            "node_energy_j": [r.node_energy_j for r in results],
            "cpu_energy_j": [r.cpu_energy_j for r in results],
            "time_s": [r.time_s for r in results],
        }
    run = results[0]
    payload = {
        "node_energy_j": run.node_energy_j,
        "cpu_energy_j": run.cpu_energy_j,
        "time_s": run.time_s,
    }
    if job.mode == "savings":
        payload["switching_time_s"] = run.switching_time_s
        payload["instrumentation_time_s"] = run.instrumentation_time_s
    return payload


def execute_fleet_shard(
    shard: FleetShard, topology: NodeTopology | None = None
) -> dict[str, dict[str, Any]]:
    """Price one shard's jobs in a single fleet-kernel pass.

    Returns ``{store key: payload}`` with exactly the payloads (and
    keys) the per-job :func:`execute_job` path would produce — fleet
    execution is a strategy, not a schema.
    """
    from repro.execution.fleet_replay import fleet_run

    apps: dict[str, Application] = {}
    members: list = []
    spans: list[tuple[int, int]] = []
    for job in shard.jobs:
        app = apps.get(job.app)
        if app is None:
            app = registry.build(job.app)
            apps[job.app] = app
        job_members = _job_fleet_members(job, app, topology)
        spans.append((len(members), len(job_members)))
        members.extend(job_members)
    fleet = fleet_run(members)
    return {
        topology_job_key(job, topology): _fleet_payload(
            job, fleet.results[start:start + count]
        )
        for job, (start, count) in zip(shard.jobs, spans)
    }


def execute_fleet_shard_faulted(
    shard: FleetShard,
    topology: NodeTopology | None,
    index: int | None,
    attempt: int = 0,
) -> dict[str, dict[str, Any]]:
    """:func:`execute_fleet_shard` with fault-injection checkpoints.

    The shard as a whole answers to ``mode="fleet"`` directives
    (``index`` is the shard's position); each member job additionally
    answers to directives targeting its own (app, mode), so a fault
    aimed at e.g. ``mode="grid", app="CG"`` fires regardless of the
    execution strategy — fleet is a strategy, not a schema, for the
    fault harness too.
    """
    maybe_fault(
        "execute", app=shard.jobs[0].app, mode="fleet", index=index,
        attempt=attempt,
    )
    for job in shard.jobs:
        maybe_fault(
            "execute", app=job.app, mode=job.mode, index=index,
            attempt=attempt,
        )
    return execute_fleet_shard(shard, topology)


def execute_fleet_shard_stored(
    shard: FleetShard,
    topology: NodeTopology | None,
    store_path: str,
    store_backend: str,
    descriptors: dict[str, dict[str, Any]],
    index: int | None = None,
    attempt: int = 0,
) -> dict[str, dict[str, Any]]:
    """Run one shard in a pool worker, persisting member rows directly.

    Each member job's row is put and flushed individually (with a
    per-row ``store``-stage fault checkpoint keyed by the job's app),
    so a worker killed mid-shard loses only the rows it had not yet
    written — the retry re-prices the shard bit-identically and the
    store no-ops the re-puts of surviving rows.
    """
    payloads = execute_fleet_shard_faulted(shard, topology, index, attempt)
    store = _worker_store(store_path, store_backend)
    for job in shard.jobs:
        key = topology_job_key(job, topology)
        maybe_fault(
            "store", app=job.app, mode="fleet", index=index, attempt=attempt
        )
        store.put(key, descriptors[key], payloads[key])
        store.flush()
    return payloads


#: Per-process store instances for direct-writing pool workers, keyed
#: by (pid, path) — the pid guard matters under fork, where a parent's
#: populated cache is inherited verbatim and must not be reused.
_WORKER_STORES: dict[tuple[int, str], ResultStore] = {}


def _worker_store(path: str, backend: str) -> ResultStore:
    key = (os.getpid(), path)
    store = _WORKER_STORES.get(key)
    if store is None:
        store = ResultStore(path, backend=backend)
        _WORKER_STORES[key] = store
    return store


def execute_job_stored(
    job: CampaignJob,
    topology: NodeTopology | None,
    store_path: str,
    store_backend: str,
    key: str,
    descriptor: dict[str, Any],
    index: int | None = None,
    attempt: int = 0,
) -> dict[str, Any]:
    """Run one job in a pool worker and persist its result directly.

    With a backend that takes concurrent writers (SQLite, segments),
    each worker writes its own results instead of funneling them
    through the parent — an interrupted campaign keeps every finished
    job even if the parent dies before collecting futures.  The worker
    flushes after each put, so index sidecars stay current without the
    worker ever having to close the store.  A retried job whose earlier
    attempt persisted before crashing re-puts the same key, which the
    store no-ops (payloads are bit-identical by construction).
    """
    payload = execute_job_faulted(job, topology, index, attempt)
    maybe_fault(
        "store", app=job.app, mode=job.mode, index=index, attempt=attempt
    )
    store = _worker_store(store_path, store_backend)
    store.put(key, descriptor, payload)
    store.flush()
    return payload


@dataclass(frozen=True)
class CampaignReport:
    """What one :meth:`CampaignEngine.run` call did.

    ``executed`` counts *successful* fresh simulations; ``failed`` the
    jobs that definitively failed this run (after retries), and
    ``quarantined`` the jobs skipped because an earlier run persisted a
    failure record for them.  ``retried`` counts retry re-submissions.
    """

    planned: int
    cached: int
    executed: int
    workers: int
    failed: int = 0
    quarantined: int = 0
    retried: int = 0


def qualified_descriptor(
    job: CampaignJob, topology: NodeTopology | None
) -> dict[str, Any]:
    """The job descriptor, qualified by a non-default node topology.

    Default-topology descriptors are the plain :meth:`CampaignJob.descriptor`,
    so stores written by any engine, the CLI or the bench harness agree;
    a custom topology changes the physics, so it is mixed in and never
    collides with default-topology results.
    """
    if topology is None:
        return job.descriptor()
    return {**job.descriptor(), "topology": repr(topology)}


def topology_job_key(job: CampaignJob, topology: NodeTopology | None) -> str:
    """Store key for a job under the given topology."""
    return job_key(qualified_descriptor(job, topology))


class CampaignResults:
    """Job-addressable payloads (and failures) from one engine run.

    With ``on_failure="quarantine"`` or ``"skip"`` a run completes with
    partial results: :attr:`failures` maps the store keys of failed or
    quarantined jobs to their :class:`FailureRecord`, and indexing such
    a job raises a :class:`CampaignError` naming the job and the remedy
    instead of a bare missing-key error.
    """

    def __init__(
        self,
        payloads: dict[str, dict[str, Any]],
        report: CampaignReport,
        topology: NodeTopology | None = None,
        failures: dict[str, FailureRecord] | None = None,
    ):
        self._payloads = payloads
        self._topology = topology
        self.report = report
        self.failures = failures or {}

    def __len__(self) -> int:
        return len(self._payloads)

    def failure_for(self, job: CampaignJob | str) -> FailureRecord | None:
        """The failure record for a job, or ``None`` if it succeeded."""
        key = job if isinstance(job, str) else topology_job_key(job, self._topology)
        return self.failures.get(key)

    def __getitem__(self, job: CampaignJob | str) -> dict[str, Any]:
        key = job if isinstance(job, str) else topology_job_key(job, self._topology)
        try:
            return self._payloads[key]
        except KeyError:
            record = self.failures.get(key)
            if record is not None:
                raise CampaignError(
                    f"job {key} has no result: {record.describe()}; re-run "
                    "with retry_failed=True (CLI: --retry-failed) to retry it"
                ) from None
            raise CampaignError(f"no result for job key {key}") from None


class CampaignEngine:
    """Executes campaign plans with caching, parallelism and resilience.

    ``max_workers=None`` auto-sizes the pool (see
    :func:`default_worker_count`); ``0`` or ``1`` forces serial
    in-process execution.  When a :class:`ResultStore` is attached,
    cached jobs are never re-simulated and fresh results are persisted
    as they are collected, so an interrupted campaign keeps its
    completed work.

    ``retry_policy`` governs fault tolerance (see
    :class:`~repro.campaign.resilience.RetryPolicy`): transient
    failures — worker death, per-job timeouts, I/O errors — are retried
    with deterministic seeded backoff and the pool is respawned as
    needed; deterministic failures fail fast.  What happens to a job
    that definitively fails is the per-run ``on_failure`` policy of
    :meth:`run`.
    """

    def __init__(
        self,
        *,
        store: ResultStore | None = None,
        max_workers: int | None = None,
        topology: NodeTopology | None = None,
        retry_policy: RetryPolicy | None = None,
        fleet_schedule: str = "static",
    ):
        if fleet_schedule not in FLEET_SCHEDULES:
            raise CampaignError(
                f"unknown fleet schedule: {fleet_schedule!r}; "
                f"known: {FLEET_SCHEDULES}"
            )
        self.store = store
        self.max_workers = max_workers
        self.topology = topology
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        #: Default shard schedule for ``run(fleet=True)``: ``"static"``
        #: pre-partitions fixed-size shards, ``"steal"`` sizes shards
        #: for work stealing (idle workers pull decreasing chunks, so
        #: heterogeneous app mixes lose their straggler tail).
        self.fleet_schedule = fleet_schedule
        self.total_executed = 0
        self.total_cached = 0

    # ------------------------------------------------------------------
    def run(
        self,
        plan: CampaignPlan | Iterable[CampaignJob],
        *,
        on_failure: str = "raise",
        retry_failed: bool = False,
        resume_manifest: str | Path | None = None,
        fleet: bool = False,
        fleet_shard_size: int = DEFAULT_FLEET_SHARD_SIZE,
        fleet_schedule: str | None = None,
    ) -> CampaignResults:
        """Execute (or recall) every job of ``plan``.

        With ``fleet=True``, uncached fleet-able jobs (see
        :data:`~repro.campaign.plan.FLEET_MODES`) are grouped into
        :class:`~repro.campaign.plan.FleetShard`\\ s of up to
        ``fleet_shard_size`` jobs and priced through the batched fleet
        kernel — one kernel invocation per shard, shards pool-parallel.
        ``fleet_schedule`` (``None`` defers to the engine's default)
        picks how shards are sized: ``"static"`` fixed-size slices,
        ``"steal"`` decreasing work-stealing chunks
        (:func:`~repro.campaign.plan.steal_shard_sizes`) so free
        workers always find a next shard and a heterogeneous mix has
        no straggler tail.  Payloads, store keys and caching are
        identical to per-job execution under either schedule (fleet is
        a strategy, not a schema); non-fleet-able jobs in the plan run
        through the per-job path of the same resilient pass.

        ``on_failure`` decides what a definitive job failure does:
        ``"raise"`` (the default) aborts with a
        :class:`CampaignExecutionError` carrying partial results,
        ``"quarantine"`` records a :class:`FailureRecord` in the store
        (re-runs then skip the job until ``retry_failed=True``) and
        completes with partial results, ``"skip"`` completes with
        partial results without persisting anything about the failure.

        SIGINT/SIGTERM drain the run: in-flight jobs finish and are
        persisted, a :class:`ResumeManifest` is written to
        ``resume_manifest`` (when given), and
        :class:`CampaignInterrupted` is raised.
        """
        if on_failure not in ON_FAILURE_POLICIES:
            raise CampaignError(
                f"unknown on_failure policy: {on_failure!r}; "
                f"known: {ON_FAILURE_POLICIES}"
            )
        if not isinstance(plan, CampaignPlan):
            plan = CampaignPlan(tuple(plan))
        payloads: dict[str, dict[str, Any]] = {}
        pending: list[tuple[str, CampaignJob]] = []
        quarantined: dict[str, FailureRecord] = {}
        store_path = (
            str(self.store.path)
            if self.store is not None and self.store.path is not None
            else "store"
        )
        for job in plan:
            key = topology_job_key(job, self.topology)
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                validate_payload(job, cached, source=store_path)
                payloads[key] = cached
                continue
            if self.store is not None and not retry_failed:
                record = self._quarantine_record(job)
                if record is not None:
                    quarantined[key] = record
                    continue
            pending.append((key, job))

        if quarantined and on_failure == "raise":
            listed = "; ".join(
                f"{key}: {record.describe()}"
                for key, record in sorted(quarantined.items())
            )
            raise CampaignExecutionError(
                f"{len(quarantined)} job(s) of this plan are quarantined in "
                f"{store_path} from an earlier run — {listed}.  Re-run with "
                "retry_failed=True (CLI: --retry-failed) to retry them, or "
                "use on_failure='quarantine' to proceed with partial results",
                failures=quarantined,
            )

        cached_count = len(plan) - len(pending) - len(quarantined)
        workers = self._worker_count(len(pending))
        drain = DrainFlag()
        with graceful_drain(drain):
            if fleet:
                outcome = self._execute_pending_fleet(
                    pending, workers, payloads, on_failure, drain,
                    fleet_shard_size,
                    self.fleet_schedule
                    if fleet_schedule is None
                    else fleet_schedule,
                )
            else:
                outcome = self._execute_pending(
                    pending, workers, payloads, on_failure, drain
                )

        jobs_by_key = dict(pending)
        failed: dict[str, FailureRecord] = {}
        for key, task_failure in outcome.failures.items():
            job = jobs_by_key[key]
            failed[key] = FailureRecord(
                job_store_key=key,
                app=job.app,
                mode=job.mode,
                error_type=type(task_failure.exception).__name__,
                error_message=str(task_failure.exception),
                kind=task_failure.kind,
                attempts=task_failure.attempts,
            )
        if on_failure == "quarantine" and self.store is not None:
            for key, record in failed.items():
                descriptor = failure_descriptor(self._descriptor(jobs_by_key[key]))
                self.store.put(job_key(descriptor), descriptor, record.payload())

        self.total_executed += len(outcome.results)
        self.total_cached += cached_count
        report = CampaignReport(
            planned=len(plan),
            cached=cached_count,
            executed=len(outcome.results),
            workers=workers,
            failed=len(failed),
            quarantined=len(quarantined),
            retried=outcome.retried,
        )
        all_failures = {**quarantined, **failed}

        manifest_path = Path(resume_manifest) if resume_manifest else None
        if outcome.drained:
            manifest = ResumeManifest(
                store=(
                    str(self.store.path)
                    if self.store is not None and self.store.path is not None
                    else None
                ),
                planned=len(plan),
                completed=tuple(sorted(payloads)),
                quarantined=tuple(sorted(all_failures)),
                pending=tuple(
                    sorted(
                        key
                        for key, _ in pending
                        if key not in payloads and key not in all_failures
                    )
                ),
                signal_name=drain.signal_name,
            )
            written = manifest.save(manifest_path) if manifest_path else None
            raise CampaignInterrupted(
                f"campaign drained on {drain.signal_name}: {len(payloads)} of "
                f"{len(plan)} job(s) completed and persisted"
                + (f"; resume manifest at {written}" if written else ""),
                signal_name=drain.signal_name,
                completed=len(payloads),
                planned=len(plan),
                manifest=str(written) if written else None,
            )
        if manifest_path is not None and manifest_path.exists():
            manifest_path.unlink()  # the campaign outran its manifest

        if failed and on_failure == "raise":
            first = outcome.failures[next(iter(outcome.failures))]
            where = (
                f"completed payloads persisted to {store_path}"
                if self.store is not None
                else "completed payloads attached to this error (no store)"
            )
            summary = "; ".join(r.describe() for r in failed.values())
            raise CampaignExecutionError(
                f"{len(failed)} of {len(pending)} pending job(s) failed "
                f"({summary}); {len(payloads)} of {len(plan)} planned job(s) "
                f"completed, {where}; {len(outcome.not_run)} never ran",
                completed=payloads,
                failures=failed,
                not_run=outcome.not_run,
            ) from first.exception
        return CampaignResults(
            payloads, report, topology=self.topology, failures=all_failures
        )

    # ------------------------------------------------------------------
    def _descriptor(self, job: CampaignJob) -> dict[str, Any]:
        return qualified_descriptor(job, self.topology)

    def _persist(self, key: str, job: CampaignJob, payload: dict[str, Any]) -> None:
        if self.store is not None:
            self.store.put(key, self._descriptor(job), payload)

    def _worker_count(self, pending: int) -> int:
        """Pool width for this run: explicit settings are honoured; the
        auto default refuses to spin up a pool for small plans where
        fork/pickle overhead would dominate."""
        if pending == 0:
            return 0
        if self.max_workers is not None:
            return max(1, min(self.max_workers, pending))
        auto = min(default_worker_count(), pending // MIN_JOBS_PER_WORKER)
        return max(1, auto)
    @staticmethod
    def _pool(workers: int) -> ProcessPoolExecutor:
        """The engine's process pool: prefer fork on Linux, so workers
        inherit the imported registry and numpy and per-task startup
        stays negligible."""
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

    def _direct_write(self) -> bool:
        """Whether pool workers should write the store themselves."""
        return (
            self.store is not None
            and self.store.path is not None
            and self.store.supports_concurrent_writers
        )

    def _quarantine_record(self, job: CampaignJob) -> FailureRecord | None:
        """The persisted failure record for ``job``, if any.

        Checked only after the result-cache lookup misses: a job that
        eventually succeeded (e.g. after ``retry_failed``) hits the
        result cache first, so its stale failure record is harmless.
        """
        descriptor = failure_descriptor(self._descriptor(job))
        payload = self.store.get(job_key(descriptor))
        if payload is None:
            return None
        return FailureRecord.from_payload(payload)

    def _execute_pending(
        self,
        pending: list[tuple[str, CampaignJob]],
        workers: int,
        payloads: dict[str, dict[str, Any]],
        on_failure: str,
        drain: DrainFlag,
    ) -> PoolOutcome:
        """Run the uncached jobs through the resilient execution loops.

        On a concurrent-writer backend, workers persist their own
        results (:func:`execute_job_stored`); the parent releases its
        handles before forking — a forked SQLite connection shares
        POSIX locks — and refreshes afterwards (in a ``finally``: even
        a raising run must leave the parent store rehydrated, never
        with released handles) so recalls see the worker-written
        records.  On the JSONL tier, results funnel through the
        parent's single writer as before.
        """
        if not pending:
            return PoolOutcome()
        jobs_by_key = dict(pending)
        stop_on_failure = on_failure == "raise"
        if workers <= 1:
            tasks = [
                (key, execute_job_faulted, (job, self.topology, index))
                for index, (key, job) in enumerate(pending)
            ]

            def on_success_serial(key: str, payload: dict[str, Any]) -> None:
                payloads[key] = payload
                self._persist(key, jobs_by_key[key], payload)

            return run_resilient_serial(
                tasks,
                policy=self.retry_policy,
                on_success=on_success_serial,
                stop_on_failure=stop_on_failure,
                drain=drain,
            )

        direct = self._direct_write()
        if direct:
            path, backend = str(self.store.path), self.store.backend
            tasks = [
                (
                    key,
                    execute_job_stored,
                    (
                        job,
                        self.topology,
                        path,
                        backend,
                        key,
                        self._descriptor(job),
                        index,
                    ),
                )
                for index, (key, job) in enumerate(pending)
            ]
            self.store.release()
        else:
            tasks = [
                (key, execute_job_faulted, (job, self.topology, index))
                for index, (key, job) in enumerate(pending)
            ]

        def on_success(key: str, payload: dict[str, Any]) -> None:
            payloads[key] = payload
            if not direct:
                self._persist(key, jobs_by_key[key], payload)

        try:
            return run_resilient_pool(
                tasks,
                workers=workers,
                pool_factory=self._pool,
                policy=self.retry_policy,
                on_success=on_success,
                stop_on_failure=stop_on_failure,
                drain=drain,
            )
        finally:
            if direct:
                self.store.refresh()

    def _execute_pending_fleet(
        self,
        pending: list[tuple[str, CampaignJob]],
        workers: int,
        payloads: dict[str, dict[str, Any]],
        on_failure: str,
        drain: DrainFlag,
        shard_size: int,
        schedule: str = "static",
    ) -> PoolOutcome:
        """Run the uncached jobs with fleet-able modes batched.

        Fleet-able jobs group into shards (one fleet-kernel pass each);
        any remaining jobs (``counters``) ride the per-job path in the
        same resilient pass.  The resilient pool is already pull-based
        (windowed submission: a worker takes the next task when free),
        so ``schedule="steal"`` turns it into a work-stealing scheduler
        purely by shard *sizing* — decreasing chunks instead of equal
        slabs — with the retry/timeout/respawn semantics unchanged.
        Tasks are identified by shard position (``int``) or job store
        key (``str``); the returned outcome is translated back to
        job-key space, so the caller's failure and quarantine plumbing
        is strategy-agnostic.  A failed shard marks every member job
        failed — except those whose rows a direct-writing worker
        persisted before dying, which later runs recall from the store.
        """
        if not pending:
            return PoolOutcome()
        fleetable = [(k, j) for k, j in pending if j.mode in FLEET_MODES]
        rest = [(k, j) for k, j in pending if j.mode not in FLEET_MODES]
        shards = fleet_jobs(
            [job for _, job in fleetable],
            shard_size=shard_size,
            schedule=schedule,
            workers=max(1, workers),
        )
        shard_keys: list[tuple[str, ...]] = []
        pos = 0
        for shard in shards:
            count = len(shard.jobs)
            shard_keys.append(tuple(key for key, _ in fleetable[pos:pos + count]))
            pos += count
        jobs_by_key = dict(pending)

        serial = workers <= 1
        direct = self._direct_write() and not serial
        tasks: list = []
        if direct:
            path, backend = str(self.store.path), self.store.backend
            for i, shard in enumerate(shards):
                descriptors = {
                    key: self._descriptor(job)
                    for key, job in zip(shard_keys[i], shard.jobs)
                }
                tasks.append(
                    (
                        i,
                        execute_fleet_shard_stored,
                        (shard, self.topology, path, backend, descriptors, i),
                    )
                )
            for index, (key, job) in enumerate(rest, start=len(shards)):
                tasks.append(
                    (
                        key,
                        execute_job_stored,
                        (
                            job,
                            self.topology,
                            path,
                            backend,
                            key,
                            self._descriptor(job),
                            index,
                        ),
                    )
                )
            self.store.release()
        else:
            for i, shard in enumerate(shards):
                tasks.append(
                    (i, execute_fleet_shard_faulted, (shard, self.topology, i))
                )
            for index, (key, job) in enumerate(rest, start=len(shards)):
                tasks.append(
                    (key, execute_job_faulted, (job, self.topology, index))
                )

        def on_success(task_id, payload) -> None:
            if isinstance(task_id, int):
                payloads.update(payload)
                if not direct:
                    for key in shard_keys[task_id]:
                        self._persist(key, jobs_by_key[key], payload[key])
            else:
                payloads[task_id] = payload
                if not direct:
                    self._persist(task_id, jobs_by_key[task_id], payload)

        try:
            if serial:
                outcome = run_resilient_serial(
                    tasks,
                    policy=self.retry_policy,
                    on_success=on_success,
                    stop_on_failure=on_failure == "raise",
                    drain=drain,
                )
            else:
                outcome = run_resilient_pool(
                    tasks,
                    workers=min(workers, len(tasks)),
                    pool_factory=self._pool,
                    policy=self.retry_policy,
                    on_success=on_success,
                    stop_on_failure=on_failure == "raise",
                    drain=drain,
                )
        finally:
            if direct:
                self.store.refresh()

        translated = PoolOutcome(
            retried=outcome.retried, drained=outcome.drained
        )
        for task_id, payload in outcome.results.items():
            if isinstance(task_id, int):
                translated.results.update(payload)
            else:
                translated.results[task_id] = payload
        for task_id, failure in outcome.failures.items():
            for key in shard_keys[task_id] if isinstance(task_id, int) else (task_id,):
                if key not in payloads:
                    translated.failures[key] = failure
        for task_id in outcome.not_run:
            if isinstance(task_id, int):
                translated.not_run.extend(shard_keys[task_id])
            else:
                translated.not_run.append(task_id)
        return translated

    # ------------------------------------------------------------------
    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list:
        """Order-preserving parallel map over arbitrary picklable tasks.

        Shares the engine's pool construction, but not the
        ``MIN_JOBS_PER_WORKER`` auto-sizing rule: tasks mapped here
        (e.g. LOOCV fold training) cost seconds of CPU each, so even
        two items amortise a fork.  An explicit ``max_workers`` is
        honoured; results come back in item order, making the serial
        fallback (``max_workers`` of 0/1, or a single item)
        indistinguishable from the pool.

        Mapped tasks ride the engine's resilience layer: transient
        failures (worker death, per-job timeouts) are retried under the
        engine's :class:`RetryPolicy` with pool respawn, and the first
        definitive failure re-raises the original exception — map items
        are not store-addressable, so there is no quarantine tier here.
        """
        items = list(items)
        if self.max_workers is not None:
            workers = max(1, min(self.max_workers, len(items)))
        else:
            workers = min(default_worker_count(), len(items))
        if workers <= 1 or len(items) < 2:
            return [fn(item) for item in items]
        tasks = [(index, fn, (item,)) for index, item in enumerate(items)]
        outcome = run_resilient_pool(
            tasks,
            workers=workers,
            pool_factory=self._pool,
            policy=self.retry_policy,
            pass_attempt=False,
            stop_on_failure=True,
        )
        if outcome.failures:
            first = outcome.failures[min(outcome.failures)]
            raise first.exception
        return [outcome.results[index] for index in range(len(items))]


# ---------------------------------------------------------------------------
# Shared consumer dispatch
# ---------------------------------------------------------------------------

def _registry_faithful(app: Application) -> bool:
    """Whether ``app`` is exactly what the registry builds for its name."""
    try:
        stock = registry.build(app.name)
    except WorkloadError:
        return False
    return app == stock


def run_app_jobs(
    jobs: tuple[CampaignJob, ...],
    app: Application,
    *,
    cluster: Cluster,
    engine: CampaignEngine | None = None,
    on_failure: str = "raise",
    retry_failed: bool = False,
    fleet: bool = False,
) -> CampaignResults:
    """Run one application's job batch with live-object fidelity.

    Campaign jobs reference applications by registry name so pools and
    stores can rebuild them — which is only sound when ``app`` is
    exactly what the registry would build.  Custom or mutated instances
    therefore run serially, in-process, against the live object, and
    are never cached.  An explicitly passed ``engine`` wins (including
    its topology); otherwise an ad-hoc engine simulates the cluster's
    topology.  ``on_failure`` and ``retry_failed`` carry
    :meth:`CampaignEngine.run`'s failure semantics through (the
    custom-instance path has no store, so they only shape engine runs).
    ``fleet`` selects the batched fleet-kernel execution strategy for
    engine runs (payloads are bit-identical either way; the
    custom-instance path stays per-job).
    """
    if _registry_faithful(app):
        if engine is None:
            engine = CampaignEngine(topology=cluster.topology)
        return engine.run(
            CampaignPlan(tuple(jobs)),
            on_failure=on_failure,
            retry_failed=retry_failed,
            fleet=fleet,
        )
    payloads = {
        topology_job_key(job, cluster.topology): execute_job(
            job, cluster.topology, app=app
        )
        for job in jobs
    }
    report = CampaignReport(
        planned=len(jobs), cached=0, executed=len(jobs), workers=1
    )
    return CampaignResults(payloads, report, topology=cluster.topology)
