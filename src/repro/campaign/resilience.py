"""Fault-tolerant task execution for the campaign engine.

The engine's historical pool loop collected futures bare: one crashed
worker (OOM kill, segfault, pickling failure) raised
``BrokenProcessPool`` in the parent and lost every in-flight result;
one raising job aborted the whole campaign.  This module supplies the
pieces that make campaign execution survive all of that:

:class:`RetryPolicy` / :func:`backoff_s`
    Bounded per-job retries with *deterministic* seeded backoff — the
    delay is derived from a BLAKE2b digest of ``(job key, attempt)``,
    never from a wall-clock or process-global RNG, so two runs of the
    same campaign retry on the same schedule.

:func:`classify`
    The failure taxonomy.  ``transient`` failures (worker death, job
    timeout, I/O errors) are retried up to ``max_retries``; everything
    else is ``deterministic`` — retrying a reproducible exception wastes
    exactly ``max_retries`` simulations, so such jobs fail fast.

:class:`FailureRecord` / :func:`failure_descriptor`
    The structured, persistable description of a definitive failure.
    Records are stored through the regular
    :class:`~repro.campaign.store.ResultStore` under a content-addressed
    key derived from the failed job's descriptor, so re-runs *quarantine*
    known-bad jobs (skip them without burning retries) until explicitly
    asked to retry.  Result lookups always win over quarantine lookups,
    so a later successful run makes a stale failure record harmless.

:func:`run_resilient_serial` / :func:`run_resilient_pool`
    The execution loops.  The pool loop submits at most ``workers``
    tasks at a time (windowed submission — a submitted future is
    running, which is what makes submit-time a sound timeout anchor),
    respawns the pool on ``BrokenProcessPool`` and on per-job timeouts
    (a hung worker cannot be cancelled, only killed), and requeues
    innocent in-flight jobs without charging them an attempt.  A pool
    crash charges one attempt against *every* in-flight job because the
    culprit is unknowable from the parent.

:class:`DrainFlag` / :func:`graceful_drain`
    Cooperative SIGINT/SIGTERM handling: the first signal stops new
    submissions and lets running jobs finish (their results are
    persisted); a second signal raises ``KeyboardInterrupt`` for an
    immediate stop.

:class:`ResumeManifest`
    The small JSON artefact a drained campaign leaves behind;
    ``repro-campaign run --resume`` consumes it.  Actual resumption is
    carried by the content-addressed store (completed jobs are cache
    hits), which is what makes a resumed campaign bit-identical to an
    uninterrupted one — the manifest records progress and guards
    against resuming a different plan.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, Executor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.errors import CampaignError, JobTimeoutError

__all__ = [
    "DrainFlag",
    "FailureRecord",
    "ON_FAILURE_POLICIES",
    "PoolOutcome",
    "ResumeManifest",
    "RetryPolicy",
    "TaskFailure",
    "backoff_s",
    "classify",
    "failure_descriptor",
    "graceful_drain",
    "run_resilient_pool",
    "run_resilient_serial",
]

#: What the engine does with a job that definitively failed (retries
#: exhausted, or a deterministic exception).
ON_FAILURE_POLICIES: tuple[str, ...] = ("raise", "quarantine", "skip")

#: Exception types retried by default.  ``BrokenProcessPool`` is worker
#: death; :class:`~repro.errors.JobTimeoutError` is the engine's own
#: per-job timeout; ``OSError``/``EOFError`` cover I/O hiccups (a store
#: flush racing a disk, a torn pipe to a dying worker).
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    BrokenProcessPool,
    CancelledError,
    JobTimeoutError,
    OSError,
    EOFError,
)


def classify(exc: BaseException) -> str:
    """``"transient"`` (retry) or ``"deterministic"`` (fail fast).

    An exception carrying a truthy ``repro_transient`` attribute is
    transient regardless of type (the fault-injection harness uses this
    to exercise the retry path with arbitrary errors).
    """
    if getattr(exc, "repro_transient", False):
        return "transient"
    if isinstance(exc, TRANSIENT_TYPES):
        return "transient"
    return "deterministic"


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the engine fights for each job.

    ``max_retries`` bounds *re*-executions: a job runs at most
    ``1 + max_retries`` times.  ``job_timeout_s`` applies to pool
    execution only — a serial in-process job cannot be preempted (and
    cannot crash the parent without crashing itself), so timeouts are
    meaningless there.  Backoff before a retry is
    ``backoff_base_s * 2**(attempt-1)``, capped at ``backoff_cap_s``
    and jittered deterministically per (job, attempt) — see
    :func:`backoff_s`.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    job_timeout_s: float | None = None
    #: How often the pool loop wakes to check timeouts and drain flags.
    poll_interval_s: float = 0.05

    def __post_init__(self):
        if self.max_retries < 0:
            raise CampaignError("max_retries must be >= 0")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise CampaignError("job_timeout_s must be positive")


def backoff_s(token: str, attempt: int, policy: RetryPolicy) -> float:
    """Deterministic jittered exponential backoff before retry ``attempt``.

    The jitter factor (0.5–1.5x) comes from a BLAKE2b digest of
    ``(token, attempt)``; the same job retries on the same schedule in
    every run, which keeps chaos tests and resumed campaigns
    reproducible.
    """
    base = policy.backoff_base_s * (2 ** max(0, attempt - 1))
    digest = hashlib.blake2b(
        f"{token}:{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    fraction = int.from_bytes(digest, "big") / 2**64
    return min(policy.backoff_cap_s, base * (0.5 + fraction))


# ---------------------------------------------------------------------------
# Failure records (the quarantine currency)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FailureRecord:
    """A definitive job failure, structured for persistence.

    ``job_store_key`` is the key the job's *result* would have been
    stored under; the record itself is stored under
    ``job_key(failure_descriptor(descriptor))`` so it never collides
    with results and is found by re-runs planning the same job.
    """

    job_store_key: str
    app: str
    mode: str
    error_type: str
    error_message: str
    kind: str
    attempts: int

    def payload(self) -> dict[str, Any]:
        return {
            "job_store_key": self.job_store_key,
            "app": self.app,
            "mode": self.mode,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "kind": self.kind,
            "attempts": self.attempts,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FailureRecord":
        try:
            return cls(
                job_store_key=payload["job_store_key"],
                app=payload["app"],
                mode=payload["mode"],
                error_type=payload["error_type"],
                error_message=payload["error_message"],
                kind=payload["kind"],
                attempts=payload["attempts"],
            )
        except KeyError as exc:
            raise CampaignError(
                f"malformed failure record (missing {exc}); delete the "
                "store entry or re-run with retry_failed"
            ) from None

    def describe(self) -> str:
        return (
            f"{self.app}/{self.mode}: {self.error_type}: "
            f"{self.error_message} ({self.kind}, {self.attempts} attempt(s))"
        )


#: Marker mode for failure records in store descriptors; never a valid
#: campaign mode, so quarantine records can't shadow results.
FAILURE_MODE = "failure"


def failure_descriptor(job_descriptor: dict[str, Any]) -> dict[str, Any]:
    """The store descriptor a job's failure record is keyed under."""
    return {
        "app": job_descriptor.get("app", "?"),
        "mode": FAILURE_MODE,
        "failure_for": job_descriptor,
    }


# ---------------------------------------------------------------------------
# Resilient execution loops
# ---------------------------------------------------------------------------

@dataclass
class TaskFailure:
    """How one task definitively failed (in-process view; the engine
    turns this into a persistable :class:`FailureRecord`)."""

    attempts: int
    kind: str
    exception: BaseException


@dataclass
class PoolOutcome:
    """What one resilient execution pass did."""

    results: dict[Any, Any] = field(default_factory=dict)
    failures: dict[Any, TaskFailure] = field(default_factory=dict)
    #: Task ids never attempted (drain requested, or stop_on_failure).
    not_run: list[Any] = field(default_factory=list)
    #: Number of retry re-submissions performed.
    retried: int = 0
    drained: bool = False


class DrainFlag:
    """Set by the signal handler; polled by the execution loops."""

    __slots__ = ("requested", "signum")

    def __init__(self) -> None:
        self.requested = False
        self.signum: int | None = None

    @property
    def signal_name(self) -> str:
        if self.signum is None:
            return "drain"
        return signal.Signals(self.signum).name


@contextmanager
def graceful_drain(drain: DrainFlag) -> Iterator[DrainFlag]:
    """Route SIGINT/SIGTERM into ``drain`` for the duration of a run.

    First signal: request a drain (stop submitting, finish running
    jobs, persist, write the resume manifest).  Second signal: raise
    ``KeyboardInterrupt`` for an immediate stop.  Off the main thread
    signal handlers cannot be installed; the engine then runs without
    drain support, exactly as before.
    """
    if threading.current_thread() is not threading.main_thread():
        yield drain
        return

    def _handler(signum, frame):
        if drain.requested:
            raise KeyboardInterrupt
        drain.requested = True
        drain.signum = signum

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, _handler)
    try:
        yield drain
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _drain_requested(drain: DrainFlag | None) -> bool:
    return drain is not None and drain.requested


def run_resilient_serial(
    tasks: Sequence[tuple[Any, Callable[..., Any], tuple]],
    *,
    policy: RetryPolicy,
    pass_attempt: bool = True,
    on_success: Callable[[Any, Any], None] | None = None,
    stop_on_failure: bool = False,
    drain: DrainFlag | None = None,
) -> PoolOutcome:
    """Execute ``(task_id, fn, args)`` triples in-process with retries.

    With ``pass_attempt`` the 0-based attempt number is appended to the
    call's arguments (the engine threads it into the fault-injection
    schedule).  Timeouts do not apply serially; everything else —
    taxonomy, bounded retries, deterministic backoff, drain — matches
    the pool loop.
    """
    outcome = PoolOutcome()
    remaining: deque[tuple[Any, Callable, tuple, int]] = deque(
        (tid, fn, args, 0) for tid, fn, args in tasks
    )
    stop = False
    while remaining:
        if stop or _drain_requested(drain):
            outcome.not_run = [entry[0] for entry in remaining]
            break
        tid, fn, args, attempt = remaining.popleft()
        call_args = args + (attempt,) if pass_attempt else args
        try:
            result = fn(*call_args)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            kind = classify(exc)
            attempts = attempt + 1
            if kind == "transient" and attempts <= policy.max_retries:
                outcome.retried += 1
                time.sleep(backoff_s(str(tid), attempts, policy))
                remaining.appendleft((tid, fn, args, attempts))
                continue
            outcome.failures[tid] = TaskFailure(attempts, kind, exc)
            if stop_on_failure:
                stop = True
        else:
            outcome.results[tid] = result
            if on_success is not None:
                on_success(tid, result)
    outcome.drained = _drain_requested(drain)
    return outcome


def _shutdown_pool(pool: Executor, *, force: bool) -> None:
    """Tear a pool down; ``force`` kills workers that will not exit
    (hung jobs cannot be cancelled through the executor API)."""
    if not force:
        pool.shutdown(wait=True, cancel_futures=True)
        return
    procs = getattr(pool, "_processes", None)
    processes = list(procs.values()) if procs else []
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)


def run_resilient_pool(
    tasks: Sequence[tuple[Any, Callable[..., Any], tuple]],
    *,
    workers: int,
    pool_factory: Callable[[int], Executor],
    policy: RetryPolicy,
    pass_attempt: bool = True,
    on_success: Callable[[Any, Any], None] | None = None,
    stop_on_failure: bool = False,
    drain: DrainFlag | None = None,
) -> PoolOutcome:
    """Fan tasks across a process pool, surviving crashes and hangs.

    Windowed submission (at most ``workers`` futures in flight) keeps
    submit-time an honest proxy for start-time, which makes the per-job
    timeout sound.  On ``BrokenProcessPool`` every in-flight job is
    charged one attempt (the culprit is unknowable) and the pool is
    respawned; on a timeout only the expired job is charged — the other
    in-flight jobs requeue for free, because killing a hung worker
    requires killing the whole pool.

    ``stop_on_failure`` stops *submissions* after the first definitive
    failure but still collects (and reports via ``on_success``) every
    in-flight result, so completed work is persisted before the caller
    raises.
    """
    outcome = PoolOutcome()
    queue: deque[tuple[Any, Callable, tuple, int]] = deque(
        (tid, fn, args, 0) for tid, fn, args in tasks
    )
    retry_heap: list[tuple[float, int, tuple[Any, Callable, tuple, int]]] = []
    seq = 0
    stop = False
    inflight: dict[Any, tuple[Any, Callable, tuple, int, float]] = {}
    pool = pool_factory(workers)

    def record_failure(
        entry: tuple[Any, Callable, tuple, int], exc: BaseException, kind: str
    ) -> None:
        nonlocal seq, stop
        tid, fn, args, attempt = entry
        attempts = attempt + 1
        if (
            kind == "transient"
            and attempts <= policy.max_retries
            and not stop
            and not _drain_requested(drain)
        ):
            outcome.retried += 1
            ready_at = time.monotonic() + backoff_s(str(tid), attempts, policy)
            heapq.heappush(retry_heap, (ready_at, seq, (tid, fn, args, attempts)))
            seq += 1
            return
        outcome.failures[tid] = TaskFailure(attempts, kind, exc)
        if stop_on_failure:
            stop = True

    def collect(fut, entry) -> bool:
        """Harvest one settled future; returns True when the pool broke."""
        tid, fn, args, attempt, _ = entry
        try:
            result = fut.result(timeout=10.0)
        except (BrokenProcessPool, CancelledError) as exc:
            record_failure((tid, fn, args, attempt), exc, "transient")
            return True
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            record_failure((tid, fn, args, attempt), exc, classify(exc))
            return False
        outcome.results[tid] = result
        if on_success is not None:
            on_success(tid, result)
        return False

    def respawn() -> None:
        nonlocal pool
        _shutdown_pool(pool, force=True)
        pool = pool_factory(workers)

    def submit(entry: tuple[Any, Callable, tuple, int]) -> None:
        tid, fn, args, attempt = entry
        call_args = args + (attempt,) if pass_attempt else args
        try:
            fut = pool.submit(fn, *call_args)
        except BrokenProcessPool:
            respawn()
            fut = pool.submit(fn, *call_args)
        inflight[fut] = (tid, fn, args, attempt, time.monotonic())

    try:
        while True:
            now = time.monotonic()
            while (
                retry_heap
                and retry_heap[0][0] <= now
                and not stop
                and not _drain_requested(drain)
            ):
                _, _, entry = heapq.heappop(retry_heap)
                queue.append(entry)
            while (
                queue
                and len(inflight) < workers
                and not stop
                and not _drain_requested(drain)
            ):
                submit(queue.popleft())
            if not inflight:
                if stop or _drain_requested(drain):
                    break
                if not queue and not retry_heap:
                    break
                # Every pending task is waiting out its backoff.
                if retry_heap:
                    wait_s = max(0.0, retry_heap[0][0] - time.monotonic())
                    time.sleep(min(wait_s, policy.poll_interval_s))
                continue
            done, _ = wait(
                list(inflight),
                timeout=policy.poll_interval_s,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for fut in done:
                entry = inflight.pop(fut)
                broken = collect(fut, entry) or broken
            if broken:
                # The executor fails every remaining future once the
                # pool breaks; settle them now — a worker that finished
                # before the crash still hands back a real result.
                for fut, entry in list(inflight.items()):
                    collect(fut, entry)
                inflight.clear()
                respawn()
            elif policy.job_timeout_s is not None and inflight:
                now = time.monotonic()
                expired = [
                    (fut, entry)
                    for fut, entry in inflight.items()
                    if now - entry[4] > policy.job_timeout_s
                ]
                if expired:
                    for fut, (tid, fn, args, attempt, t0) in expired:
                        del inflight[fut]
                        exc = JobTimeoutError(
                            f"job {tid} exceeded the {policy.job_timeout_s:g}s "
                            f"timeout (attempt {attempt + 1}); killing the "
                            "worker pool and respawning"
                        )
                        record_failure((tid, fn, args, attempt), exc, "transient")
                    # A hung worker can only be killed pool-wide; the
                    # innocent in-flight jobs requeue without an
                    # attempt charge.
                    for tid, fn, args, attempt, _ in inflight.values():
                        queue.append((tid, fn, args, attempt))
                    inflight.clear()
                    respawn()
    finally:
        # A clean exit has no futures in flight; anything left means we
        # are unwinding on an exception and must not block on it.
        _shutdown_pool(pool, force=bool(inflight))
    outcome.not_run = [entry[0] for entry in queue]
    outcome.not_run += [entry[0] for _, _, entry in retry_heap]
    outcome.drained = _drain_requested(drain)
    return outcome


# ---------------------------------------------------------------------------
# Resume manifests
# ---------------------------------------------------------------------------

#: Manifest schema version (bump on layout changes).
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ResumeManifest:
    """Progress snapshot a drained campaign leaves next to its store.

    The store itself carries the results (and is what makes resumption
    bit-identical); the manifest records which plan was interrupted so
    ``--resume`` can refuse to continue a *different* plan, and how far
    the campaign got so operators can see progress without opening the
    store.
    """

    store: str | None
    planned: int
    completed: tuple[str, ...]
    quarantined: tuple[str, ...]
    pending: tuple[str, ...]
    signal_name: str = "drain"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "store": self.store,
            "planned": self.planned,
            "completed": list(self.completed),
            "quarantined": list(self.quarantined),
            "pending": list(self.pending),
            "signal": self.signal_name,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ResumeManifest":
        path = Path(path)
        if not path.exists():
            raise CampaignError(
                f"no resume manifest at {path}; nothing to resume (the "
                "manifest is written when a campaign run is drained by "
                "SIGINT/SIGTERM)"
            )
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable resume manifest {path}: {exc}") from None
        version = payload.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise CampaignError(
                f"resume manifest {path} has version {version!r}, expected "
                f"{MANIFEST_VERSION}; delete it and re-run without --resume"
            )
        return cls(
            store=payload.get("store"),
            planned=int(payload.get("planned", 0)),
            completed=tuple(payload.get("completed", ())),
            quarantined=tuple(payload.get("quarantined", ())),
            pending=tuple(payload.get("pending", ())),
            signal_name=str(payload.get("signal", "drain")),
        )
