"""Campaign planning: declarative jobs and grid expansion.

A :class:`CampaignJob` is a pure description of one simulated
experiment — everything needed to run it in any process and to address
its result in the :mod:`~repro.campaign.store`.  Planner functions
expand benchmark lists into the paper's grids:

``counters``
    Instrumented runs at the calibration operating point that collect
    PAPI counter totals for the phase region (Section IV-A).
``sweep``
    Plain energy runs over the DVFS axis then the UFS axis — the
    training-data sweep (Section V-B).
``static``
    Plain energy runs over the full (threads x CF x UCF) grid — the
    exhaustive static baseline (Section V-D).
``savings``
    Controlled production runs of the Table VI comparison: optionally
    under a controller (the RRL with a serialised tuning model, or the
    static-configuration controller), optionally instrumented with a
    compile-time filter.  Controller-driven jobs execute through the
    simulator's controlled-replay fast path
    (:mod:`repro.execution.controlled_replay`).

``grid``
    One **row** of a static frequency grid — a fixed (threads, CF) at
    an explicit tuple of UCFs — executed in a single pass through the
    simulator's sweep-replay engine
    (:mod:`repro.execution.sweep_replay`).  Rows are the cacheable,
    parallelisable unit of full-grid measurements (the Figures 6/7
    heatmaps, the Table V exhaustive search); their per-cell noise keys
    (``label``-selected, see :func:`grid_run_key`) match the historical
    one-job-per-cell paths, so the measured numbers are bit-identical —
    only the store addressing is coarser.

``sweep`` and ``static`` differ only in the label mixed into the noise
streams; both labels are kept so campaign results stay bit-identical to
the pre-campaign serial code paths.  ``savings`` jobs carry their label
explicitly, matching :mod:`repro.analysis.savings`' historical run keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro import config
from repro.counters.papi import TABLE1_COUNTERS, preset
from repro.errors import CampaignError
from repro.execution.simulator import OperatingPoint
from repro.workloads import registry
from repro.workloads.application import Application

#: The instrumentation/measurement modes a job can run under.
MODES: tuple[str, ...] = ("counters", "sweep", "static", "savings", "grid")

#: Controller kinds a ``savings`` job can attach.
CONTROLLERS: tuple[str, ...] = ("none", "static", "rrl")

#: Run-key layouts a ``grid`` job's cells may use.  Each reproduces one
#: historical per-cell noise key verbatim, so grid-row payloads agree
#: bit-for-bit with the loops they replace.
GRID_RUN_KEY_LABELS: tuple[str, ...] = ("static", "heatmap")


def grid_run_key(
    label: str, *, core_freq_ghz: float, uncore_freq_ghz: float, threads: int | None
) -> tuple:
    """The per-cell noise-stream key of one grid-row entry."""
    if label == "heatmap":
        return ("heatmap", core_freq_ghz, uncore_freq_ghz)
    if label == "static":
        return ("static", core_freq_ghz, uncore_freq_ghz, threads)
    raise CampaignError(
        f"unknown grid run-key label: {label!r}; known: {GRID_RUN_KEY_LABELS}"
    )

#: Runs averaged for one counter measurement (PMU multiplexing).
COUNTER_MEASUREMENT_RUNS = 3

#: Modes the fleet kernel (:mod:`repro.execution.fleet_replay`) can
#: batch: every mode whose job is one priced replay (or, for ``grid``,
#: a row of them).  ``counters`` jobs sample PMU streams through a
#: dedicated fast path and stay on the per-job engines.
FLEET_MODES: tuple[str, ...] = ("sweep", "static", "savings", "grid")

#: Jobs batched into one fleet kernel invocation by default.  Large
#: enough to amortise the padded-matrix setup, small enough that a
#: pool still load-balances shards across workers.
DEFAULT_FLEET_SHARD_SIZE = 16


@dataclass(frozen=True)
class CampaignJob:
    """One simulated experiment, fully described.

    ``seed`` feeds the execution simulator's noise and counter streams;
    ``node_seed`` feeds the node's power-variability factors (it equals
    the owning cluster's seed).  ``threads`` may be ``None`` to use the
    application default — the value is mixed verbatim into the noise
    stream key, matching the historical serial code paths.
    """

    app: str
    mode: str
    core_freq_ghz: float = config.DEFAULT_CORE_FREQ_GHZ
    uncore_freq_ghz: float = config.DEFAULT_UNCORE_FREQ_GHZ
    threads: int | None = None
    node_id: int = 0
    seed: int = config.DEFAULT_SEED
    node_seed: int = config.DEFAULT_SEED
    repetition: int = 0
    counters: tuple[str, ...] = ()
    #: ``savings``-mode extras (ignored — and absent from descriptors —
    #: for the other modes, so historical store keys are unchanged).
    label: str = ""
    controller: str = "none"
    tuning_model: str | None = None
    filtered_regions: tuple[str, ...] | None = None
    instrumented: bool = False
    #: ``grid``-mode extra: the row's UCF axis (``core_freq_ghz`` and
    #: ``threads`` are the fixed coordinates of the row).
    uncore_freqs_ghz: tuple[float, ...] = ()

    def __post_init__(self):
        if self.mode not in MODES:
            raise CampaignError(
                f"unknown campaign mode: {self.mode!r}; known: {MODES}"
            )
        if self.mode == "counters" and not self.counters:
            raise CampaignError("counters mode requires a counter set")
        if self.mode == "grid":
            if not self.uncore_freqs_ghz:
                raise CampaignError("grid mode requires a non-empty UCF row")
            if self.label not in GRID_RUN_KEY_LABELS:
                raise CampaignError(
                    f"unknown grid run-key label: {self.label!r}; "
                    f"known: {GRID_RUN_KEY_LABELS}"
                )
        if self.mode == "savings":
            if not self.label:
                raise CampaignError("savings mode requires a run-key label")
            if self.controller not in CONTROLLERS:
                raise CampaignError(
                    f"unknown controller: {self.controller!r}; "
                    f"known: {CONTROLLERS}"
                )
            if self.controller == "rrl" and not self.tuning_model:
                raise CampaignError(
                    "savings jobs with the rrl controller need a tuning model"
                )

    def run_key(self) -> tuple:
        """The simulator noise-stream label (mirrors the serial paths)."""
        if self.mode == "grid":
            raise CampaignError(
                "grid jobs carry one noise key per cell; use cell_run_keys()"
            )
        if self.mode == "counters":
            return ("counters", self.threads, self.repetition)
        if self.mode == "sweep":
            return ("sweep", self.threads, self.core_freq_ghz, self.uncore_freq_ghz)
        if self.mode == "savings":
            return (self.label, self.repetition)
        return ("static", self.core_freq_ghz, self.uncore_freq_ghz, self.threads)

    def cell_run_keys(self) -> tuple[tuple, ...]:
        """Per-cell noise keys of a ``grid`` job, in UCF order."""
        if self.mode != "grid":
            raise CampaignError("cell_run_keys applies to grid jobs only")
        return tuple(
            grid_run_key(
                self.label,
                core_freq_ghz=self.core_freq_ghz,
                uncore_freq_ghz=ucf,
                threads=self.threads,
            )
            for ucf in self.uncore_freqs_ghz
        )

    def descriptor(self) -> dict[str, Any]:
        """JSON-able canonical form, hashed into the store key."""
        descriptor = {
            "app": self.app,
            "mode": self.mode,
            "core_freq_ghz": self.core_freq_ghz,
            "uncore_freq_ghz": self.uncore_freq_ghz,
            "threads": self.threads,
            "node_id": self.node_id,
            "seed": self.seed,
            "node_seed": self.node_seed,
            "repetition": self.repetition,
            "counters": list(self.counters),
        }
        if self.mode == "grid":
            descriptor.update(
                {
                    "label": self.label,
                    "uncore_freqs_ghz": list(self.uncore_freqs_ghz),
                }
            )
        if self.mode == "savings":
            descriptor.update(
                {
                    "label": self.label,
                    "controller": self.controller,
                    "tuning_model": self.tuning_model,
                    "filtered_regions": (
                        None
                        if self.filtered_regions is None
                        else sorted(self.filtered_regions)
                    ),
                    "instrumented": self.instrumented,
                }
            )
        return descriptor


@dataclass(frozen=True)
class FleetShard:
    """One fleet-kernel invocation's worth of campaign jobs.

    A shard is the parallelisable unit of fleet execution: its jobs are
    converted to :class:`~repro.execution.fleet_replay.FleetMember`
    requests and priced in one batched pass.  Results remain addressed
    per job — the shard grouping never appears in store keys, so fleet
    and per-job runs share one cache.
    """

    jobs: tuple[CampaignJob, ...]

    def __post_init__(self):
        if not self.jobs:
            raise CampaignError("a fleet shard needs at least one job")
        for job in self.jobs:
            if job.mode not in FLEET_MODES:
                raise CampaignError(
                    f"{job.mode!r} jobs cannot join a fleet shard; "
                    f"fleet modes: {FLEET_MODES}"
                )

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[CampaignJob]:
        return iter(self.jobs)


#: Fleet shard schedules: ``static`` pre-partitions into fixed-size
#: shards; ``steal`` sizes shards for work stealing — decreasing chunks
#: so free workers always find a next shard to pull and the last shards
#: are small enough that no straggler holds the whole run hostage.
FLEET_SCHEDULES: tuple[str, ...] = ("static", "steal")


def steal_shard_sizes(
    count: int,
    *,
    workers: int,
    shard_size: int = DEFAULT_FLEET_SHARD_SIZE,
) -> tuple[int, ...]:
    """Shard sizes for a work-stealing schedule over ``count`` jobs.

    Guided self-scheduling: each next shard takes half the remaining
    work divided across the workers (capped at ``shard_size``, floored
    at one job), so early shards are large enough to amortise the fleet
    kernel's batching win while the tail degrades to single-job shards
    that idle workers steal.  Sizes always sum to ``count``.
    """
    if workers < 1:
        raise CampaignError("steal schedule needs workers >= 1")
    if shard_size < 1:
        raise CampaignError("fleet shard_size must be >= 1")
    sizes = []
    remaining = count
    while remaining > 0:
        chunk = min(
            shard_size, remaining, max(1, -(-remaining // (2 * workers)))
        )
        sizes.append(chunk)
        remaining -= chunk
    return tuple(sizes)


def fleet_jobs(
    jobs,
    *,
    shard_size: int = DEFAULT_FLEET_SHARD_SIZE,
    schedule: str = "static",
    workers: int = 1,
) -> tuple[FleetShard, ...]:
    """Group fleet-able jobs into shards, preserving job order.

    The flattened shards visit ``jobs`` exactly in input order under
    either schedule — only shard *boundaries* differ — so callers can
    align shard members with their own bookkeeping by position, and
    results are bit-identical schedule to schedule (store keys never
    see the shard grouping).  ``schedule="static"`` slices fixed
    ``shard_size`` shards; ``"steal"`` uses
    :func:`steal_shard_sizes` for the work-stealing pool (``workers``
    is only consulted there).  Raises :class:`CampaignError` when a
    job's mode is not fleet-able (see :data:`FLEET_MODES`).
    """
    if schedule not in FLEET_SCHEDULES:
        raise CampaignError(
            f"unknown fleet schedule: {schedule!r}; "
            f"known: {FLEET_SCHEDULES}"
        )
    if shard_size < 1:
        raise CampaignError("fleet shard_size must be >= 1")
    jobs = tuple(jobs)
    if schedule == "steal":
        shards = []
        start = 0
        for size in steal_shard_sizes(
            len(jobs), workers=workers, shard_size=shard_size
        ):
            shards.append(FleetShard(jobs[start:start + size]))
            start += size
        return tuple(shards)
    return tuple(
        FleetShard(jobs[i:i + shard_size])
        for i in range(0, len(jobs), shard_size)
    )


@dataclass(frozen=True)
class CampaignPlan:
    """An ordered, duplicate-free sequence of jobs."""

    jobs: tuple[CampaignJob, ...]

    def __post_init__(self):
        seen: set[CampaignJob] = set()
        unique = []
        for job in self.jobs:
            if job not in seen:
                seen.add(job)
                unique.append(job)
        object.__setattr__(self, "jobs", tuple(unique))

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[CampaignJob]:
        return iter(self.jobs)

    def merge(self, other: "CampaignPlan") -> "CampaignPlan":
        return CampaignPlan(self.jobs + other.jobs)

    def describe(self) -> dict[str, Any]:
        """Aggregate view for ``repro-campaign plan``."""
        apps: dict[str, int] = {}
        modes: dict[str, int] = {}
        points: set[tuple] = set()
        for job in self.jobs:
            apps[job.app] = apps.get(job.app, 0) + 1
            modes[job.mode] = modes.get(job.mode, 0) + 1
            points.add((job.core_freq_ghz, job.uncore_freq_ghz, job.threads))
        return {
            "jobs": len(self.jobs),
            "apps": dict(sorted(apps.items())),
            "modes": dict(sorted(modes.items())),
            "operating_points": len(points),
        }


# ---------------------------------------------------------------------------
# Grid helpers
# ---------------------------------------------------------------------------

def thread_series(
    app: Application, thread_counts: tuple[int, ...] | None = None
) -> tuple[int, ...]:
    """Thread sweep for one application: the 12..24 step-4 candidates for
    thread-tunable codes, the fixed default for MPI-only codes."""
    if thread_counts is None:
        thread_counts = config.OPENMP_THREAD_CANDIDATES
    if app.model.supports_thread_tuning:
        return tuple(thread_counts)
    return (app.default_threads,)


def sweep_operating_points() -> list[tuple[float, float]]:
    """The paper's training sweep: DVFS axis then UFS axis."""
    points = [
        (cf, config.CALIBRATION_UNCORE_FREQ_GHZ)
        for cf in config.CORE_FREQUENCIES_GHZ
    ]
    points += [
        (config.CALIBRATION_CORE_FREQ_GHZ, ucf)
        for ucf in config.UNCORE_FREQUENCIES_GHZ
        if (config.CALIBRATION_CORE_FREQ_GHZ, ucf) not in points
    ]
    return points


def static_operating_points(
    app: Application,
    *,
    stride: int = 1,
    thread_counts: tuple[int, ...] | None = None,
) -> list[OperatingPoint]:
    """The exhaustive static grid, with the platform default appended so
    the baseline is always part of the sweep.

    An explicit ``thread_counts`` is honoured verbatim, even for codes
    without thread tuning (the simulator then runs them at their fixed
    configuration, as the hardware would).
    """
    if stride < 1:
        raise CampaignError("stride must be >= 1")
    series = (
        tuple(thread_counts)
        if thread_counts is not None
        else thread_series(app)
    )
    cfs = config.CORE_FREQUENCIES_GHZ[::stride]
    ucfs = config.UNCORE_FREQUENCIES_GHZ[::stride]
    points = [
        OperatingPoint(cf, ucf, t) for t in series for cf in cfs for ucf in ucfs
    ]
    default_point = OperatingPoint(
        config.DEFAULT_CORE_FREQ_GHZ,
        config.DEFAULT_UNCORE_FREQ_GHZ,
        config.DEFAULT_OPENMP_THREADS,
    )
    if default_point not in points:
        points.append(default_point)
    return points


# ---------------------------------------------------------------------------
# Job builders (shared by the consumers, so store keys always agree)
# ---------------------------------------------------------------------------

def counter_jobs(
    app_name: str,
    *,
    threads: int | None,
    counters: tuple[str, ...],
    runs: int = COUNTER_MEASUREMENT_RUNS,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
) -> tuple[CampaignJob, ...]:
    """One instrumented calibration-point job per averaged repetition."""
    return tuple(
        CampaignJob(
            app=app_name,
            mode="counters",
            core_freq_ghz=config.CALIBRATION_CORE_FREQ_GHZ,
            uncore_freq_ghz=config.CALIBRATION_UNCORE_FREQ_GHZ,
            threads=threads,
            node_id=node_id,
            seed=seed,
            node_seed=seed if node_seed is None else node_seed,
            repetition=r,
            counters=tuple(counters),
        )
        for r in range(runs)
    )


def sweep_jobs(
    app_name: str,
    *,
    threads: int | None,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
) -> tuple[CampaignJob, ...]:
    """One plain energy job per training-sweep operating point."""
    return tuple(
        CampaignJob(
            app=app_name,
            mode="sweep",
            core_freq_ghz=cf,
            uncore_freq_ghz=ucf,
            threads=threads,
            node_id=node_id,
            seed=seed,
            node_seed=seed if node_seed is None else node_seed,
        )
        for cf, ucf in sweep_operating_points()
    )


def static_jobs(
    app_name: str,
    *,
    points: list[OperatingPoint],
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
) -> tuple[CampaignJob, ...]:
    """One plain energy job per static-grid operating point."""
    return tuple(
        CampaignJob(
            app=app_name,
            mode="static",
            core_freq_ghz=p.core_freq_ghz,
            uncore_freq_ghz=p.uncore_freq_ghz,
            threads=p.threads,
            node_id=node_id,
            seed=seed,
            node_seed=seed if node_seed is None else node_seed,
        )
        for p in points
    )


def grid_rows(
    points: list[OperatingPoint],
) -> list[tuple[int | None, float, tuple[float, ...]]]:
    """Group grid points into ``(threads, CF, UCF row)`` triples.

    Order-preserving: rows appear at their first point's position and
    each row's UCFs keep their sweep order, so flattening the rows
    visits the points exactly as the one-cell-at-a-time loops did.
    """
    rows: dict[tuple, list[float]] = {}
    for p in points:
        rows.setdefault((p.threads, p.core_freq_ghz), []).append(p.uncore_freq_ghz)
    return [(t, cf, tuple(ucfs)) for (t, cf), ucfs in rows.items()]


def grid_jobs(
    app_name: str,
    *,
    label: str,
    points: list[OperatingPoint],
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
) -> tuple[CampaignJob, ...]:
    """One sweep-replay row job per (threads, CF) of a static grid."""
    return tuple(
        CampaignJob(
            app=app_name,
            mode="grid",
            core_freq_ghz=cf,
            threads=threads,
            node_id=node_id,
            seed=seed,
            node_seed=seed if node_seed is None else node_seed,
            label=label,
            uncore_freqs_ghz=ucfs,
        )
        for threads, cf, ucfs in grid_rows(points)
    )


def savings_jobs(
    app_name: str,
    *,
    label: str,
    runs: int,
    threads: int,
    controller: str = "none",
    tuning_model: str | None = None,
    filtered_regions: tuple[str, ...] | None = None,
    instrumented: bool = False,
    core_freq_ghz: float = config.DEFAULT_CORE_FREQ_GHZ,
    uncore_freq_ghz: float = config.DEFAULT_UNCORE_FREQ_GHZ,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
) -> tuple[CampaignJob, ...]:
    """One controlled production run per averaged repetition (Table VI).

    ``label`` is mixed verbatim into the noise streams, so these jobs
    are bit-identical to :mod:`repro.analysis.savings`' historical
    in-process runs.  The node always starts at the platform default
    operating point; with ``controller="static"`` the job's
    frequency/thread fields describe the configuration the one-shot
    controller applies, and with ``"rrl"`` the serialised tuning model
    drives switching.
    """
    filtered = (
        None if filtered_regions is None else tuple(sorted(filtered_regions))
    )
    return tuple(
        CampaignJob(
            app=app_name,
            mode="savings",
            core_freq_ghz=core_freq_ghz,
            uncore_freq_ghz=uncore_freq_ghz,
            threads=threads,
            node_id=node_id,
            seed=seed,
            node_seed=seed if node_seed is None else node_seed,
            repetition=r,
            label=label,
            controller=controller,
            tuning_model=tuning_model,
            filtered_regions=filtered,
            instrumented=instrumented,
        )
        for r in range(runs)
    )


# ---------------------------------------------------------------------------
# Campaign planners
# ---------------------------------------------------------------------------

def plan_dataset_campaign(
    benchmarks: tuple[str, ...] | list[str] | None = None,
    *,
    thread_counts: tuple[int, ...] | None = None,
    counters: tuple[str, ...] = TABLE1_COUNTERS,
    runs: int = COUNTER_MEASUREMENT_RUNS,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
) -> CampaignPlan:
    """All jobs of the training-data acquisition (counters + sweep)."""
    if benchmarks is None:
        benchmarks = registry.benchmark_names()
    canonical = tuple(preset(c).name for c in counters)
    jobs: list[CampaignJob] = []
    for name in benchmarks:
        app = registry.build(name)
        for threads in thread_series(app, thread_counts):
            jobs += counter_jobs(
                name, threads=threads, counters=canonical, runs=runs,
                node_id=node_id, seed=seed, node_seed=node_seed,
            )
            jobs += sweep_jobs(
                name, threads=threads,
                node_id=node_id, seed=seed, node_seed=node_seed,
            )
    return CampaignPlan(tuple(jobs))


def plan_static_campaign(
    benchmarks: tuple[str, ...] | list[str] | None = None,
    *,
    stride: int = 1,
    thread_counts: tuple[int, ...] | None = None,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    node_seed: int | None = None,
) -> CampaignPlan:
    """All jobs of the exhaustive static search (Table V grid)."""
    if benchmarks is None:
        benchmarks = registry.benchmark_names()
    jobs: list[CampaignJob] = []
    for name in benchmarks:
        app = registry.build(name)
        points = static_operating_points(
            app, stride=stride, thread_counts=thread_counts
        )
        jobs += static_jobs(
            name, points=points, node_id=node_id, seed=seed, node_seed=node_seed,
        )
    return CampaignPlan(tuple(jobs))
