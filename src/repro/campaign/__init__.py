"""Parallel experiment-campaign engine with an on-disk result store.

A *campaign* is the cross-product of applications, operating points and
instrumentation modes that an experiment needs — the training-data
acquisition sweep of Section IV-A, the exhaustive static search of
Section V-D, or any ad-hoc grid.  This package splits such a campaign
into three orthogonal pieces:

:mod:`repro.campaign.plan`
    Declarative job descriptions (:class:`CampaignJob`) and planners
    that expand benchmark lists into full job grids
    (:class:`CampaignPlan`).
:mod:`repro.campaign.store`
    A content-addressed result store (:class:`ResultStore`): every job
    result is keyed by a hash of its full descriptor (app, operating
    point, node, seeds, mode), so repeated benches and LOOCV retraining
    hit the cache instead of re-simulating.  Storage is pluggable
    (:mod:`repro.campaign.backends`): the compatibility JSON-lines
    file, an indexed SQLite database (WAL, concurrent multi-process
    writers), or sharded segment files with sidecar offset indexes —
    auto-detected from the store path, convertible with
    :func:`migrate_store`.
:mod:`repro.campaign.engine`
    The executor (:class:`CampaignEngine`): runs the uncached jobs of a
    plan, serially or across a ``ProcessPoolExecutor`` worker pool.
    Because every stochastic quantity in the simulator draws from a
    stream keyed by :func:`repro.util.rng.rng_for`, parallel execution
    is bit-identical to serial execution.

The three hot consumers — :func:`repro.modeling.dataset.build_dataset`,
:func:`repro.ptf.static_tuning.exhaustive_static_search` and the
benchmark harness (``benchmarks/_common.py``) — are built on top of this
package, and the ``repro-campaign`` CLI (see ``docs/cli.md``) exposes
plan/run/status subcommands for warming and inspecting stores.
"""

from repro.campaign.engine import (
    CampaignEngine,
    CampaignReport,
    CampaignResults,
    default_worker_count,
    execute_job,
    qualified_descriptor,
    run_app_jobs,
    topology_job_key,
)
from repro.campaign.resilience import (
    ON_FAILURE_POLICIES,
    FailureRecord,
    ResumeManifest,
    RetryPolicy,
    failure_descriptor,
)
from repro.campaign.plan import (
    CampaignJob,
    CampaignPlan,
    counter_jobs,
    plan_dataset_campaign,
    plan_static_campaign,
    static_jobs,
    static_operating_points,
    sweep_jobs,
    sweep_operating_points,
    thread_series,
)
from repro.campaign.backends import (
    BACKEND_KINDS,
    StoreBackend,
    detect_backend_kind,
    open_backend,
)
from repro.campaign.store import (
    STORE_VERSION,
    ResultStore,
    job_key,
    migrate_store,
)

__all__ = [
    "BACKEND_KINDS",
    "CampaignEngine",
    "CampaignJob",
    "CampaignPlan",
    "CampaignReport",
    "CampaignResults",
    "FailureRecord",
    "ON_FAILURE_POLICIES",
    "ResultStore",
    "ResumeManifest",
    "RetryPolicy",
    "STORE_VERSION",
    "StoreBackend",
    "failure_descriptor",
    "counter_jobs",
    "default_worker_count",
    "detect_backend_kind",
    "execute_job",
    "job_key",
    "migrate_store",
    "open_backend",
    "plan_dataset_campaign",
    "plan_static_campaign",
    "qualified_descriptor",
    "run_app_jobs",
    "topology_job_key",
    "static_jobs",
    "static_operating_points",
    "sweep_jobs",
    "sweep_operating_points",
    "thread_series",
]
