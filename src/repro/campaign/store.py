"""Content-addressed on-disk result store (JSON lines).

Every campaign job result is stored under a key derived from the job's
full descriptor — application, mode, operating point, node id, seeds,
repetition and counter set — so a result is reused if and only if it
would be bit-identical to a fresh simulation.  The on-disk format is
append-only JSON lines, one record per job::

    {"key": "<blake2b-128 hex>", "job": {...descriptor...}, "result": {...}}

JSON serialises floats via ``repr`` (shortest round-trip), so payloads
read back from a warm store compare equal to freshly simulated ones.

:data:`STORE_VERSION` is mixed into every key; bump it whenever the
simulator physics or the result payload layout changes, which atomically
invalidates all previously persisted results.  Every record additionally
carries the version it was written under, so a record that *does* match
a requested key but was produced under a different schema (a payload
layout change that forgot the bump, or a hand-migrated store) surfaces a
clear :class:`~repro.errors.CampaignError` instead of a downstream
``KeyError`` in whatever consumer first indexes the stale payload.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import IO, Any

from repro.errors import CampaignError

#: Bump on any change to simulator physics or payload layout.
#: v2: records carry ``store_version``; the store also holds trained-model
#: parameter payloads (``mode: "train-model"``) next to simulation results.
STORE_VERSION = 2


def job_key(descriptor: dict[str, Any]) -> str:
    """Content hash of a job descriptor (stable across processes/runs)."""
    payload = json.dumps(
        {"store_version": STORE_VERSION, **descriptor}, sort_keys=True
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class ResultStore:
    """Persistent (or, with ``path=None``, in-memory) job-result cache.

    The store is loaded eagerly on construction and appended to on every
    :meth:`put`.  Unparseable lines (e.g. a truncated tail after a
    crash) are skipped on load; the next ``put`` of that key simply
    rewrites the record.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._records: dict[str, dict[str, Any]] = {}
        self._handle: IO[str] | None = None
        #: Records written under another schema version.  Their keys are
        #: hashed with that version, so current lookups miss them and
        #: everything re-simulates; they are dead weight until the file
        #: is deleted (``repro-campaign status`` surfaces the count).
        self.stale_records = 0
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated/corrupt line: treat as a miss
                if (
                    isinstance(record, dict)
                    and isinstance(record.get("key"), str)
                    and isinstance(record.get("result"), dict)
                ):
                    previous = self._records.get(record["key"])
                    if record.get("store_version") != STORE_VERSION:
                        self.stale_records += 1
                    if (
                        previous is not None
                        and previous.get("store_version") != STORE_VERSION
                    ):
                        # A later line supersedes a stale one (a healed
                        # record): the dead line no longer counts.
                        self.stale_records -= 1
                    self._records[record["key"]] = record

    def _append(self, record: dict[str, Any]) -> None:
        if self.path is None:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored result payload for ``key``, or ``None`` on a miss.

        Raises :class:`~repro.errors.CampaignError` when the record was
        written under a different store schema version: returning it
        would hand consumers a payload whose layout they no longer
        understand (the historical failure mode was a raw ``KeyError``
        deep inside dataset assembly).
        """
        record = self._records.get(key)
        if record is None:
            return None
        written = record.get("store_version")
        if written != STORE_VERSION:
            where = self.path if self.path is not None else "<in-memory store>"
            raise CampaignError(
                f"cached entry {key} in {where} was written by store schema "
                f"version {written!r}, but this code expects version "
                f"{STORE_VERSION}; delete the store file (or point "
                "REPRO_BENCH_CACHE_DIR at a fresh directory) to re-simulate"
            )
        return record["result"]

    def put(
        self, key: str, descriptor: dict[str, Any], result: dict[str, Any]
    ) -> None:
        """Insert a result; re-putting an existing key is a no-op.

        A key held by a record of *another* schema version is overwritten
        instead of no-opped: silently dropping a freshly computed
        current-schema result would leave the entry permanently stale for
        any writer that recomputes without recalling first (the campaign
        engine itself never reaches this — :meth:`get` raises on such
        records and the documented recovery is deleting the file).  The
        replacement is appended; loading is last-wins, so the healed
        record takes effect across sessions too.
        """
        existing = self._records.get(key)
        if existing is not None and existing.get("store_version") == STORE_VERSION:
            return
        if job_key(descriptor) != key:
            raise CampaignError("store key does not match the job descriptor")
        if existing is not None:
            self.stale_records = max(0, self.stale_records - 1)
        record = {
            "key": key,
            "store_version": STORE_VERSION,
            "job": descriptor,
            "result": result,
        }
        self._records[key] = record
        self._append(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    def __contains__(self, key: object) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def summary(self) -> dict[str, Any]:
        """Aggregate view for ``repro-campaign status``."""
        by_app: dict[str, int] = {}
        by_mode: dict[str, int] = {}
        for record in self._records.values():
            descriptor = record.get("job", {})
            app = str(descriptor.get("app", "?"))
            mode = str(descriptor.get("mode", "?"))
            by_app[app] = by_app.get(app, 0) + 1
            by_mode[mode] = by_mode.get(mode, 0) + 1
        return {
            "path": str(self.path) if self.path is not None else None,
            "results": len(self._records),
            "stale": self.stale_records,
            "apps": dict(sorted(by_app.items())),
            "modes": dict(sorted(by_mode.items())),
        }
